//! The full Theorem-1 MPC pipeline on high-dimensional data: FJLT
//! dimension reduction, then hybrid-partitioning embedding — with the
//! metered round/space profile printed.
//!
//! ```text
//! cargo run --release --example fjlt_pipeline
//! ```

use treeemb::prelude::*;

fn main() {
    // 64 points on a noisy 1-D manifold in 2048 ambient dimensions —
    // high-d data with low intrinsic dimension, where the FJLT shines.
    let points = generators::noisy_line(64, 2048, 1 << 12, 2.0, 77);
    println!("input: n={} d={}", points.len(), points.dim());

    let cfg = PipelineConfig::builder().xi(0.6).threads(4).build();
    let report = pipeline::run(&points, &cfg).expect("pipeline");

    println!("JL applied: {}", report.jl_applied);
    if let Some(fp) = &report.fjlt {
        println!(
            "  FJLT: d={} -> k={} (q={:.4}, padded d={})",
            fp.d, fp.k, fp.q, fp.d_pad
        );
    }
    println!(
        "hybrid schedule: r={} levels={} U={} grid-words={}",
        report.params.r,
        report.params.num_levels(),
        report.params.grids_per_bucket,
        report.params.total_grid_words()
    );
    println!("MPC profile (Theorem 1):");
    println!(
        "  rounds             : {} (of which FJLT: {})",
        report.rounds, report.fjlt_rounds
    );
    println!("  machines           : {}", report.machines);
    println!("  capacity/machine   : {} words", report.capacity_words);
    println!("  peak machine words : {}", report.peak_machine_words);
    println!("  peak total words   : {}", report.peak_total_words);

    // The tree dominates the original metric up to the JL contraction.
    let emb = &report.embedding;
    let mut worst: f64 = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let e = metrics::dist(points.point(i), points.point(j));
            if e > 0.0 {
                worst = worst.min(emb.tree_distance(i, j) / e);
            }
        }
    }
    println!(
        "worst dist_T/euclid = {worst:.3} (must be >= 1-ξ = {:.3})",
        1.0 - cfg.xi
    );
}
