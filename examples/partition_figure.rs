//! Regenerates the content of the paper's Figure 1 as ASCII rasters:
//! (a) a random shifted grid, (b) one grid of balls (with uncovered
//! gaps), (c) a hybrid partitioning slice with cylinder-shaped cells.
//!
//! ```text
//! cargo run --release --example partition_figure
//! ```

use treeemb::partition::ball::BallGrid;
use treeemb::partition::grid::ShiftedGrid;
use treeemb::partition::hybrid::HybridLevel;
use treeemb::partition::ids::StructuralHash;

const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ#@%&*+=<>";

fn raster(side: f64, res: usize, label: impl Fn(&[f64]) -> Option<u64>) -> String {
    let mut ids = std::collections::HashMap::new();
    let mut s = String::new();
    for iy in 0..res {
        for ix in 0..res {
            let p = [
                side * (ix as f64 + 0.5) / res as f64,
                side * (iy as f64 + 0.5) / res as f64,
            ];
            match label(&p) {
                None => s.push('.'),
                Some(key) => {
                    let next = (ids.len() % GLYPHS.len()) as u8;
                    let g = *ids.entry(key).or_insert(next);
                    s.push(GLYPHS[g as usize] as char);
                }
            }
        }
        s.push('\n');
    }
    s
}

fn hash_cells(cells: &[i64], salt: u64) -> u64 {
    let mut h = StructuralHash::root().absorb(salt);
    for &c in cells {
        h = h.absorb_i64(c);
    }
    h.value()
}

fn main() {
    let side = 4.0;
    let res = 56;
    let seed = 20230617;

    let grid = ShiftedGrid::from_seed(2, 1.0, seed);
    println!("(a) random shifted grid, w = 1 — cells tile the plane:\n");
    println!(
        "{}",
        raster(side, res, |p| Some(hash_cells(&grid.cell_of(p), 1)))
    );

    let ball = BallGrid::from_seed(2, 1.0, 0.25, seed);
    println!("(b) one grid of balls, radius 1/4 — '.' is uncovered, so more grids are drawn:\n");
    println!(
        "{}",
        raster(side, res, |p| ball.ball_of(p).map(|c| hash_cells(&c, 2)))
    );

    // Hybrid with r = 2 over (x, y, z, pad): bucket 1 = {x, y} disks,
    // bucket 2 = {z, pad} intervals; the 3-D cells are cylinders. We
    // render the z = 0.5 slice.
    let hybrid = HybridLevel::new(4, 2, 0.25, 600, seed);
    println!("(c) hybrid partitioning slice (r = 2): disks × intervals = cylinders:\n");
    println!(
        "{}",
        raster(side, res, |p| {
            hybrid
                .assign(&[p[0], p[1], 0.5, 0.0])
                .map(|a| a.absorb_into(StructuralHash::root()).value())
        })
    );
}
