//! Quickstart: embed a point set into a tree, inspect the guarantees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use treeemb::core::audit::{check_domination, estimate_expected_distortion};
use treeemb::prelude::*;

fn main() {
    // 1. A dataset: 200 integer points in [1024]^8 (the paper's [Δ]^d model).
    let points = generators::uniform_cube(200, 8, 1024, 42);
    println!(
        "dataset: n={} d={} aspect-ratio≈{:.0}",
        points.len(),
        points.dim(),
        metrics::aspect_ratio(&points).unwrap()
    );

    // 2. A hybrid-partitioning schedule with r = 4 buckets (Algorithm 1).
    let params = HybridParams::for_dataset(&points, 4).expect("schedule");
    println!(
        "schedule: r={} levels={} grids/bucket U={} (top scale w0={})",
        params.r,
        params.num_levels(),
        params.grids_per_bucket,
        params.levels[0]
    );

    // 3. Embed.
    let embedder = SeqEmbedder::new(params);
    let emb = embedder.embed(&points, 7).expect("coverage");
    println!(
        "tree: {} nodes, height {}, total weight {:.1}",
        emb.tree.num_nodes(),
        emb.tree.height(),
        emb.tree.total_weight()
    );

    // 4. Guarantee 1 (Theorem 2): the tree metric dominates Euclidean.
    let dom = check_domination(&emb, &points);
    println!(
        "domination: ok={} (worst dist_T/euclid = {:.3} over {} pairs)",
        dom.ok, dom.worst_ratio, dom.pairs
    );

    // 5. Guarantee 2: expected distortion, estimated over 10 trees.
    let est = estimate_expected_distortion(&points, 10, |seed| embedder.embed(&points, seed))
        .expect("estimate");
    println!(
        "expected distortion: max-pair {:.2}, mean-pair {:.2} (worst single tree {:.2})",
        est.expected_distortion, est.mean_ratio, est.worst_single_tree
    );

    // 6. Look at one pair.
    let (p, q) = (0, 1);
    println!(
        "pair ({p},{q}): euclidean {:.2}, this tree {:.2}",
        metrics::dist(points.point(p), points.point(q)),
        emb.tree_distance(p, q)
    );
}
