//! k-median clustering through the tree embedding — the application
//! that historically motivated probabilistic tree embeddings (paper §1:
//! FRT's bound "notably yielded the first polylogarithmic approximation
//! for the k-median problem").
//!
//! The k-median DP is *exact on the tree metric*; pricing its medians
//! in Euclidean space and taking the best over a few independent trees
//! gives a solution competitive with exhaustive enumeration.
//!
//! ```text
//! cargo run --release --example kmedian_clustering
//! ```

use treeemb::apps::kmedian::{exact_kmedian_euclid, kmedian_cost_euclid, tree_kmedian};
use treeemb::prelude::*;

fn main() {
    // 14 points in 3 visible clusters: small enough that exhaustive
    // enumeration gives the true optimum to compare against.
    let n = 14;
    let k = 3;
    let points = generators::gaussian_clusters(n, 6, k, 1.5, 512, 7);

    let (opt_medians, opt_cost) = exact_kmedian_euclid(&points, k);
    println!(
        "exact {k}-median (C({n},{k}) enumeration): cost {opt_cost:.1}, medians {opt_medians:?}"
    );

    let embedder = SeqEmbedder::new(HybridParams::for_dataset(&points, 3).expect("schedule"));
    let trials = 8;
    let mut best_cost = f64::INFINITY;
    let mut best_medians = Vec::new();
    let mut sum = 0.0;
    for seed in 0..trials {
        let emb = embedder.embed(&points, seed).expect("embed");
        let result = tree_kmedian(&emb, k);
        let euclid = kmedian_cost_euclid(&points, &result.medians);
        sum += euclid;
        if euclid < best_cost {
            best_cost = euclid;
            best_medians = result.medians.clone();
        }
        println!(
            "  tree {seed}: tree-cost {:.1}, euclidean cost {euclid:.1} (ratio {:.2}), medians {:?}",
            result.tree_cost,
            euclid / opt_cost,
            result.medians
        );
    }
    println!(
        "tree-median summary: mean ratio {:.2}, best-of-{trials} ratio {:.2} (medians {best_medians:?})",
        sum / trials as f64 / opt_cost,
        best_cost / opt_cost
    );
}
