//! Corollary 1 as the paper states it: the *applications themselves*
//! run in O(1) MPC rounds on the distributed embedding — no host-side
//! tree assembly needed. This example runs Algorithm 2 once, keeps the
//! per-point paths distributed, and answers EMD / densest-ball / MST
//! queries with a handful of extra rounds each.
//!
//! ```text
//! cargo run --release --example distributed_apps
//! ```

use treeemb::apps::exact::prim;
use treeemb::apps::mpc::{mpc_densest_cluster, mpc_mst_edges, mpc_tree_emd};
use treeemb::core::mpc_embed::embed_mpc_full;
use treeemb::core::mpc_tree::{root_paths, TreeEdge};
use treeemb::prelude::*;

fn main() {
    let n = 120;
    let points = generators::gaussian_clusters(n, 8, 5, 3.0, 1 << 11, 99);
    let params = HybridParams::for_dataset(&points, 4).expect("schedule");
    let cap = (params.total_grid_words() * 4).max(1 << 16);
    let mut rt = Runtime::builder()
        .input_words(n * 9)
        .capacity_words(cap)
        .machines(16)
        .threads(4)
        .build();

    // Algorithm 2, keeping the distributed paths.
    let full = embed_mpc_full(&mut rt, &points, &params, 7).expect("embed");
    let embed_rounds = rt.metrics().rounds();
    println!(
        "embedding: {} nodes on {} machines in {embed_rounds} rounds",
        full.embedding.tree.num_nodes(),
        rt.num_machines()
    );

    // EMD between the first and second half, fully distributed.
    let before = rt.metrics().rounds();
    let half = (n / 2) as u32;
    let emd = mpc_tree_emd(
        &mut rt,
        full.paths.clone(),
        move |p| {
            if p < half {
                1
            } else {
                -1
            }
        },
    )
    .expect("emd");
    println!(
        "EMD(first half, second half) = {emd:.1}  [{} extra rounds]",
        rt.metrics().rounds() - before
    );

    // Densest cluster with tree diameter <= 400.
    let before = rt.metrics().rounds();
    let dense = mpc_densest_cluster(&mut rt, full.paths.clone(), 400.0).expect("densest");
    println!(
        "densest cluster: {} points within tree-diameter {:.1}  [{} extra rounds]",
        dense.count,
        dense.tree_diameter_bound,
        rt.metrics().rounds() - before
    );

    // Spanning tree edges, priced in Euclidean space on the host.
    let before = rt.metrics().rounds();
    let edges = mpc_mst_edges(&mut rt, full.paths.clone()).expect("mst");
    let e: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(a, b)| (a as usize, b as usize))
        .collect();
    let cost = prim::edges_cost(&points, &e);
    let exact = prim::mst(&points).cost;
    println!(
        "tree-guided MST: cost {cost:.1} (exact {exact:.1}, ratio {:.3})  [{} extra rounds]",
        cost / exact,
        rt.metrics().rounds() - before
    );

    // Bonus: §1.3.3 — evaluate root paths of the *tree itself* as a
    // distributed edge list via pointer doubling (O(log depth) rounds).
    let doc = full.embedding.tree.to_document();
    let tree_edges: Vec<TreeEdge> = doc
        .edges
        .iter()
        .map(|&(node, parent, weight, _)| TreeEdge {
            node,
            parent,
            weight,
        })
        .collect();
    let mut rt2 = Runtime::builder()
        .input_words(1 << 16)
        .capacity_words(1 << 14)
        .machines(16)
        .threads(4)
        .build();
    let dist = rt2.distribute(tree_edges).expect("distribute");
    let paths = root_paths(&mut rt2, dist).expect("pointer doubling");
    let max_depth = rt2
        .gather(paths)
        .into_iter()
        .map(|p| p.depth)
        .max()
        .unwrap_or(0);
    println!(
        "pointer doubling over the distributed tree: depth {max_depth} resolved in {} rounds",
        rt2.metrics().rounds()
    );
}
