//! Earth-Mover distance between two point clouds via the tree embedding
//! (Corollary 1(3)) — one tree answers *many* EMD queries cheaply,
//! versus O(n³) Hungarian per query.
//!
//! ```text
//! cargo run --release --example emd_similarity
//! ```

use treeemb::apps::emd::{exact_emd, tree_emd};
use treeemb::prelude::*;

fn main() {
    // Three "documents": cloud B is A plus per-point jitter (a
    // near-duplicate); C is an unrelated cluster mixture. EMD should
    // rank B closer to A than C — and the tree approximation should
    // preserve that ranking.
    let half = 40usize;
    let a_pts = generators::gaussian_clusters(half, 8, 3, 3.0, 1 << 10, 1);
    let b_pts = {
        let mut b = a_pts.clone();
        for (i, x) in b.as_flat_mut().iter_mut().enumerate() {
            *x = (*x + ((i * 2654435761) % 7) as f64 - 3.0).clamp(1.0, 1024.0);
        }
        b
    };
    let c_pts = generators::gaussian_clusters(half, 8, 3, 3.0, 1 << 10, 999);

    // One shared embedding over the union of all clouds.
    let mut all = PointSet::new(8);
    for p in a_pts.iter().chain(b_pts.iter()).chain(c_pts.iter()) {
        all.push(p);
    }
    let a_ids: Vec<usize> = (0..half).collect();
    let b_ids: Vec<usize> = (half..2 * half).collect();
    let c_ids: Vec<usize> = (2 * half..3 * half).collect();

    let embedder = SeqEmbedder::new(HybridParams::for_dataset(&all, 4).expect("schedule"));

    // Average tree EMD over a few trees (the guarantee is in expectation).
    let seeds = 6;
    let mut ab = 0.0;
    let mut ac = 0.0;
    for seed in 0..seeds {
        let emb = embedder.embed(&all, seed).expect("embed");
        ab += tree_emd(&emb, &a_ids, &b_ids);
        ac += tree_emd(&emb, &a_ids, &c_ids);
    }
    ab /= seeds as f64;
    ac /= seeds as f64;

    let exact_ab = exact_emd(&all, &a_ids, &b_ids);
    let exact_ac = exact_emd(&all, &a_ids, &c_ids);

    println!(
        "EMD(A,B): exact {exact_ab:.1}, tree {ab:.1} (ratio {:.2})",
        ab / exact_ab
    );
    println!(
        "EMD(A,C): exact {exact_ac:.1}, tree {ac:.1} (ratio {:.2})",
        ac / exact_ac
    );
    println!(
        "ranking preserved: exact says {} — tree says {}",
        if exact_ab < exact_ac {
            "B closer"
        } else {
            "C closer"
        },
        if ab < ac { "B closer" } else { "C closer" },
    );
}
