//! Approximate Euclidean MST on clustered data via the tree embedding
//! (Corollary 1(2)), compared against exact Prim.
//!
//! ```text
//! cargo run --release --example mst_clustering
//! ```

use treeemb::apps::exact::prim;
use treeemb::apps::mst::tree_mst;
use treeemb::core::params::GridParams;
use treeemb::core::seq::GridEmbedder;
use treeemb::prelude::*;

fn main() {
    // A mixture of 6 Gaussian clusters — the workload where spanning
    // trees have strong cluster structure.
    let n = 400;
    let points = generators::gaussian_clusters(n, 8, 6, 5.0, 1 << 11, 2024);
    let exact = prim::mst(&points);
    println!("exact MST (Prim O(n^2 d)): cost {:.1}", exact.cost);

    let hybrid = SeqEmbedder::new(HybridParams::for_dataset(&points, 4).expect("schedule"));
    let grid = GridEmbedder::new(GridParams::for_dataset(&points).expect("schedule"));

    let seeds = 5;
    let mut h_best = f64::INFINITY;
    let mut h_sum = 0.0;
    let mut g_sum = 0.0;
    for seed in 0..seeds {
        let he = hybrid.embed(&points, seed).expect("embed");
        let st = tree_mst(&he, &points);
        assert!(prim::is_spanning_tree(n, &st.edges));
        h_best = h_best.min(st.cost);
        h_sum += st.cost;

        let ge = grid.embed(&points, seed).expect("embed");
        g_sum += tree_mst(&ge, &points).cost;
    }
    let h_mean = h_sum / seeds as f64;
    let g_mean = g_sum / seeds as f64;
    println!(
        "hybrid-tree MST: mean cost {:.1} (ratio {:.3}), best-of-{seeds} {:.1} (ratio {:.3})",
        h_mean,
        h_mean / exact.cost,
        h_best,
        h_best / exact.cost
    );
    println!(
        "grid-tree MST (Arora baseline): mean cost {:.1} (ratio {:.3})",
        g_mean,
        g_mean / exact.cost
    );
    println!(
        "hybrid improves on grid by {:.1}% on this workload",
        100.0 * (1.0 - h_mean / g_mean)
    );
}
