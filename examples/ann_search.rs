//! Approximate nearest-neighbor search via the hierarchy — the
//! application the FJLT was originally built for (Ailon–Chazelle,
//! the paper's reference [2]).
//!
//! Queries cost O(logΔ) hash probes each, independent of n; quality
//! improves with a small best-of-k ensemble of independently seeded
//! indices.
//!
//! ```text
//! cargo run --release --example ann_search
//! ```

use std::time::Instant;
use treeemb::apps::ann::{exact_nearest, AnnIndex};
use treeemb::prelude::*;

fn main() {
    let n = 5000;
    let points = generators::gaussian_clusters(n, 8, 20, 4.0, 1 << 12, 31);
    let params = HybridParams::for_dataset(&points, 4).expect("schedule");

    let t0 = Instant::now();
    let ensemble: Vec<AnnIndex> = (0..4)
        .map(|s| AnnIndex::build(&points, &params, 900 + s).expect("index"))
        .collect();
    println!("built 4 indices over n={n} in {:.2?}", t0.elapsed());

    // Queries: perturbed copies of held-out positions.
    let queries: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            points
                .point((i * 13) % n)
                .iter()
                .map(|x| x + ((i % 7) as f64) - 3.0)
                .collect()
        })
        .collect();

    let t_ann = Instant::now();
    let approx: Vec<usize> = queries
        .iter()
        .map(|q| AnnIndex::query_best_of(&ensemble, &points, q))
        .collect();
    let ann_time = t_ann.elapsed();

    let t_exact = Instant::now();
    let exact: Vec<usize> = queries.iter().map(|q| exact_nearest(&points, q)).collect();
    let exact_time = t_exact.elapsed();

    let mut ratio_sum = 0.0;
    let mut exact_hits = 0usize;
    for ((q, &a), &e) in queries.iter().zip(&approx).zip(&exact) {
        let ra = metrics::dist(points.point(a), q);
        let re = metrics::dist(points.point(e), q).max(1e-9);
        ratio_sum += ra / re;
        if a == e || ra <= re * (1.0 + 1e-9) {
            exact_hits += 1;
        }
    }
    println!(
        "200 queries: ANN {ann_time:.2?} vs linear scan {exact_time:.2?} ({:.1}x faster)",
        exact_time.as_secs_f64() / ann_time.as_secs_f64()
    );
    println!(
        "quality: mean distance ratio {:.2}, {exact_hits}/200 queries answered exactly",
        ratio_sum / 200.0
    );
}
