//! Fuzz target: packed-key vs exact-key partition parity.
//!
//! The oracle lives in `treeemb_partition::fuzzing` so the checked-in
//! corpus can also be replayed under plain `cargo test` (see
//! `crates/partition/tests/fuzz_corpus.rs`). Input encoding is
//! documented on that module.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    let _ = treeemb_partition::fuzzing::check_packed_vs_exact(data);
});
