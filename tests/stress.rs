//! Scale stress tests — `#[ignore]`d so `cargo test` stays fast.
//! Run explicitly with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use treeemb::apps::mst::tree_mst;
use treeemb::core::params::HybridParams;
use treeemb::core::pipeline::{run, PipelineConfig};
use treeemb::core::seq::SeqEmbedder;
use treeemb::geom::generators;
use treeemb::hst::DistanceOracle;

#[test]
#[ignore = "release-mode scale test (~seconds)"]
fn embed_ten_thousand_points() {
    let n = 10_000;
    let ps = generators::uniform_cube(n, 8, 1 << 16, 1);
    let params = HybridParams::for_dataset(&ps, 4).unwrap();
    let emb = SeqEmbedder::new(params)
        .embed_parallel(&ps, 7, 8)
        .expect("embed 10k");
    assert_eq!(emb.tree.num_points(), n);
    // Spot-check domination on a sample of pairs.
    for i in (0..n).step_by(397) {
        for j in (i + 1..n).step_by(401) {
            let e = treeemb::geom::metrics::dist(ps.point(i), ps.point(j));
            assert!(emb.tree_distance(i, j) >= e * (1.0 - 1e-9));
        }
    }
    // The oracle handles a 10k-leaf tree.
    let oracle = DistanceOracle::new(&emb.tree);
    assert_eq!(oracle.distance(0, n - 1), emb.tree_distance(0, n - 1));
}

#[test]
#[ignore = "release-mode scale test (~tens of seconds)"]
fn pipeline_two_thousand_points_high_dim() {
    let n = 2000;
    let ps = generators::noisy_line(n, 1024, 1 << 14, 2.0, 3);
    let cfg = PipelineConfig::builder().xi(0.7).threads(8).build();
    let report = run(&ps, &cfg).expect("pipeline at scale");
    assert!(report.jl_applied);
    assert!(report.rounds <= 12, "rounds {}", report.rounds);
    assert_eq!(report.embedding.tree.num_points(), n);
}

#[test]
#[ignore = "release-mode scale test (~seconds)"]
fn mst_at_scale_stays_reasonable() {
    let n = 4000;
    let ps = generators::gaussian_clusters(n, 8, 16, 4.0, 1 << 14, 5);
    let params = HybridParams::for_dataset(&ps, 4).unwrap();
    let emb = SeqEmbedder::new(params)
        .embed_parallel(&ps, 11, 8)
        .expect("embed");
    let st = tree_mst(&emb, &ps);
    assert!(treeemb::apps::exact::prim::is_spanning_tree(n, &st.edges));
    let exact = treeemb::apps::exact::prim::mst(&ps);
    let ratio = st.cost / exact.cost;
    assert!((1.0..10.0).contains(&ratio), "MST ratio {ratio}");
}
