//! Cross-crate integration tests: the full pipeline feeding every
//! application, and the sequential/MPC agreement end to end.

use treeemb::apps::densest_ball::densest_cluster;
use treeemb::apps::emd::{exact_emd, tree_emd};
use treeemb::apps::exact::prim;
use treeemb::apps::mst::tree_mst;
use treeemb::core::audit::check_domination;
use treeemb::core::params::HybridParams;
use treeemb::core::pipeline::{run, PipelineConfig};
use treeemb::core::seq::SeqEmbedder;
use treeemb::geom::{generators, metrics};

#[test]
fn pipeline_tree_feeds_all_three_applications() {
    let n = 60;
    let points = generators::gaussian_clusters(n, 8, 4, 3.0, 1 << 10, 5);
    let cfg = PipelineConfig::builder().r(4).threads(2).build();
    let report = run(&points, &cfg).expect("pipeline");
    let emb = &report.embedding;

    // Domination end to end (no JL on d=8, so full domination).
    assert!(!report.jl_applied);
    let dom = check_domination(emb, &points);
    assert!(dom.ok, "worst ratio {}", dom.worst_ratio);

    // MST.
    let st = tree_mst(emb, &points);
    assert!(prim::is_spanning_tree(n, &st.edges));
    let exact = prim::mst(&points);
    assert!(st.cost >= exact.cost * (1.0 - 1e-9));
    assert!(
        st.cost <= 15.0 * exact.cost,
        "MST ratio {}",
        st.cost / exact.cost
    );

    // EMD.
    let a: Vec<usize> = (0..n / 2).collect();
    let b: Vec<usize> = (n / 2..n).collect();
    let te = tree_emd(emb, &a, &b);
    let ee = exact_emd(&points, &a, &b);
    assert!(te >= ee * (1.0 - 1e-9));

    // Densest ball.
    let cluster = densest_cluster(emb, 100.0);
    assert!(cluster.count >= 1);
    let members = points.select(&cluster.points);
    assert!(metrics::diameter(&members) <= cluster.tree_diameter_bound + 1e-9);
}

#[test]
fn mpc_pipeline_agrees_with_sequential_embedding() {
    let points = generators::uniform_cube(40, 8, 512, 11);
    let params = HybridParams::for_dataset(&points, 4).unwrap();
    let seed = 3;
    let seq = SeqEmbedder::new(params.clone())
        .embed(&points, seed)
        .unwrap();

    let cfg = PipelineConfig::builder().r(4).seed(seed).threads(2).build();
    let report = run(&points, &cfg).expect("pipeline");
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let a = seq.tree_distance(i, j);
            let b = report.embedding.tree_distance(i, j);
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "({i},{j}): {a} vs {b}");
        }
    }
}

#[test]
fn high_dimensional_pipeline_is_usable_downstream() {
    // 600-dimensional input: JL runs, then the tree still answers MST
    // queries on the original points.
    let n = 32;
    let points = generators::noisy_line(n, 600, 1 << 10, 1.5, 9);
    let cfg = PipelineConfig::builder().xi(0.7).threads(2).build();
    let report = run(&points, &cfg).expect("pipeline");
    assert!(report.jl_applied);
    let st = tree_mst(&report.embedding, &points);
    assert!(prim::is_spanning_tree(n, &st.edges));
    let exact = prim::mst(&points);
    // JL with xi=0.7 plus tree distortion: stay within a generous factor.
    assert!(
        st.cost <= 60.0 * exact.cost,
        "ratio {}",
        st.cost / exact.cost
    );
    assert!(st.cost >= exact.cost * (1.0 - 0.7) * (1.0 - 1e-9));
}

#[test]
fn failure_reporting_is_clean_not_a_panic() {
    // Absurdly small machine capacity: the pipeline must report an MPC
    // failure (Theorem 1's "reports failure"), not panic.
    let points = generators::uniform_cube(64, 8, 512, 13);
    let cfg = PipelineConfig::builder()
        .r(4)
        .capacity_words(32)
        .machines(4)
        .threads(2)
        .build();
    let err = run(&points, &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
}
