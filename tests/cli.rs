//! End-to-end tests of the `treeemb` CLI binary.

use std::process::Command;

fn treeemb(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_treeemb"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("treeemb-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn gen_embed_mst_pipeline() {
    let pts = tmp("pipe.csv");
    let tree = tmp("pipe.json");
    let (ok, out, err) = treeemb(&["gen", "--n", "40", "--d", "6", "--seed", "3", "--out", &pts]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("wrote 40 x 6"));

    let (ok, out, err) = treeemb(&[
        "embed", "--input", &pts, "--r", "3", "--seed", "5", "--out", &tree,
    ]);
    assert!(ok, "embed failed: {err}");
    assert!(out.contains("embedded n=40"));

    // The saved tree round-trips through the persistence layer.
    let json = std::fs::read_to_string(&tree).unwrap();
    let t = treeemb::hst::Hst::from_json(&json).unwrap();
    assert_eq!(t.num_points(), 40);

    let (ok, out, err) = treeemb(&["mst", "--input", &pts, "--r", "3", "--exact"]);
    assert!(ok, "mst failed: {err}");
    assert!(out.contains("approximation ratio"));
    let ratio: f64 = out
        .lines()
        .find(|l| l.contains("ratio"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("ratio parses");
    assert!((1.0..20.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn emd_and_kmedian_subcommands() {
    let pts = tmp("apps.csv");
    let (ok, _, err) = treeemb(&[
        "gen", "--n", "30", "--d", "6", "--kind", "clusters", "--seed", "9", "--out", &pts,
    ]);
    assert!(ok, "{err}");

    let (ok, out, err) = treeemb(&[
        "emd", "--input", &pts, "--split", "10", "--trees", "3", "--exact",
    ]);
    assert!(ok, "emd failed: {err}");
    assert!(out.contains("tree EMD") && out.contains("exact EMD"));

    let (ok, out, err) = treeemb(&["kmedian", "--input", &pts, "--k", "2", "--trees", "3"]);
    assert!(ok, "kmedian failed: {err}");
    assert!(out.contains("2-median"));
}

#[test]
fn bad_usage_reports_errors() {
    let (ok, _, err) = treeemb(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));

    let (ok, _, err) = treeemb(&["embed"]);
    assert!(!ok);
    assert!(err.contains("--input"));

    let pts = tmp("bad.csv");
    std::fs::write(&pts, "1,2\n3\n").unwrap();
    let (ok, _, err) = treeemb(&["embed", "--input", &pts]);
    assert!(!ok);
    assert!(err.contains("columns"), "stderr: {err}");
}

#[test]
fn help_prints_usage() {
    let (ok, out, _) = treeemb(&["help"]);
    assert!(ok);
    assert!(out.contains("subcommands"));
}
