//! Property-based tests of the core invariants, across crates.
//!
//! These are the paper's *deterministic* guarantees — they must hold for
//! every input and every seed, so they are stated as properties:
//!
//! * domination: `dist_T(p,q) ≥ ‖p−q‖₂` (Lemma 2);
//! * the tree metric is a metric (symmetry + triangle inequality);
//! * partition diameter: points sharing a hybrid partition at scale `w`
//!   are within `2√r·w` (Lemma 1, second part);
//! * the normalized WHT is an involution and an isometry;
//! * MPC sample-sort sorts, exactly;
//! * grid/ball assignments are shift-consistent.

use proptest::prelude::*;
use treeemb::core::params::HybridParams;
use treeemb::core::seq::SeqEmbedder;
use treeemb::geom::{metrics, PointSet};
use treeemb::linalg::wht;
use treeemb::partition::hybrid::HybridLevel;

/// Strategy: a small integer point set in [1, 64]^d with d in 2..=6.
fn point_set() -> impl Strategy<Value = PointSet> {
    (2usize..=6, 2usize..=12).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(1i32..=64, d), n).prop_map(
            move |rows| {
                let rows: Vec<Vec<f64>> = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(f64::from).collect())
                    .collect();
                PointSet::from_rows(&rows)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn domination_holds_for_every_input_and_seed(ps in point_set(), seed in 0u64..1000) {
        let r = 2.min(ps.dim());
        let params = HybridParams::for_dataset(&ps, r).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, seed).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = metrics::dist(ps.point(i), ps.point(j));
                let t = emb.tree_distance(i, j);
                prop_assert!(t >= e * (1.0 - 1e-9), "({i},{j}): tree {t} < euclid {e}");
            }
        }
    }

    #[test]
    fn tree_metric_satisfies_metric_axioms(ps in point_set(), seed in 0u64..1000) {
        let r = 2.min(ps.dim());
        let params = HybridParams::for_dataset(&ps, r).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, seed).unwrap();
        let n = ps.len();
        for i in 0..n {
            prop_assert_eq!(emb.tree_distance(i, i), 0.0);
            for j in 0..n {
                let dij = emb.tree_distance(i, j);
                prop_assert!((dij - emb.tree_distance(j, i)).abs() < 1e-12);
                for k in 0..n {
                    prop_assert!(
                        emb.tree_distance(i, k) <= dij + emb.tree_distance(j, k) + 1e-9,
                        "triangle violated"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hybrid_partition_diameter_bound(
        seed in 0u64..10_000,
        w in 0.5f64..64.0,
        coords in proptest::collection::vec((0f64..100.0, 0f64..100.0, 0f64..100.0, 0f64..100.0), 2..20),
    ) {
        let level = HybridLevel::new(4, 2, w, 600, seed);
        let bound = level.diameter_bound() + 1e-9;
        let points: Vec<[f64; 4]> = coords.iter().map(|&(a, b, c, d)| [a, b, c, d]).collect();
        let mut groups: std::collections::HashMap<_, Vec<usize>> = std::collections::HashMap::new();
        for (i, p) in points.iter().enumerate() {
            if let Some(a) = level.assign(p) {
                groups.entry(a).or_default().push(i);
            }
        }
        for members in groups.values() {
            for &a in members {
                for &b in members {
                    let d = metrics::dist(&points[a], &points[b]);
                    prop_assert!(d <= bound, "{d} > {bound} at w={w}");
                }
            }
        }
    }

    #[test]
    fn wht_is_involutive_isometry(data in proptest::collection::vec(-100f64..100.0, 1..=64)) {
        let mut padded = data.clone();
        padded.resize(wht::next_pow2(data.len()), 0.0);
        let original = padded.clone();
        let norm_before: f64 = padded.iter().map(|x| x * x).sum();
        wht::wht_normalized_inplace(&mut padded);
        let norm_after: f64 = padded.iter().map(|x| x * x).sum();
        prop_assert!((norm_before - norm_after).abs() <= 1e-9 * (1.0 + norm_before));
        wht::wht_normalized_inplace(&mut padded);
        for (a, b) in padded.iter().zip(&original) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn mpc_sort_sorts_exactly(data in proptest::collection::vec(0u64..1_000_000, 0..500)) {
        use treeemb::mpc::{MpcConfig, Runtime};
        use treeemb::mpc::primitives::sort;
        let mut rt = Runtime::builder().config(MpcConfig::explicit(1 << 12, 256, 12).with_threads(2)).build();
        let dist = rt.distribute(data.clone()).unwrap();
        let sorted = sort::sort_by_key(&mut rt, dist, |x| *x).unwrap();
        let got = rt.gather(sorted);
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_cells_are_translation_consistent(
        seed in 0u64..10_000,
        x in -1000f64..1000.0,
        y in -1000f64..1000.0,
        k in -20i64..20,
    ) {
        // Shifting a point by exactly k cells moves its cell id by k.
        use treeemb::partition::grid::ShiftedGrid;
        let w = 4.0;
        let g = ShiftedGrid::from_seed(2, w, seed);
        let c0 = g.cell_of(&[x, y]);
        let c1 = g.cell_of(&[x + k as f64 * w, y]);
        prop_assert_eq!(c1[0], c0[0] + k);
        prop_assert_eq!(c1[1], c0[1]);
    }
}
