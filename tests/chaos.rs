//! Chaos conformance suite (tier-1): under injected faults the pipeline
//! must either produce output bit-identical to the fault-free run or
//! return a typed error — never a silently wrong tree, never a panic.
//! Deeper per-stage sweeps live in the `treeemb-bench` `chaos` binary
//! (CI nightly); these tests pin the contract on every `cargo test`.

use treeemb_bench::chaos::{check_stage, plan_matrix, sweep, ChaosVerdict, Stage};
use treeemb_core::pipeline::{self, PipelineConfig};
use treeemb_core::EmbedError;
use treeemb_geom::generators;
use treeemb_mpc::fault::{FaultPlan, FaultRates, FaultSpec};
use treeemb_mpc::{FaultKind, MpcError};

fn pipeline_cfg(threads: usize) -> PipelineConfig {
    PipelineConfig::builder()
        .capacity_words(1 << 15)
        .machines(8)
        .r(4)
        .threads(threads)
        .seed(0x7EED)
        .build()
}

fn pinpoint_plan(seed: u64) -> FaultPlan {
    plan_matrix(seed)
        .into_iter()
        .find(|(name, _)| *name == "pinpoint")
        .map(|(_, plan)| plan)
        .expect("plan matrix always contains the pinpoint plan")
}

/// The core conformance claim: a deterministic retryable fault schedule
/// (one first-attempt message drop per round) leaves every stage's
/// output bit-identical to its fault-free run after the retry.
#[test]
fn retryable_faults_leave_output_bit_identical() {
    for stage in Stage::all() {
        let outcome = check_stage(stage, &pinpoint_plan(5), 5);
        assert_eq!(
            outcome.verdict,
            ChaosVerdict::Conformant,
            "stage {} diverged under a retryable schedule",
            stage.name()
        );
        assert!(
            outcome.faults > 0,
            "stage {} injected no faults; the schedule missed every round",
            stage.name()
        );
        assert!(
            outcome.events.iter().any(|e| e.kind == FaultKind::Drop),
            "stage {} log has no drop events",
            stage.name()
        );
    }
}

/// Acceptance criterion: a non-retryable capacity squeeze surfaces from
/// the full pipeline as a typed `MpcError` — not a panic, not a
/// silently truncated tree.
#[test]
fn capacity_squeeze_is_a_typed_error_from_the_full_pipeline() {
    let ps = generators::uniform_cube(24, 8, 256, 5);
    let plan = FaultPlan::new(5).with_fault(FaultSpec::Squeeze {
        from_round: 2,
        capacity_words: 32,
        machine: None,
    });
    let mut cfg = pipeline_cfg(2);
    cfg.faults = Some(plan);
    cfg.fault_attempts = 2;
    let (result, events) = pipeline::run_faulted(&ps, &cfg);
    match result {
        Err(EmbedError::Mpc(e)) => {
            assert!(
                matches!(e, MpcError::CapacityExceeded { .. }),
                "expected a capacity error, got: {e}"
            );
            assert!(
                !e.is_retryable(),
                "a capacity squeeze must not be classified retryable"
            );
        }
        other => panic!("expected a typed MPC error, got {other:?}"),
    }
    assert!(
        events.iter().any(|e| e.kind == FaultKind::Squeeze),
        "fault log must name the squeeze that caused the failure"
    );
}

/// Acceptance criterion: a fixed (seed, plan) pair reproduces the exact
/// same fault sequence and outcome regardless of `--threads`.
#[test]
fn fault_sequence_and_outcome_are_thread_count_invariant() {
    let ps = generators::uniform_cube(24, 8, 256, 9);
    let plan = FaultPlan::new(41)
        .with_rates(FaultRates {
            drop: 0.0005,
            duplicate: 0.0002,
            unavailable: 0.003,
            straggle: 0.02,
            straggle_ns: 2_000,
            crash: 0.0,
        })
        .with_max_retries(8);
    let mut baseline: Option<(Result<Vec<u64>, String>, Vec<_>)> = None;
    for threads in [1usize, 2, 7] {
        let mut cfg = pipeline_cfg(threads);
        cfg.faults = Some(plan.clone());
        cfg.fault_attempts = 2;
        let (result, events) = pipeline::run_faulted(&ps, &cfg);
        let digest = result
            .map(|report| {
                let emb = &report.embedding;
                let mut bits = Vec::new();
                for i in 0..ps.len() {
                    for j in (i + 1)..ps.len() {
                        bits.push(emb.tree_distance(i, j).to_bits());
                    }
                }
                bits
            })
            .map_err(|e| e.to_string());
        match &baseline {
            None => baseline = Some((digest, events)),
            Some((ref_digest, ref_events)) => {
                assert_eq!(
                    ref_digest, &digest,
                    "outcome changed between thread counts (threads={threads})"
                );
                assert_eq!(
                    ref_events, &events,
                    "fault sequence changed between thread counts (threads={threads})"
                );
            }
        }
    }
    let (_, events) = baseline.expect("loop ran");
    assert!(
        !events.is_empty(),
        "plan injected no faults; test is vacuous"
    );
}

/// A plan serialized to JSON and parsed back replays the identical run:
/// same verdict, same fault log. This is what makes the shrunk plans the
/// chaos binary prints actionable.
#[test]
fn json_round_tripped_plan_replays_identically() {
    let plan = pinpoint_plan(3);
    let reparsed = FaultPlan::from_json(&plan.to_json()).expect("plan JSON must parse");
    assert_eq!(plan, reparsed);
    let a = check_stage(Stage::Partition, &plan, 3);
    let b = check_stage(Stage::Partition, &reparsed, 3);
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.events, b.events);
}

/// Small in-tree slice of the nightly sweep: every (stage, plan, seed)
/// cell must be conformant or a typed error.
#[test]
fn mini_sweep_upholds_the_conformance_contract() {
    let rows = sweep(&[Stage::Partition, Stage::Pipeline], 2);
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(
            !row.outcome.verdict.is_failure(),
            "contract violation: stage={} plan={} seed={} verdict={:?}",
            row.stage.name(),
            row.plan_name,
            row.seed,
            row.outcome.verdict
        );
    }
    // The squeeze column must actually bite (typed, never conformant):
    // capacity 32 cannot hold these rounds.
    assert!(
        rows.iter()
            .filter(|r| r.plan_name == "squeeze")
            .all(|r| matches!(r.outcome.verdict, ChaosVerdict::TypedError(_))),
        "squeeze plans should surface as typed errors"
    );
    // The crash column must recover (conformant, with restores logged);
    // the crash-exhaust column must die of the typed recovery error.
    for row in rows.iter().filter(|r| r.plan_name == "crash") {
        assert_eq!(
            row.outcome.verdict,
            ChaosVerdict::Conformant,
            "crash plan should recover bit-identically (stage={} seed={})",
            row.stage.name(),
            row.seed
        );
        assert!(
            row.outcome
                .events
                .iter()
                .any(|e| e.kind == FaultKind::Crash),
            "crash plan injected no crashes (stage={} seed={})",
            row.stage.name(),
            row.seed
        );
    }
    assert!(
        rows.iter()
            .filter(|r| r.plan_name == "crash-exhaust")
            .all(|r| matches!(r.outcome.verdict, ChaosVerdict::TypedError(_))),
        "exhausted recovery budgets should surface as typed errors"
    );
}

/// Tentpole acceptance criterion: with at least one scheduled crash in
/// every early round, the full pipeline completes via checkpoint
/// recovery, its output is bit-identical to the fault-free run, the
/// restores show up in `Metrics::recoveries`, and the checkpoint's words
/// are metered.
#[test]
fn scheduled_crashes_recover_bit_identical_through_the_pipeline() {
    let ps = generators::uniform_cube(24, 8, 256, 11);
    let cfg = pipeline_cfg(2);
    let clean = pipeline::run(&ps, &cfg).expect("fault-free pipeline failed");

    // Rounds the pipeline accounts analytically (broadcast steps) never
    // execute, so blanket every index: each *executed* round then loses
    // exactly one machine.
    let mut plan = FaultPlan::new(11);
    for round in 0..32 {
        plan = plan.with_fault(FaultSpec::Crash {
            round,
            attempt: 0,
            machine: round % 8,
        });
    }
    let mut crashed_cfg = pipeline_cfg(2);
    crashed_cfg.faults = Some(plan);
    let (result, events) = pipeline::run_faulted(&ps, &crashed_cfg);
    let report = result.expect("crashed pipeline must recover from checkpoints");

    for i in 0..ps.len() {
        for j in (i + 1)..ps.len() {
            assert_eq!(
                clean.embedding.tree_distance(i, j).to_bits(),
                report.embedding.tree_distance(i, j).to_bits(),
                "recovered run diverged from the fault-free run at pair ({i},{j})"
            );
        }
    }
    let executed_rounds = report
        .metrics
        .round_stats()
        .iter()
        .filter(|r| r.checkpoint_words > 0)
        .count() as u32;
    assert!(
        executed_rounds >= 2,
        "pipeline should execute several rounds"
    );
    assert_eq!(
        report.metrics.recoveries(),
        executed_rounds,
        "every executed round should have restored exactly one machine"
    );
    assert!(
        report.metrics.peak_checkpoint_words() > 0,
        "checkpoint words must be metered against total space"
    );
    assert!(
        report
            .metrics
            .round_stats()
            .iter()
            .any(|r| r.recoveries > 0 && r.checkpoint_words > 0),
        "per-round stats must attribute restores to checkpointed rounds"
    );
    assert!(events.iter().any(|e| e.kind == FaultKind::Crash));
    assert!(events.iter().any(|e| e.kind == FaultKind::Recover));
}

/// Tentpole acceptance criterion: a crash schedule that outlives the
/// recovery budget surfaces as the typed, retryable
/// `MpcError::RecoveryExhausted` — never a panic.
#[test]
fn exhausted_recovery_budget_is_a_typed_retryable_error() {
    let ps = generators::uniform_cube(24, 8, 256, 13);
    // Crash machine 0 on the initial run and the single permitted
    // re-execution of whichever round executes first (accounted rounds
    // are skipped, so blanket every index).
    let mut plan = FaultPlan::new(13).with_max_recoveries(1);
    for round in 0..32 {
        for attempt in 0..2 {
            plan = plan.with_fault(FaultSpec::Crash {
                round,
                attempt,
                machine: 0,
            });
        }
    }
    let mut cfg = pipeline_cfg(2);
    cfg.faults = Some(plan);
    cfg.fault_attempts = 2;
    let (result, events) = pipeline::run_faulted(&ps, &cfg);
    match result {
        Err(EmbedError::Mpc(e)) => {
            assert!(
                matches!(e, MpcError::RecoveryExhausted { attempts: 2, .. }),
                "expected RecoveryExhausted after 2 executions, got: {e}"
            );
            assert!(
                e.is_retryable(),
                "recovery exhaustion is transient and must be retryable"
            );
        }
        other => panic!("expected a typed MPC error, got {other:?}"),
    }
    assert!(
        events.iter().filter(|e| e.kind == FaultKind::Crash).count() >= 2,
        "fault log must name every crashed execution"
    );
}
