//! Offline shim for the `proptest` crate.
//!
//! The workspace builds in air-gapped environments, so the real crate
//! cannot be fetched. This shim keeps the property tests runnable by
//! implementing the API surface they use: the [`proptest!`] macro with an
//! optional `proptest_config` attribute, range / tuple / `collection::vec`
//! strategies, `prop_map` / `prop_flat_map` combinators, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports its case index and seed so
//!   it can be replayed, but is not minimized.
//! * **Deterministic seeds** — cases derive from a fixed hash of
//!   `file:line`, so runs are reproducible across machines; there is no
//!   persistence file.
//! * Generation is uniform over the given range rather than
//!   small-value-biased.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case; mirrors `proptest::test_runner::TestCaseError`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 source used to drive value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi].
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
    }
}

/// Generates random values of an associated type; mirrors
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy: Sized {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted vector-length specifications; mirrors
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runs `body` against `config.cases` deterministic random cases,
/// panicking (with a replayable case number and seed) on the first
/// failure. Called by the [`proptest!`] macro expansion.
pub fn run_cases<F>(config: &ProptestConfig, file: &str, line: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the location makes per-test seeds stable across runs.
    let mut base: u64 = 0xCBF2_9CE4_8422_2325;
    for b in file.bytes().chain(line.to_le_bytes()) {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest case {case}/{} failed (seed {seed:#018x}) at {file}:{line}: {e}", config.cases);
        }
    }
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(&config, file!(), line!(), |rng| {
                    $(let $parm = $crate::Strategy::generate(&($strategy), rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    result
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($parm in $strategy),+) $body
            )*
        }
    };
}

/// Fails the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the enclosing property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in 1u64..100,
            y in -5i32..=5,
            v in crate::collection::vec(0f64..1.0, 0..10),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(v.len() < 10);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        #[test]
        fn flat_map_builds_dependent_shapes(
            rows in (1usize..5).prop_flat_map(|d| crate::collection::vec(
                crate::collection::vec(0i32..10, d), 1..4))
        ) {
            let d = rows[0].len();
            for r in &rows {
                prop_assert_eq!(r.len(), d);
            }
        }

        #[test]
        fn early_return_ok_is_accepted(n in 0u64..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_ne!(n, 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        crate::run_cases(&ProptestConfig::with_cases(4), file!(), line!(), |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }
}
