//! Scheduler-instrumented synchronization primitives mirroring the
//! `loom::sync` API surface this workspace uses.
//!
//! Semantics note: the shim explores **sequentially consistent**
//! interleavings — every atomic operation is a yield point and runs
//! atomically with respect to other model threads, regardless of the
//! `Ordering` argument. That is sound for finding SC-level races, lost
//! wakeups, and deadlocks; relaxed-memory reorderings are out of scope
//! (ThreadSanitizer and Miri cover the data-race-UB side in CI).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::LockResult;

use crate::sched::{ctx, Blocked};

pub use std::sync::Arc;

/// A model-checked mutex. Lock acquisition is a schedule point;
/// contention blocks the thread with the scheduler so deadlocks are
/// detected, not hung on.
pub struct Mutex<T> {
    /// Held flag; its address doubles as this mutex's identity key for
    /// the scheduler's blocked-thread bookkeeping.
    held: std::sync::Mutex<bool>,
    data: UnsafeCell<T>,
}

// SAFETY: mirrors std::sync::Mutex — the scheduler guarantees mutual
// exclusion before any &mut access to `data` is handed out.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; releases (and wakes waiters) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new model-checked mutex.
    pub fn new(data: T) -> Self {
        Self {
            held: std::sync::Mutex::new(false),
            data: UnsafeCell::new(data),
        }
    }

    fn key(&self) -> usize {
        &self.held as *const _ as usize
    }

    /// Acquires the mutex, yielding to the scheduler until available.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (sched, me) = ctx();
        loop {
            sched.yield_point(me);
            {
                // Only one model thread runs between yield points, so
                // this check-then-set is atomic under the model.
                let mut held = self.held.lock().unwrap();
                if !*held {
                    *held = true;
                    return Ok(MutexGuard { lock: self });
                }
            }
            sched.block(me, Blocked::Mutex(self.key()));
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }

    fn unlock(&self) {
        *self.held.lock().unwrap() = false;
        let (sched, _) = ctx();
        sched.wake(Blocked::Mutex(self.key()));
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive scheduler-granted access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// A model-checked condition variable with FIFO wakeup order. A notify
/// that fires with no registered waiter is lost — exactly the semantics
/// that let the checker surface lost-wakeup bugs as deadlocks.
pub struct Condvar {
    /// FIFO queue of waiting model-thread ids; its address is this
    /// condvar's identity key.
    waiters: std::sync::Mutex<Vec<usize>>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new model-checked condvar.
    pub fn new() -> Self {
        Self {
            waiters: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn key(&self) -> usize {
        &self.waiters as *const _ as usize
    }

    /// Atomically releases the guard and waits for a notification, then
    /// reacquires the mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (sched, me) = ctx();
        let mutex = guard.lock;
        // Register, then release, then park — no yield point in between,
        // so the release+wait pair is atomic under the model and the
        // shim itself cannot introduce lost wakeups.
        self.waiters.lock().unwrap().push(me);
        drop(guard);
        sched.block(me, Blocked::Condvar(self.key()));
        mutex.lock()
    }

    /// Wakes the longest-waiting thread, if any.
    pub fn notify_one(&self) {
        let (sched, me) = ctx();
        sched.yield_point(me);
        loop {
            let next = {
                let mut q = self.waiters.lock().unwrap();
                if q.is_empty() {
                    None
                } else {
                    Some(q.remove(0))
                }
            };
            match next {
                None => return,
                // A stale entry (thread unwound while queued) wakes
                // nothing; fall through to the next waiter.
                Some(tid) => {
                    if sched.wake_one(tid, Blocked::Condvar(self.key())) {
                        return;
                    }
                }
            }
        }
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        let (sched, me) = ctx();
        sched.yield_point(me);
        self.waiters.lock().unwrap().clear();
        sched.wake(Blocked::Condvar(self.key()));
    }
}

/// Scheduler-instrumented atomics. Every operation is a yield point and
/// executes atomically under the model (SeqCst regardless of the
/// requested ordering — see the module docs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $prim:ty, $std:ty) => {
            /// Model-checked atomic; see the module docs for semantics.
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                fn at(&self) -> (std::sync::Arc<$crate::sched::Scheduler>, usize) {
                    $crate::sched::ctx()
                }

                /// Atomic load (a model yield point).
                pub fn load(&self, _: Ordering) -> $prim {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.load(Ordering::SeqCst)
                }

                /// Atomic store (a model yield point).
                pub fn store(&self, val: $prim, _: Ordering) {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.store(val, Ordering::SeqCst)
                }

                /// Atomic swap (a model yield point).
                pub fn swap(&self, val: $prim, _: Ordering) -> $prim {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.swap(val, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (a model yield point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _: Ordering,
                    _: Ordering,
                ) -> Result<$prim, $prim> {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Atomic read-modify-write via closure (a model yield
                /// point; the closure runs exactly once).
                pub fn fetch_update<F>(
                    &self,
                    _: Ordering,
                    _: Ordering,
                    mut f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    let cur = self.v.load(Ordering::SeqCst);
                    match f(cur) {
                        Some(new) => {
                            self.v.store(new, Ordering::SeqCst);
                            Ok(cur)
                        }
                        None => Err(cur),
                    }
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, val: $prim, _: Ordering) -> $prim {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.fetch_add(val, Ordering::SeqCst)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, val: $prim, _: Ordering) -> $prim {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.fetch_sub(val, Ordering::SeqCst)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, val: $prim, _: Ordering) -> $prim {
                    let (s, me) = self.at();
                    s.yield_point(me);
                    self.v.fetch_max(val, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
    model_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    model_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);
    model_atomic!(AtomicBool, bool, std::sync::atomic::AtomicBool);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU32, u32);

    /// Memory fence: a plain yield point under the SC model.
    pub fn fence(_: Ordering) {
        let (s, me) = crate::sched::ctx();
        s.yield_point(me);
    }
}
