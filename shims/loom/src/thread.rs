//! Model-thread spawn/join mirroring `std::thread` / `loom::thread`.

use std::any::Any;
use std::sync::{Arc, Mutex as OsMutex};

use crate::sched::{clear_ctx, ctx, set_ctx, Blocked, SchedAbort};

/// OS handles of model threads spawned during the current execution;
/// reaped by the explorer between executions. Executions never overlap,
/// so one global registry suffices.
static OS_HANDLES: OsMutex<Vec<std::thread::JoinHandle<()>>> = OsMutex::new(Vec::new());

pub(crate) fn reap_os_handles() {
    let handles: Vec<_> = std::mem::take(&mut *OS_HANDLES.lock().unwrap());
    for h in handles {
        h.join().ok();
    }
}

type ResultSlot<T> = Arc<OsMutex<Option<Result<T, Box<dyn Any + Send>>>>>;

/// Handle to a spawned model thread; `join` blocks (as a scheduler
/// yield point) until it finishes.
pub struct JoinHandle<T> {
    tid: usize,
    result: ResultSlot<T>,
}

/// Spawns a model thread. The closure runs under the model scheduler:
/// it starts only when scheduled and yields at every instrumented
/// operation.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = ctx();
    let tid = sched.register_thread();
    let result: ResultSlot<T> = Arc::new(OsMutex::new(None));
    let slot = Arc::clone(&result);
    let child_sched = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            set_ctx(Arc::clone(&child_sched), tid);
            child_sched.wait_first_schedule(tid);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match outcome {
                Ok(v) => {
                    *slot.lock().unwrap() = Some(Ok(v));
                    child_sched.finish(tid);
                }
                Err(payload) => {
                    if payload.downcast_ref::<SchedAbort>().is_some() {
                        child_sched.finish(tid);
                    } else {
                        // A real panic fails the whole model; the
                        // explorer reports it with the schedule trace.
                        child_sched.record_panic(tid, payload);
                    }
                }
            }
            clear_ctx();
        })
        .expect("spawn loom model thread");
    OS_HANDLES.lock().unwrap().push(os);
    // Spawn is a synchronization point: the child is now schedulable.
    sched.yield_point(me);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send>> {
        let (sched, me) = ctx();
        sched.yield_point(me);
        // Between this check and `block` nothing else can run (only one
        // model thread is ever runnable), so the check-then-block pair
        // is atomic.
        if !sched.is_finished(self.tid) {
            sched.block(me, Blocked::Join(self.tid));
        }
        self.result
            .lock()
            .unwrap()
            .take()
            .unwrap_or(Err(Box::new("loom shim: joined thread was aborted")))
    }
}

/// A plain scheduler yield point.
pub fn yield_now() {
    let (sched, me) = ctx();
    sched.yield_point(me);
}
