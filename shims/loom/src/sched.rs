//! The cooperative scheduler behind [`crate::model`].
//!
//! One model execution runs every model thread on a real OS thread, but
//! only one thread is ever runnable at a time: each instrumented
//! operation (atomic access, mutex acquire, condvar wait/notify,
//! spawn/join) is a *yield point* where the running thread hands control
//! to the scheduler, which picks the next runnable thread. The sequence
//! of picks is a *schedule*; [`explore`] enumerates schedules
//! depth-first (with a preemption bound to keep the space tractable),
//! replaying a recorded choice prefix deterministically and branching on
//! the first undetermined decision.
//!
//! Every blocking primitive routes through [`Scheduler::block`], so a
//! state where no thread is runnable but some are alive is detected
//! immediately as a deadlock — which is exactly how lost wakeups
//! surface: a notify that fires before the matching wait leaves the
//! waiter blocked forever, and the checker reports the schedule that
//! got there.

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// Sentinel panic payload used to unwind model threads when the
/// execution aborts (deadlock, or a real panic on another thread).
pub(crate) struct SchedAbort;

/// Why a model thread cannot run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocked {
    /// Waiting to acquire the mutex with this identity key.
    Mutex(usize),
    /// Waiting on the condvar with this identity key.
    Condvar(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ThreadState {
    Runnable,
    Blocked(Blocked),
    Finished,
}

/// How an execution ended ahead of normal completion.
pub(crate) enum Abort {
    /// No runnable thread, but not all threads finished.
    Deadlock(Vec<(usize, ThreadState)>),
    /// A model thread panicked with this payload.
    Panic(Box<dyn Any + Send>),
}

pub(crate) struct SchedState {
    pub(crate) threads: Vec<ThreadState>,
    /// Thread id currently allowed to run.
    pub(crate) current: usize,
    /// Replay prefix: decision `d` picks option `prefix[d]`.
    prefix: Vec<usize>,
    /// Choices made this execution: `(picked index, option count)`.
    pub(crate) decisions: Vec<(usize, usize)>,
    depth: usize,
    preemptions: usize,
    /// Sticky abort flag (threads poll it to unwind); the payload is
    /// taken once by the orchestrator.
    aborted: bool,
    abort: Option<Abort>,
    /// True once every thread reached `Finished`.
    complete: bool,
}

pub(crate) struct Scheduler {
    pub(crate) state: OsMutex<SchedState>,
    cv: OsCondvar,
    max_preemptions: usize,
}

/// Hard cap on decisions per execution; beyond this the model is too
/// deep to explore and the run aborts with a clear message.
const MAX_DEPTH: usize = 1_000_000;

thread_local! {
    /// The execution this OS thread belongs to, and its model-thread id.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The active execution context, or a panic naming the misuse.
pub(crate) fn ctx() -> (Arc<Scheduler>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Scheduler {
    pub(crate) fn new(prefix: Vec<usize>, max_preemptions: usize) -> Self {
        Self {
            state: OsMutex::new(SchedState {
                threads: vec![ThreadState::Runnable],
                current: 0,
                prefix,
                decisions: Vec::new(),
                depth: 0,
                preemptions: 0,
                aborted: false,
                abort: None,
                complete: false,
            }),
            cv: OsCondvar::new(),
            max_preemptions,
        }
    }

    /// Registers a freshly spawned model thread; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Picks the next thread to run. `me` is the yielding thread (used
    /// for continue-first ordering and preemption accounting). Must be
    /// called with the state lock held.
    fn pick_next(&self, st: &mut SchedState, me: usize) {
        if st.aborted || st.complete {
            return;
        }
        let me_runnable = st.threads[me] == ThreadState::Runnable;
        // Option order is deterministic: the yielding thread first (so
        // choice 0 means "keep running"), then the rest by id.
        let mut options: Vec<usize> = Vec::with_capacity(st.threads.len());
        if me_runnable {
            options.push(me);
        }
        for (tid, state) in st.threads.iter().enumerate() {
            if tid != me && *state == ThreadState::Runnable {
                options.push(tid);
            }
        }
        if options.is_empty() {
            if st.threads.iter().all(|t| *t == ThreadState::Finished) {
                st.complete = true;
            } else {
                let blocked: Vec<(usize, ThreadState)> = st
                    .threads
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(_, t)| *t != ThreadState::Finished)
                    .collect();
                st.aborted = true;
                st.abort = Some(Abort::Deadlock(blocked));
            }
            return;
        }
        // Preemption bounding: once the budget is spent, a runnable
        // thread is never switched away from. The shrunken option count
        // is recorded so exploration never branches on pruned choices.
        let n = if me_runnable && st.preemptions >= self.max_preemptions {
            1
        } else {
            options.len()
        };
        if st.depth >= MAX_DEPTH {
            st.aborted = true;
            st.abort = Some(Abort::Panic(Box::new(
                "loom shim: model exceeded the per-execution decision cap",
            )));
            return;
        }
        let pick = if st.depth < st.prefix.len() {
            st.prefix[st.depth].min(n - 1)
        } else {
            0
        };
        st.decisions.push((pick, n));
        st.depth += 1;
        if me_runnable && options[pick] != me {
            st.preemptions += 1;
        }
        st.current = options[pick];
    }

    /// Parks until this thread is scheduled and runnable; panics with
    /// [`SchedAbort`] when the execution aborted meanwhile.
    fn park_until_scheduled(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.current == me && st.threads[me] == ThreadState::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Entry point for a just-started model thread: waits for its first
    /// scheduling slot.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        self.park_until_scheduled(me);
    }

    /// A plain yield point: hand control to the scheduler, run again
    /// when picked.
    pub(crate) fn yield_point(&self, me: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if st.aborted {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
        self.park_until_scheduled(me);
    }

    /// Blocks this thread for `reason` and schedules someone else; runs
    /// again once another thread made it runnable and the scheduler
    /// picked it.
    pub(crate) fn block(&self, me: usize, reason: Blocked) {
        {
            let mut st = self.state.lock().unwrap();
            if st.aborted {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            st.threads[me] = ThreadState::Blocked(reason);
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
        self.park_until_scheduled(me);
    }

    /// Marks every thread blocked on `reason` runnable again (they still
    /// wait their turn with the scheduler). Lock must not be held.
    pub(crate) fn wake(&self, reason: Blocked) {
        let mut st = self.state.lock().unwrap();
        for t in st.threads.iter_mut() {
            if *t == ThreadState::Blocked(reason) {
                *t = ThreadState::Runnable;
            }
        }
    }

    /// Makes one specific thread runnable if it is blocked on `reason`;
    /// returns whether it was.
    pub(crate) fn wake_one(&self, tid: usize, reason: Blocked) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.threads[tid] == ThreadState::Blocked(reason) {
            st.threads[tid] = ThreadState::Runnable;
            true
        } else {
            false
        }
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.state.lock().unwrap().threads[tid] == ThreadState::Finished
    }

    /// Marks `me` finished, wakes joiners, and hands control onward
    /// without waiting to be rescheduled (this thread is done).
    pub(crate) fn finish(&self, me: usize) {
        {
            let mut st = self.state.lock().unwrap();
            st.threads[me] = ThreadState::Finished;
            for t in st.threads.iter_mut() {
                if *t == ThreadState::Blocked(Blocked::Join(me)) {
                    *t = ThreadState::Runnable;
                }
            }
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
    }

    /// Records a real panic from a model thread (first one wins) and
    /// unwinds every other thread.
    pub(crate) fn record_panic(&self, me: usize, payload: Box<dyn Any + Send>) {
        {
            let mut st = self.state.lock().unwrap();
            st.threads[me] = ThreadState::Finished;
            if !st.aborted {
                st.aborted = true;
                st.abort = Some(Abort::Panic(payload));
            }
        }
        self.cv.notify_all();
    }

    /// Blocks the orchestrator until the execution completed or aborted;
    /// returns the abort payload, if any.
    pub(crate) fn wait_outcome(&self) -> Option<Abort> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.aborted {
                return st.abort.take();
            }
            if st.complete {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// One explored execution's outcome, fed back into the DFS.
struct RunOutcome {
    decisions: Vec<(usize, usize)>,
    abort: Option<Abort>,
}

fn run_one(
    f: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    max_preemptions: usize,
) -> RunOutcome {
    let sched = Arc::new(Scheduler::new(prefix, max_preemptions));
    let root_sched = Arc::clone(&sched);
    let root = std::thread::Builder::new()
        .name("loom-model-0".into())
        .spawn(move || {
            set_ctx(Arc::clone(&root_sched), 0);
            root_sched.wait_first_schedule(0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
            match result {
                Ok(()) => root_sched.finish(0),
                Err(payload) => {
                    if payload.downcast_ref::<SchedAbort>().is_some() {
                        root_sched.finish(0);
                    } else {
                        root_sched.record_panic(0, payload);
                    }
                }
            }
            clear_ctx();
        })
        .expect("spawn loom root thread");
    let abort = sched.wait_outcome();
    // Every model thread either finished or is unwinding on the sticky
    // abort flag; reap the OS threads so nothing leaks across runs.
    root.join().ok();
    crate::thread::reap_os_handles();
    let decisions = std::mem::take(&mut sched.state.lock().unwrap().decisions);
    RunOutcome { decisions, abort }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Depth-first exploration of schedules for `f`. Panics (with the
/// decision trace) on the first deadlock or model-thread panic.
pub(crate) fn explore(f: impl Fn() + Send + Sync + 'static) {
    assert!(
        !in_model(),
        "loom::model may not be nested inside another model"
    );
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 20_000);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let outcome = run_one(Arc::clone(&f), prefix.clone(), max_preemptions);
        if let Some(abort) = outcome.abort {
            let trace: Vec<usize> = outcome.decisions.iter().map(|(c, _)| *c).collect();
            match abort {
                Abort::Deadlock(blocked) => panic!(
                    "loom shim: deadlock after {iterations} execution(s); \
                     blocked threads: {blocked:?}; schedule: {trace:?}"
                ),
                Abort::Panic(payload) => {
                    eprintln!(
                        "loom shim: model thread panicked after {iterations} \
                         execution(s); schedule: {trace:?}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        // Backtrack: bump the deepest decision that still has an
        // unexplored sibling, drop everything after it.
        let mut next: Option<Vec<usize>> = None;
        for (i, &(chosen, n)) in outcome.decisions.iter().enumerate().rev() {
            if chosen + 1 < n {
                let mut p: Vec<usize> = outcome.decisions[..i].iter().map(|(c, _)| *c).collect();
                p.push(chosen + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            None => return, // exhausted: every schedule within the bound explored
            Some(p) => prefix = p,
        }
        if iterations >= max_iterations {
            eprintln!(
                "loom shim: stopping after {iterations} executions with \
                 unexplored schedules remaining (raise LOOM_MAX_ITERATIONS \
                 for full coverage)"
            );
            return;
        }
    }
}
