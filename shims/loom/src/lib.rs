//! Offline shim for the [loom](https://crates.io/crates/loom) model
//! checker, implementing exactly the API surface this workspace uses.
//!
//! [`model`] runs a closure under a cooperative scheduler that explores
//! thread interleavings **bounded-exhaustively**: every atomic access,
//! mutex acquire, condvar wait/notify, and spawn/join is a schedule
//! point; schedules are enumerated depth-first up to a preemption bound
//! (`LOOM_MAX_PREEMPTIONS`, default 2) and an execution cap
//! (`LOOM_MAX_ITERATIONS`, default 20 000). A schedule in which some
//! thread blocks forever — a deadlock, which is also how lost wakeups
//! manifest — or in which an assertion fails is reported together with
//! the decision trace that reached it.
//!
//! Differences from real loom, by design of an offline stand-in:
//!
//! * interleavings are **sequentially consistent**: `Ordering` arguments
//!   are accepted but explored as SeqCst. SC-level races, protocol
//!   bugs, deadlocks, and lost wakeups are found; relaxed-memory
//!   reorderings are not (the nightly Miri/ThreadSanitizer CI jobs own
//!   that axis);
//! * no `UnsafeCell` access tracking — raw-pointer data races are
//!   Miri/TSan territory;
//! * exploration uses preemption bounding rather than partial-order
//!   reduction, so keep models small (≤3 threads, a few operations
//!   each), as one should under real loom too.

#![warn(missing_docs)]

mod sched;

pub mod sync;
pub mod thread;

/// Explores every schedule (within the bounds described in the crate
/// docs) of the given closure. Panics — with the offending decision
/// trace on stderr — if any schedule deadlocks or panics.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    sched::explore(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn mutex_counter_is_exact_under_all_schedules() {
        super::model(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        for _ in 0..2 {
                            *counter.lock().unwrap() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 4);
        });
    }

    #[test]
    fn atomic_cursor_claims_each_index_once() {
        super::model(|| {
            let cursor = Arc::new(AtomicUsize::new(0));
            let claimed = Arc::new(Mutex::new(vec![0u32; 4]));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let claimed = Arc::clone(&claimed);
                    super::thread::spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= 4 {
                            break;
                        }
                        claimed.lock().unwrap()[i] += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(claimed.lock().unwrap().iter().all(|&c| c == 1));
        });
    }

    #[test]
    fn detects_lost_wakeup_as_deadlock() {
        // Broken protocol: the waiter checks the flag, then waits — but
        // if the notifier runs in between, the notify is lost and the
        // waiter sleeps forever. The checker must find that schedule.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let notifier = {
                    let pair = Arc::clone(&pair);
                    super::thread::spawn(move || {
                        *pair.0.lock().unwrap() = true;
                        pair.1.notify_one();
                    })
                };
                {
                    let (flag, cv) = &*pair;
                    let ready = *flag.lock().unwrap();
                    if !ready {
                        // BUG: flag may have flipped since the check.
                        let guard = flag.lock().unwrap();
                        let _guard = cv.wait(guard).unwrap();
                    }
                }
                notifier.join().unwrap();
            });
        });
        assert!(result.is_err(), "the lost-wakeup schedule must be found");
    }

    #[test]
    fn correct_condvar_loop_passes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let notifier = {
                let pair = Arc::clone(&pair);
                super::thread::spawn(move || {
                    *pair.0.lock().unwrap() = true;
                    pair.1.notify_all();
                })
            };
            {
                let (flag, cv) = &*pair;
                let mut guard = flag.lock().unwrap();
                while !*guard {
                    guard = cv.wait(guard).unwrap();
                }
            }
            notifier.join().unwrap();
        });
    }

    #[test]
    fn detects_racy_read_modify_write() {
        // Two threads doing load-then-store increments: some schedule
        // loses an update, and the final assertion fails under it.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let v = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let v = Arc::clone(&v);
                        super::thread::spawn(move || {
                            let cur = v.load(Ordering::SeqCst);
                            v.store(cur + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(v.load(Ordering::SeqCst), 2);
            });
        });
        assert!(result.is_err(), "the lost-update schedule must be found");
    }
}
