//! Offline shim for the `rand` crate.
//!
//! This workspace runs in air-gapped environments with no crates-io
//! access, so the real `rand` cannot be fetched. The shim implements the
//! exact API surface the workspace uses — [`Rng::gen`], [`Rng::gen_range`]
//! over integer/float ranges, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — over a xoshiro256++ generator. Streams are
//! deterministic in the seed (which is all the workspace's tests rely
//! on) but are **not** the same streams as the upstream `rand` crate's
//! ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Generator seeded from integers; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`]
/// (the shim's analogue of sampling from `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as [`Rng::gen_range`] bounds; mirrors
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Core entropy source; mirrors `rand::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample over a type's full domain (`bool`, ints) or unit
    /// interval (`f64`, `f32`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_uniform_float!(f64, f32);

/// Concrete generators; mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64 — the shim's stand-in
    /// for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1i32..=6);
            assert!((1..=6).contains(&w));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
