//! Offline shim for the `criterion` crate.
//!
//! The workspace builds in air-gapped environments, so the real crate
//! cannot be fetched. This shim keeps the `benches/` targets runnable by
//! implementing the API surface they use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`Bencher::iter`] / `iter_batched`, [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros — over a plain
//! wall-clock sampler (median / mean of per-iteration times).
//!
//! Differences from upstream, deliberately accepted: no statistical
//! outlier analysis, no HTML reports, no baseline storage. Instead, when
//! the `CRITERION_OUTPUT_JSON` environment variable names a file, every
//! finished benchmark appends one JSON object per line with its timing
//! estimates so snapshot tooling can consume the numbers.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Smallest total measurement time per benchmark before sampling stops.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
/// Hard cap so a single slow benchmark cannot stall a suite.
const MEASURE_CEILING: Duration = Duration::from_secs(3);

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work; mirrors `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim samples one
/// routine call per batch regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; upstream would batch many per sample.
    SmallInput,
    /// Large setup output; one routine call per setup call.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
}

/// Identifies one benchmark within a group as `function/parameter`;
/// mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing estimates for one finished benchmark.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Full benchmark path, `group/function/parameter`.
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Number of samples the estimates are computed from.
    pub samples: usize,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn emit(est: &Estimate) {
    println!(
        "{:<48} time: [{} {} {}]  ({} samples)",
        est.id,
        format_ns(est.min_ns),
        format_ns(est.median_ns),
        format_ns(est.mean_ns),
        est.samples
    );
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        if path.is_empty() {
            return;
        }
        let line = format!(
            "{{\"id\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
            est.id, est.median_ns, est.mean_ns, est.min_ns, est.samples
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("criterion shim: cannot append to {path}: {e}");
        }
    }
}

/// Per-benchmark timing driver handed to bench closures; mirrors
/// `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    result: Option<Estimate>,
    id: String,
}

impl Bencher {
    /// Times `routine`, called back-to-back in batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration pass: size batches so one batch is ≥ ~50µs, keeping
        // timer overhead negligible for nanosecond-scale routines.
        let cal_start = Instant::now();
        black_box(routine());
        let first = cal_start.elapsed();
        let batch = if first < Duration::from_micros(1) {
            1024
        } else if first < Duration::from_micros(50) {
            (Duration::from_micros(50).as_nanos() / first.as_nanos().max(1)).max(1) as usize
        } else {
            1
        };
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        while samples_ns.len() < self.sample_size
            && (run_start.elapsed() < MEASURE_BUDGET || samples_ns.len() < 3)
            && run_start.elapsed() < MEASURE_CEILING
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.finish_samples(samples_ns);
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        while samples_ns.len() < self.sample_size
            && (run_start.elapsed() < MEASURE_BUDGET || samples_ns.len() < 3)
            && run_start.elapsed() < MEASURE_CEILING
        {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples_ns.push(t.elapsed().as_nanos() as f64);
        }
        self.finish_samples(samples_ns);
    }

    fn finish_samples(&mut self, mut samples_ns: Vec<f64>) {
        assert!(!samples_ns.is_empty(), "benchmark produced no samples");
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = samples_ns.len();
        let median = if n % 2 == 1 {
            samples_ns[n / 2]
        } else {
            (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0
        };
        self.result = Some(Estimate {
            id: self.id.clone(),
            median_ns: median,
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            min_ns: samples_ns[0],
            samples: n,
        });
    }
}

/// A named set of related benchmarks; mirrors
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs `f` as benchmark `id` with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
            id: full,
        };
        f(&mut bencher, input);
        if let Some(est) = bencher.result {
            emit(&est);
        }
        self
    }

    /// Runs `f` as benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
            id: full,
        };
        f(&mut bencher);
        if let Some(est) = bencher.result {
            emit(&est);
        }
        self
    }

    /// Ends the group. (Upstream renders a report here; the shim prints
    /// results as they finish, so this is a no-op.)
    pub fn finish(self) {}
}

/// Benchmark runner root; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    /// Reads substring filters from the command line (cargo bench passes
    /// `--bench`/`--exact` style flags, which are ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut bencher = Bencher {
                sample_size: 100,
                result: None,
                id: id.to_string(),
            };
            f(&mut bencher);
            if let Some(est) = bencher.result {
                emit(&est);
            }
        }
        self
    }
}

/// Bundles benchmark functions into a runnable group; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more benchmark groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 32], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion {
            filters: vec!["nomatch".into()],
        };
        let mut g = c.benchmark_group("g");
        // Closure would panic if run; the filter must skip it.
        g.bench_function("skipped", |_b| panic!("must not run"));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("f", 128).id, "f/128");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
