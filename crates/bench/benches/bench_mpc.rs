//! Criterion benches for the MPC substrate primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treeemb_mpc::primitives::{aggregate, broadcast, shuffle, sort};
use treeemb_mpc::{MpcConfig, Runtime};

fn rt(machines: usize) -> Runtime {
    Runtime::builder()
        .config(MpcConfig::explicit(1 << 20, 1 << 14, machines).with_threads(4))
        .build()
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpc_sort");
    g.sample_size(20);
    for n in [10_000usize, 100_000] {
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        g.bench_with_input(BenchmarkId::new("sample_sort", n), &data, |b, data| {
            b.iter(|| {
                let mut rt = rt(32);
                let dist = rt.distribute(data.clone()).unwrap();
                sort::sort_by_key(&mut rt, dist, |x| *x).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpc_shuffle");
    g.sample_size(20);
    let data: Vec<u64> = (0..50_000u64).collect();
    g.bench_function("hash_shuffle_50k", |b| {
        b.iter(|| {
            let mut rt = rt(32);
            let dist = rt.distribute(data.clone()).unwrap();
            shuffle::shuffle_by_key(&mut rt, dist, |x| *x).unwrap()
        });
    });
    g.finish();
}

fn bench_reduce_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpc_collectives");
    g.sample_size(20);
    let data: Vec<u64> = (0..100_000u64).collect();
    g.bench_function("count_100k_64m", |b| {
        b.iter(|| {
            let mut rt = rt(64);
            let dist = rt.distribute(data.clone()).unwrap();
            aggregate::count(&mut rt, &dist).unwrap()
        });
    });
    let payload: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    g.bench_function("broadcast_1k_words_64m", |b| {
        b.iter(|| {
            let mut rt = rt(64);
            broadcast::broadcast(&mut rt, payload.clone()).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sort, bench_shuffle, bench_reduce_broadcast);
criterion_main!(benches);
