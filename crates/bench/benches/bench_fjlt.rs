//! Criterion microbenches for the JL layer: WHT throughput, sequential
//! FJLT vs dense JL, and the MPC FJLT end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treeemb_fjlt::dense::gaussian_jl;
use treeemb_fjlt::fjlt::{Fjlt, FjltParams};
use treeemb_fjlt::mpc::fjlt_mpc;
use treeemb_geom::generators;
use treeemb_linalg::wht::wht_inplace;
use treeemb_mpc::{MpcConfig, Runtime};

fn bench_wht(c: &mut Criterion) {
    let mut g = c.benchmark_group("wht");
    for log_n in [8u32, 12, 16] {
        let n = 1usize << log_n;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("inplace", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    wht_inplace(&mut d);
                    d
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_seq_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("jl_seq");
    let n = 64;
    for d in [256usize, 1024, 4096] {
        let ps = generators::uniform_cube(n, d, 1 << 10, 3);
        let params = FjltParams::for_dataset(n, d, 0.5, 7);
        let fjlt = Fjlt::new(params);
        g.bench_with_input(BenchmarkId::new("fjlt", d), &ps, |b, ps| {
            b.iter(|| fjlt.apply(ps));
        });
        if d <= 1024 {
            g.bench_with_input(BenchmarkId::new("dense_jl", d), &ps, |b, ps| {
                b.iter(|| gaussian_jl(ps, params.k, 7));
            });
        }
    }
    g.finish();
}

fn bench_mpc_fjlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("jl_mpc");
    g.sample_size(10);
    let n = 32;
    for d in [256usize, 1024] {
        let ps = generators::uniform_cube(n, d, 1 << 10, 5);
        let params = FjltParams::for_dataset(n, d, 0.5, 9);
        g.bench_with_input(BenchmarkId::new("fjlt_mpc", d), &ps, |b, ps| {
            b.iter(|| {
                let mut rt = Runtime::builder()
                    .config(
                        MpcConfig::explicit(n * d, 1 << 18, 8)
                            .with_threads(4)
                            .lenient(),
                    )
                    .build();
                fjlt_mpc(&mut rt, ps, &params).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wht, bench_seq_transforms, bench_mpc_fjlt);
criterion_main!(benches);
