//! `cargo bench --bench experiments` — regenerates every table/figure
//! of EXPERIMENTS.md (quick scale; run the `exp` binary with `--full`
//! for the larger sweeps).

use treeemb_bench::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    // Honour criterion-style filter args minimally: any arg that matches
    // an experiment id restricts the run.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = ALL_EXPERIMENTS
        .iter()
        .copied()
        .filter(|id| args.iter().all(|a| a.starts_with('-')) || args.iter().any(|a| a == id))
        .collect();
    let scale = Scale::quick();
    for id in wanted {
        let start = std::time::Instant::now();
        let tables = run_experiment(id, scale);
        for t in &tables {
            println!("{}", t.to_markdown());
        }
        println!(
            "[{} finished in {:.2?}]\n",
            id.to_uppercase(),
            start.elapsed()
        );
    }
}
