//! Criterion benches for the embedding pipelines: Algorithm 1 (hybrid),
//! the grid baseline, and Algorithm 2 (MPC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treeemb_core::mpc_embed::embed_mpc;
use treeemb_core::params::{GridParams, HybridParams};
use treeemb_core::seq::{GridEmbedder, SeqEmbedder};
use treeemb_geom::generators;
use treeemb_mpc::{MpcConfig, Runtime};

fn bench_seq_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("embed_seq");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let ps = generators::uniform_cube(n, 8, 1 << 10, 3);
        let hp = HybridParams::for_dataset(&ps, 4).unwrap();
        let hybrid = SeqEmbedder::new(hp);
        g.bench_with_input(BenchmarkId::new("hybrid_r4", n), &ps, |b, ps| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                hybrid.embed(ps, seed).unwrap()
            });
        });
        let gp = GridParams::for_dataset(&ps).unwrap();
        let grid = GridEmbedder::new(gp);
        g.bench_with_input(BenchmarkId::new("grid", n), &ps, |b, ps| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                grid.embed(ps, seed).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_parallel_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("embed_parallel");
    g.sample_size(10);
    let n = 1024;
    let ps = generators::uniform_cube(n, 8, 1 << 10, 7);
    let hp = HybridParams::for_dataset(&ps, 4).unwrap();
    let embedder = SeqEmbedder::new(hp);
    for threads in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                embedder.embed_parallel(&ps, seed, t).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_distance_queries(c: &mut Criterion) {
    use treeemb_hst::DistanceOracle;
    let mut g = c.benchmark_group("tree_distance");
    let ps = generators::uniform_cube(2048, 8, 1 << 12, 9);
    let emb = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap())
        .embed(&ps, 1)
        .unwrap();
    let oracle = DistanceOracle::new(&emb.tree);
    let pairs: Vec<(usize, usize)> = (0..4096)
        .map(|i| ((i * 37) % 2048, (i * 101) % 2048))
        .collect();
    g.bench_function("walkup_4k_queries", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(p, q)| emb.tree_distance(p, q))
                .sum::<f64>()
        })
    });
    g.bench_function("oracle_4k_queries", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(p, q)| oracle.distance(p, q))
                .sum::<f64>()
        })
    });
    g.bench_function("oracle_build", |b| {
        b.iter(|| DistanceOracle::new(&emb.tree))
    });
    g.finish();
}

fn bench_mpc_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("embed_mpc");
    g.sample_size(10);
    for n in [64usize, 256] {
        let ps = generators::uniform_cube(n, 8, 1 << 10, 5);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let cap = (params.total_grid_words() * 4).max(1 << 16);
        g.bench_with_input(BenchmarkId::new("algorithm2", n), &ps, |b, ps| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut rt = Runtime::builder()
                    .config(MpcConfig::explicit(n * 9, cap, 8).with_threads(4))
                    .build();
                embed_mpc(&mut rt, ps, &params, seed).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_seq_embed,
    bench_parallel_embed,
    bench_distance_queries,
    bench_mpc_embed
);
criterion_main!(benches);
