//! Criterion benches for the applications vs their exact baselines —
//! the asymptotic win of the tree route (near-linear once the tree
//! exists vs `O(n²)`/`O(n³)` exact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treeemb_apps::densest_ball::densest_cluster;
use treeemb_apps::emd::{exact_emd, tree_emd};
use treeemb_apps::exact::prim;
use treeemb_apps::mst::tree_mst;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;

fn bench_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("mst");
    g.sample_size(10);
    for n in [128usize, 512] {
        let ps = generators::uniform_cube(n, 8, 1 << 10, 3);
        let emb = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap())
            .embed(&ps, 1)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("tree_guided", n), &ps, |b, ps| {
            b.iter(|| tree_mst(&emb, ps));
        });
        g.bench_with_input(BenchmarkId::new("exact_prim", n), &ps, |b, ps| {
            b.iter(|| prim::mst(ps));
        });
    }
    g.finish();
}

fn bench_emd(c: &mut Criterion) {
    let mut g = c.benchmark_group("emd");
    g.sample_size(10);
    for half in [32usize, 96] {
        let n = half * 2;
        let ps = generators::uniform_cube(n, 8, 1 << 10, 5);
        let a: Vec<usize> = (0..half).collect();
        let b_ids: Vec<usize> = (half..n).collect();
        let emb = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap())
            .embed(&ps, 2)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("tree_flow", half), &ps, |b, _| {
            b.iter(|| tree_emd(&emb, &a, &b_ids));
        });
        g.bench_with_input(BenchmarkId::new("exact_hungarian", half), &ps, |b, ps| {
            b.iter(|| exact_emd(ps, &a, &b_ids));
        });
    }
    g.finish();
}

fn bench_densest(c: &mut Criterion) {
    let mut g = c.benchmark_group("densest_ball");
    g.sample_size(10);
    let inst = generators::planted_ball(512, 8, 128, 10.0, 1 << 12, 7);
    let emb = SeqEmbedder::new(HybridParams::for_dataset(&inst.points, 4).unwrap())
        .embed(&inst.points, 3)
        .unwrap();
    g.bench_function("tree_query", |b| b.iter(|| densest_cluster(&emb, 160.0)));
    g.bench_function("exact_scan", |b| {
        b.iter(|| treeemb_apps::exact::ball::best_point_centered(&inst.points, 10.0))
    });
    g.finish();
}

criterion_group!(benches, bench_mst, bench_emd, bench_densest);
criterion_main!(benches);
