//! Criterion benches for the partitioning layer: ball-grid assignment
//! cost as the bucket dimension grows (the Lemma-6 wall, measured in
//! nanoseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treeemb_partition::ball::GridSequence;
use treeemb_partition::coverage::grids_needed;
use treeemb_partition::hybrid::HybridLevel;

fn bench_ball_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("ball_assign");
    for m in [2usize, 4, 5, 6] {
        let u = grids_needed(m, 1000, 1e-3);
        let seq = GridSequence::build(m, 1.0, u, 7);
        let points: Vec<Vec<f64>> = (0..256)
            .map(|i| {
                (0..m)
                    .map(|j| ((i * 7 + j * 13) % 97) as f64 * 0.37)
                    .collect()
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new(format!("m{m}_U{u}"), m),
            &points,
            |b, pts| {
                b.iter(|| {
                    let mut covered = 0usize;
                    for p in pts {
                        if seq.assign(p).is_some() {
                            covered += 1;
                        }
                    }
                    covered
                });
            },
        );
    }
    g.finish();
}

fn bench_hybrid_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("hybrid_level_assign");
    let d = 16;
    for r in [4usize, 8, 16] {
        let m = d / r;
        let u = grids_needed(m, 1000, 1e-3);
        let level = HybridLevel::new(d, r, 8.0, u, 11);
        let points: Vec<Vec<f64>> = (0..256)
            .map(|i| (0..d).map(|j| ((i * 11 + j * 5) % 251) as f64).collect())
            .collect();
        g.bench_with_input(
            BenchmarkId::new(format!("d16_r{r}"), r),
            &points,
            |b, pts| {
                b.iter(|| pts.iter().filter(|p| level.assign(p).is_some()).count());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ball_assign, bench_hybrid_level);
criterion_main!(benches);
