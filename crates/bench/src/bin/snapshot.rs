//! Hot-path kernel snapshot: measures the optimized kernels against
//! their straightforward reference implementations in-process and writes
//! machine-readable `BENCH_1.json`.
//!
//! ```text
//! cargo run --release -p treeemb-bench --bin snapshot            # writes BENCH_1.json
//! cargo run --release -p treeemb-bench --bin snapshot -- --out x.json --quick
//! cargo run --release -p treeemb-bench --bin snapshot -- --trace-out trace.json
//! ```
//!
//! The pairs measured:
//!
//! * `partition_keys` — exact `HybridLevel::assign` (materializes
//!   per-bucket `Vec<i64>` cells) vs the allocation-free
//!   `assign_packed` 128-bit structural-hash key;
//! * `node_id_chain` — `assign` + `absorb_into` vs the streaming
//!   `absorb_assignment_into` (the MPC node-id hot path);
//! * `wht` — plain stage-by-stage butterflies vs the cache-blocked
//!   `wht_inplace` on a large transform;
//! * `executor_round` — a `thread::scope` spawn per round vs the
//!   persistent worker pool behind `par_map_indexed`;
//! * `audit_pairs` — the `O(n²·d)` distortion audit at 1 thread vs all
//!   available threads (row-partial formulation; equal results).
//!
//! Criterion benches also emit machine-readable lines when
//! `CRITERION_OUTPUT_JSON` points at a file; this binary is the small,
//! checked-in snapshot CI smoke-runs.

use std::fmt::Write as _;
use std::time::Instant;
use treeemb_fjlt::audit::distortion_report_parallel;
use treeemb_geom::generators;
use treeemb_linalg::wht::{wht_inplace, wht_stages_inplace};
use treeemb_partition::ids::StructuralHash;
use treeemb_partition::HybridLevel;

struct Entry {
    id: String,
    median_ns: u128,
    samples: usize,
}

/// Median wall time of `samples` runs of `f` (each run may loop
/// internally to stay measurable).
fn measure(id: &str, samples: usize, mut f: impl FnMut()) -> Entry {
    // One warmup run populates caches and the worker pool.
    f();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Entry {
        id: id.to_string(),
        median_ns: times[times.len() / 2],
        samples,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    // `--trace-out PATH` arms span collection (same effect as
    // TREEEMB_TRACE=PATH in the environment).
    if let Some(trace) = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
    {
        treeemb_obs::set_trace_path(trace);
    }
    let samples = if quick { 5 } else { 15 };
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut entries: Vec<Entry> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut pair = |name: &str, base: Entry, opt: Entry, entries: &mut Vec<Entry>| {
        let s = base.median_ns as f64 / opt.median_ns.max(1) as f64;
        eprintln!(
            "{name}: reference {} ns, optimized {} ns, speedup {s:.2}x",
            base.median_ns, opt.median_ns
        );
        entries.push(base);
        entries.push(opt);
        speedups.push((name.to_string(), s));
    };

    // Partition keys: exact materialized cells vs packed hash.
    {
        let dim = 16;
        let ps = generators::uniform_cube(if quick { 256 } else { 1024 }, dim, 1 << 10, 3);
        let lvl = HybridLevel::new(dim, 4, 24.0, 64, 7);
        let pts: Vec<&[f64]> = ps.iter().collect();
        let base = measure("partition_keys/exact", samples, || {
            let mut alive = 0usize;
            for p in &pts {
                if lvl.assign(p).is_some() {
                    alive += 1;
                }
            }
            assert!(alive > 0);
        });
        let opt = measure("partition_keys/packed", samples, || {
            let mut alive = 0usize;
            for p in &pts {
                if lvl.assign_packed(p).is_some() {
                    alive += 1;
                }
            }
            assert!(alive > 0);
        });
        pair("partition_keys", base, opt, &mut entries);

        // Node-id chains (the MPC path): materialize-then-absorb vs stream.
        let h0 = StructuralHash::root().absorb(1);
        let base = measure("node_id_chain/materialized", samples, || {
            let mut acc = 0u64;
            for p in &pts {
                if let Some(a) = lvl.assign(p) {
                    acc ^= a.absorb_into(h0).value();
                }
            }
            std::hint::black_box(acc);
        });
        let opt = measure("node_id_chain/streamed", samples, || {
            let mut acc = 0u64;
            for p in &pts {
                if let Some(h) = lvl.absorb_assignment_into(p, h0) {
                    acc ^= h.value();
                }
            }
            std::hint::black_box(acc);
        });
        pair("node_id_chain", base, opt, &mut entries);
    }

    // End-to-end sequential embed: exact keys (cloned per-bucket cells
    // in the grouping hot loop) vs packed keys (copyable 16-byte keys).
    {
        use treeemb_core::params::HybridParams;
        use treeemb_core::seq::SeqEmbedder;
        let n = if quick { 256 } else { 1024 };
        let ps = generators::uniform_cube(n, 8, 1 << 10, 11);
        let embedder = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap());
        let base = measure("embed_tree/exact_keys", samples, || {
            let emb = embedder.embed_exact_keys(&ps, 5, 1).unwrap();
            std::hint::black_box(emb.tree.num_nodes());
        });
        let opt = measure("embed_tree/packed_keys", samples, || {
            let emb = embedder.embed(&ps, 5).unwrap();
            std::hint::black_box(emb.tree.num_nodes());
        });
        pair("embed_tree", base, opt, &mut entries);
    }

    // WHT: plain staged butterflies vs the cache-blocked transform.
    {
        let n = 1usize << 18;
        let input: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let reps = if quick { 1 } else { 3 };
        let mut buf = input.clone();
        let base = measure("wht/staged_plain", samples, || {
            for _ in 0..reps {
                buf.copy_from_slice(&input);
                wht_stages_inplace(&mut buf, 0, n.trailing_zeros());
                std::hint::black_box(buf[0]);
            }
        });
        let mut buf2 = input.clone();
        let opt = measure("wht/cache_blocked", samples, || {
            for _ in 0..reps {
                buf2.copy_from_slice(&input);
                wht_inplace(&mut buf2);
                std::hint::black_box(buf2[0]);
            }
        });
        assert_eq!(buf, buf2, "blocked WHT must be bit-identical");
        pair("wht", base, opt, &mut entries);
    }

    // Executor rounds: spawn-per-round scope vs the persistent pool.
    {
        let rounds = if quick { 50 } else { 200 };
        let k = threads.max(2);
        let base = measure("executor_round/spawn_per_round", samples, || {
            let mut acc = 0u64;
            for r in 0..rounds {
                let mut outs = vec![0u64; k];
                std::thread::scope(|s| {
                    for (i, slot) in outs.iter_mut().enumerate() {
                        s.spawn(move || *slot = (i as u64).wrapping_mul(r + 1));
                    }
                });
                acc ^= outs.iter().sum::<u64>();
            }
            std::hint::black_box(acc);
        });
        let opt = measure("executor_round/worker_pool", samples, || {
            let mut acc = 0u64;
            for r in 0..rounds {
                let outs = treeemb_mpc::exec::par_map_indexed(
                    (0..k as u64).collect::<Vec<u64>>(),
                    k,
                    move |_, i| i.wrapping_mul(r + 1),
                );
                acc ^= outs.iter().sum::<u64>();
            }
            std::hint::black_box(acc);
        });
        pair("executor_round", base, opt, &mut entries);
    }

    // Audit: O(n² d) distortion sweep, 1 thread vs all threads.
    {
        let ps = generators::uniform_cube(if quick { 192 } else { 512 }, 16, 1 << 10, 5);
        let scaled = {
            let rows: Vec<Vec<f64>> = ps
                .iter()
                .map(|p| p.iter().map(|x| x * 1.01).collect())
                .collect();
            treeemb_geom::PointSet::from_rows(&rows)
        };
        let base = measure("audit_pairs/serial", samples, || {
            std::hint::black_box(distortion_report_parallel(&ps, &scaled, 1));
        });
        let opt = measure("audit_pairs/parallel", samples, || {
            std::hint::black_box(distortion_report_parallel(&ps, &scaled, threads));
        });
        pair("audit_pairs", base, opt, &mut entries);
    }

    // Hand-rolled JSON (the workspace builds without serde).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"BENCH_1\",\n");
    let _ = writeln!(
        json,
        "  \"description\": \"hot-path kernel snapshot: reference vs optimized, median of {samples} samples\","
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"samples\": {}}}",
            e.id, e.median_ns, e.samples
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {s:.3}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, &json).expect("write snapshot json");
    eprintln!("wrote {out}");

    let st = treeemb_mpc::exec::stats();
    eprintln!(
        "executor: {} jobs ({} sequential), {} tasks, {} chunk claims, \
         peak {} concurrent workers, utilization {:.1}%",
        st.jobs,
        st.sequential_jobs,
        st.tasks,
        st.chunk_claims,
        st.max_concurrent_workers,
        st.utilization() * 100.0
    );
    if let Some(path) = treeemb_obs::flush_trace() {
        eprintln!("wrote trace {}", path.display());
    }
}
