//! Chaos runner CLI: replays fault plans and sweeps the seeded plan
//! matrix against the conformance contract (bit-identical output or a
//! typed error — never silent corruption, never a panic).
//!
//! ```text
//! # replay one plan against the full pipeline
//! cargo run --release -p treeemb-bench --bin chaos -- --faults plan.json
//!
//! # replay against one stage
//! cargo run --release -p treeemb-bench --bin chaos -- --faults plan.json --stage fjlt
//!
//! # sweep the seeded matrix over all stages (CI nightly job)
//! cargo run --release -p treeemb-bench --bin chaos -- --sweep --seeds 4 \
//!     --out chaos-report.json --shrunk-out chaos-shrunk-plan.json
//! ```
//!
//! Exit status: 0 when every check is conformant or a typed error;
//! 1 when any check found a mismatch or a panic (the shrunk minimal
//! reproducing plan is printed as JSON and, with `--shrunk-out`,
//! written to disk for artifact upload); 2 on usage errors.

use treeemb_bench::chaos::{
    check_stage_tuned, report_json, shrink_failure, sweep_with, ChaosVerdict, Stage, SweepOptions,
    SweepRow,
};
use treeemb_mpc::fault::FaultPlan;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--faults plan.json] [--stage fjlt|partition|pipeline|all]\n\
         \x20            [--sweep] [--seeds N] [--data-seed N]\n\
         \x20            [--crash-rate P] [--hetero F]\n\
         \x20            [--out report.json] [--shrunk-out plan.json]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let stages: Vec<Stage> = match flag_value(&args, "--stage").as_deref() {
        None | Some("all") => Stage::all().to_vec(),
        Some(name) => match Stage::parse(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown stage {name:?}");
                usage();
            }
        },
    };
    let data_seed: u64 = flag_value(&args, "--data-seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let opts = SweepOptions {
        crash_rate: flag_value(&args, "--crash-rate")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(0.0),
        hetero: flag_value(&args, "--hetero")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(0.0),
    };

    let rows: Vec<SweepRow> = if let Some(path) = flag_value(&args, "--faults") {
        // Replay mode: one plan from disk against the selected stages.
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let plan = FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        stages
            .iter()
            .map(|&stage| {
                let outcome = check_stage_tuned(stage, &plan, data_seed, opts.hetero);
                SweepRow {
                    stage,
                    plan_name: "replay",
                    seed: data_seed,
                    plan: plan.clone(),
                    hetero: opts.hetero,
                    outcome,
                }
            })
            .collect()
    } else if args.iter().any(|a| a == "--sweep") {
        let seeds: u64 = flag_value(&args, "--seeds")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(4);
        sweep_with(&stages, seeds, opts)
    } else {
        usage();
    };

    for row in &rows {
        let (tag, detail) = match &row.outcome.verdict {
            ChaosVerdict::Conformant => ("ok   ", String::new()),
            ChaosVerdict::TypedError(e) => ("typed", e.clone()),
            ChaosVerdict::Mismatch(e) => ("FAIL ", e.clone()),
            ChaosVerdict::Panicked(e) => ("PANIC", e.clone()),
        };
        eprintln!(
            "[{tag}] stage={} plan={} seed={} faults={} {detail}",
            row.stage.name(),
            row.plan_name,
            row.seed,
            row.outcome.faults,
        );
    }

    let report = report_json(&rows);
    if let Some(out) = flag_value(&args, "--out") {
        std::fs::write(&out, &report).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {out}");
    }

    let failures: Vec<&SweepRow> = rows
        .iter()
        .filter(|r| r.outcome.verdict.is_failure())
        .collect();
    if failures.is_empty() {
        eprintln!("chaos: {} checks, all conformant or typed", rows.len());
        let _ = treeemb_obs::flush_trace();
        return;
    }

    // Shrink the first failure to a minimal reproducing plan and emit it
    // as JSON on stdout (and to --shrunk-out for CI artifact upload).
    let first = failures[0];
    eprintln!(
        "chaos: {} of {} checks FAILED; shrinking stage={} plan={} seed={} ...",
        failures.len(),
        rows.len(),
        first.stage.name(),
        first.plan_name,
        first.seed
    );
    let minimal = shrink_failure(first);
    let plan_json = minimal.to_json();
    println!("{plan_json}");
    eprintln!(
        "replay with: chaos --faults plan.json --stage {} --data-seed {}",
        first.stage.name(),
        first.seed
    );
    if let Some(out) = flag_value(&args, "--shrunk-out") {
        let _ = std::fs::write(&out, &plan_json);
        eprintln!("wrote {out}");
    }
    let _ = treeemb_obs::flush_trace();
    std::process::exit(1);
}
