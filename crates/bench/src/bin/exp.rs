//! Experiment runner CLI.
//!
//! ```text
//! cargo run --release -p treeemb-bench --bin exp -- all
//! cargo run --release -p treeemb-bench --bin exp -- e1 e10 --full
//! cargo run --release -p treeemb-bench --bin exp -- e3 --csv out/
//! cargo run --release -p treeemb-bench --bin exp -- e2 --trace-out trace.json
//! ```

use treeemb_bench::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(trace) = &trace_out {
        treeemb_obs::set_trace_path(trace);
    }
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != csv_dir.as_deref())
        .filter(|a| Some(a.as_str()) != trace_out.as_deref())
        .map(|a| a.to_lowercase())
        .collect();
    if wanted.is_empty() || wanted.iter().any(|a| a == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let scale = if full { Scale::full() } else { Scale::quick() };
    for id in &wanted {
        eprintln!(
            "== running {} ({}) ==",
            id.to_uppercase(),
            if full { "full" } else { "quick" }
        );
        let start = std::time::Instant::now();
        let tables = run_experiment(id, scale);
        for t in &tables {
            println!("{}", t.to_markdown());
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}.csv", t.id.to_lowercase());
                std::fs::write(&path, t.to_csv()).expect("write csv");
                eprintln!("wrote {path}");
            }
        }
        eprintln!(
            "== {} done in {:.2?} ==\n",
            id.to_uppercase(),
            start.elapsed()
        );
    }
    if let Some(path) = treeemb_obs::flush_trace() {
        eprintln!("wrote trace {}", path.display());
    }
}
