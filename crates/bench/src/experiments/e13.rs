//! E13 — Corollary 1 as stated: the applications themselves run in O(1)
//! MPC rounds on top of the distributed embedding, and agree with their
//! sequential counterparts.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::densest_ball::densest_cluster;
use treeemb_apps::emd::tree_emd;
use treeemb_apps::exact::prim;
use treeemb_apps::mpc::{mpc_densest_cluster, mpc_mst_edges, mpc_tree_emd};
use treeemb_apps::mst::tree_mst;
use treeemb_core::mpc_embed::embed_mpc_full;
use treeemb_core::params::HybridParams;
use treeemb_geom::generators;
use treeemb_mpc::{MpcConfig, Runtime};

/// Runs E13.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(40, 160);
    let ps = generators::gaussian_clusters(n, 8, 4, 3.0, 1 << 10, 77);
    let params = HybridParams::for_dataset(&ps, 4).unwrap();
    let cap = (params.total_grid_words() * 4).max(1 << 16);
    let mut rt = Runtime::builder()
        .config(MpcConfig::explicit(n * 9, cap, 8).with_threads(4))
        .build();
    let full = embed_mpc_full(&mut rt, &ps, &params, 3).unwrap();
    let embed_rounds = rt.metrics().rounds();

    let mut t = Table::new(
        "E13",
        "constant-round MPC applications (Cor 1): extra rounds beyond the embedding + agreement with sequential",
        &["application", "extra rounds", "mpc value", "sequential value", "agree"],
    );

    // EMD.
    let half = n / 2;
    let before = rt.metrics().rounds();
    let mpc_emd = mpc_tree_emd(&mut rt, full.paths.clone(), move |p| {
        if (p as usize) < half {
            1
        } else {
            -1
        }
    })
    .unwrap();
    let emd_rounds = rt.metrics().rounds() - before;
    let a: Vec<usize> = (0..half).collect();
    let b: Vec<usize> = (half..n).collect();
    let seq_emd = tree_emd(&full.embedding, &a, &b);
    t.row(vec![
        "EMD".into(),
        emd_rounds.to_string(),
        fnum(mpc_emd),
        fnum(seq_emd),
        ((mpc_emd - seq_emd).abs() < 1e-9 * (1.0 + seq_emd)).to_string(),
    ]);

    // Densest ball.
    let bound = 300.0;
    let before = rt.metrics().rounds();
    let mpc_db = mpc_densest_cluster(&mut rt, full.paths.clone(), bound).unwrap();
    let db_rounds = rt.metrics().rounds() - before;
    let seq_db = densest_cluster(&full.embedding, bound);
    t.row(vec![
        "densest ball".into(),
        db_rounds.to_string(),
        mpc_db.count.to_string(),
        seq_db.count.to_string(),
        (mpc_db.count == seq_db.count as u64).to_string(),
    ]);

    // MST.
    let before = rt.metrics().rounds();
    let edges = mpc_mst_edges(&mut rt, full.paths.clone()).unwrap();
    let mst_rounds = rt.metrics().rounds() - before;
    let e: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(a, b)| (a as usize, b as usize))
        .collect();
    let mpc_cost = prim::edges_cost(&ps, &e);
    let seq_cost = tree_mst(&full.embedding, &ps).cost;
    t.row(vec![
        "MST".into(),
        mst_rounds.to_string(),
        fnum(mpc_cost),
        fnum(seq_cost),
        (prim::is_spanning_tree(n, &e) && (mpc_cost - seq_cost).abs() < 1e-9 * (1.0 + seq_cost))
            .to_string(),
    ]);

    t.row(vec![
        "(embedding itself)".into(),
        embed_rounds.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_all_applications_agree_in_constant_rounds() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            if row[0].starts_with('(') {
                continue;
            }
            let rounds: usize = row[1].parse().unwrap();
            assert!(rounds <= 4, "{}: {rounds} rounds", row[0]);
            assert_eq!(row[4], "true", "{} disagrees with sequential", row[0]);
        }
    }
}
