//! E2 — Theorem 1: constant rounds, sublinear local space, near-linear
//! total space, across an `n` sweep.

use crate::{Scale, Table};
use treeemb_core::pipeline::{run as run_pipeline, PipelineConfig};
use treeemb_geom::generators;

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E2",
        "Theorem 1 resource profile vs n (rounds must stay flat; spaces grow ~linearly)",
        &[
            "n",
            "d",
            "JL",
            "rounds",
            "fjlt rounds",
            "capacity/machine (words)",
            "peak machine words",
            "peak total words",
            "machines",
        ],
    );
    let ns = scale.pick(vec![32usize, 64, 128], vec![64usize, 128, 256, 512, 1024]);
    for &n in &ns {
        let ps = generators::uniform_cube(n, 8, 1 << 8, 7 + n as u64);
        let cfg = PipelineConfig::builder().r(4).threads(4).build();
        let rep = run_pipeline(&ps, &cfg).expect("pipeline failed");
        t.row(vec![
            n.to_string(),
            "8".into(),
            if rep.jl_applied { "yes" } else { "no" }.into(),
            rep.rounds.to_string(),
            rep.fjlt_rounds.to_string(),
            rep.capacity_words.to_string(),
            rep.peak_machine_words.to_string(),
            rep.peak_total_words.to_string(),
            rep.machines.to_string(),
        ]);
    }
    // High-dimensional block: the JL step must engage.
    let ns_hd = scale.pick(vec![48usize], vec![64usize, 128, 256]);
    for &n in &ns_hd {
        let d = 512;
        let ps = generators::noisy_line(n, d, 1 << 10, 1.0, 3 + n as u64);
        let cfg = PipelineConfig::builder().xi(0.75).threads(4).build();
        let rep = run_pipeline(&ps, &cfg).expect("pipeline failed");
        t.row(vec![
            n.to_string(),
            d.to_string(),
            if rep.jl_applied { "yes" } else { "no" }.into(),
            rep.rounds.to_string(),
            rep.fjlt_rounds.to_string(),
            rep.capacity_words.to_string(),
            rep.peak_machine_words.to_string(),
            rep.peak_total_words.to_string(),
            rep.machines.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_rounds_stay_flat_in_n() {
        let tables = run(Scale::quick());
        let t = &tables[0];
        let low_d: Vec<usize> = t
            .rows
            .iter()
            .filter(|r| r[1] == "8")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(low_d.len() >= 2);
        assert!(
            low_d.windows(2).all(|w| w[0] == w[1]),
            "rounds grew with n: {low_d:?}"
        );
    }
}
