//! E8 — Corollary 1(2): tree-guided MST vs exact Prim, hybrid vs grid
//! embeddings across `n`.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::exact::prim;
use treeemb_apps::mst::tree_mst;
use treeemb_core::params::{GridParams, HybridParams};
use treeemb_core::seq::{GridEmbedder, SeqEmbedder};
use treeemb_geom::generators;

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let seeds = scale.pick(3u64, 8);
    let mut t = Table::new(
        "E8",
        "MST approximation ratio vs n (Cor 1(2); hybrid should beat the grid baseline)",
        &[
            "n",
            "d",
            "exact cost",
            "hybrid ratio",
            "grid ratio",
            "hybrid/grid",
        ],
    );
    let ns = scale.pick(vec![32usize, 64], vec![64usize, 128, 256, 512]);
    for &n in &ns {
        let d = 8;
        let ps = generators::gaussian_clusters(n, d, 4, 4.0, 1 << 10, 3 + n as u64);
        let exact = prim::mst(&ps).cost;
        let hp = HybridParams::for_dataset(&ps, 4).unwrap();
        let hybrid = SeqEmbedder::new(hp);
        let gp = GridParams::for_dataset(&ps).unwrap();
        let grid = GridEmbedder::new(gp);
        let mut h_sum = 0.0;
        let mut g_sum = 0.0;
        for s in 0..seeds {
            let he = hybrid.embed(&ps, 100 + s).unwrap();
            let ge = grid.embed(&ps, 100 + s).unwrap();
            let hst = tree_mst(&he, &ps);
            let gst = tree_mst(&ge, &ps);
            assert!(prim::is_spanning_tree(n, &hst.edges));
            assert!(prim::is_spanning_tree(n, &gst.edges));
            h_sum += hst.cost / exact;
            g_sum += gst.cost / exact;
        }
        let h_ratio = h_sum / seeds as f64;
        let g_ratio = g_sum / seeds as f64;
        t.row(vec![
            n.to_string(),
            d.to_string(),
            fnum(exact),
            fnum(h_ratio),
            fnum(g_ratio),
            fnum(h_ratio / g_ratio),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_ratios_are_sane() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            let h: f64 = row[3].parse().unwrap();
            let g: f64 = row[4].parse().unwrap();
            assert!(h >= 1.0 - 1e-9 && g >= 1.0 - 1e-9);
            assert!(h < 12.0, "hybrid MST ratio {h} out of range");
            assert!(g < 20.0, "grid MST ratio {g} out of range");
        }
    }
}
