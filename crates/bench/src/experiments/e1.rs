//! E1 — Theorem 2: expected distortion scales like `√(d·r)·logΔ`.
//!
//! Sweeps the bucket count `r` at fixed dimension: the measured expected
//! distortion should grow with `√r` while the grid budget `U` shrinks
//! dramatically — the trade-off hybrid partitioning navigates. `r = d`
//! is the grid-like extreme; small `r` approaches ball partitioning.

use crate::{table::fnum, Scale, Table};
use treeemb_core::audit::estimate_expected_distortion;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(32, 96);
    let trials = scale.pick(6, 24);
    let delta = 1u64 << 8;
    let mut t = Table::new(
        "E1",
        "expected distortion vs bucket count r (fixed d, Δ=2^8; Theorem 2: α = O(√(d·r)·logΔ))",
        &[
            "d",
            "r",
            "m=d/r",
            "U (grids)",
            "levels",
            "E-distortion (max pair)",
            "mean ratio",
            "theory √(dr)·logΔ",
        ],
    );
    for (d, rs) in [
        (4usize, vec![1usize, 2, 4]),
        (8, vec![2, 4, 8]),
        (16, vec![4, 8, 16]),
    ] {
        let ps = generators::uniform_cube(n, d, delta, 101 + d as u64);
        for &r in &rs {
            let params = match HybridParams::for_dataset(&ps, r) {
                Ok(p) => p,
                Err(e) => {
                    t.row(vec![
                        d.to_string(),
                        r.to_string(),
                        (d / r).to_string(),
                        format!("infeasible: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            };
            let emb = SeqEmbedder::new(params.clone());
            let est = estimate_expected_distortion(&ps, trials, |seed| emb.embed(&ps, seed))
                .expect("embedding failed");
            let theory = ((d * r) as f64).sqrt() * (delta as f64).ln() / std::f64::consts::LN_2;
            t.row(vec![
                d.to_string(),
                r.to_string(),
                (params.dim / r).to_string(),
                params.grids_per_bucket.to_string(),
                params.num_levels().to_string(),
                fnum(est.expected_distortion),
                fnum(est.mean_ratio),
                fnum(theory),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_distortion_grows_with_r_at_fixed_d() {
        let tables = run(Scale::quick());
        let t = &tables[0];
        // Within the d=8 block, r=2 should beat (or at worst match) r=8
        // on expected distortion — the paper's core claim.
        let rows8: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "8").collect();
        assert_eq!(rows8.len(), 2 + 1);
        let lo: f64 = rows8.first().unwrap()[5].parse().unwrap();
        let hi: f64 = rows8.last().unwrap()[5].parse().unwrap();
        assert!(
            lo <= hi * 1.3,
            "distortion at small r ({lo}) >> at r=d ({hi})"
        );
    }
}
