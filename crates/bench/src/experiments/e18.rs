//! E18 — approximate nearest neighbors (paper reference \[2\]: the
//! FJLT's original application). Queries probe O(logΔ) hash maps
//! instead of scanning n points; quality is bounded by the embedding's
//! distortion and improves with a best-of-k ensemble.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::ann::{exact_nearest, AnnIndex};
use treeemb_core::params::HybridParams;
use treeemb_geom::{generators, metrics};

/// Runs E18.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(300, 2000);
    let queries = scale.pick(60, 300);
    let ps = generators::gaussian_clusters(n, 8, 8, 4.0, 1 << 11, 47);
    let params = HybridParams::for_dataset(&ps, 4).unwrap();
    let mut t = Table::new(
        "E18",
        "approximate nearest neighbors: quality vs ensemble size k (best-of-k over seeds)",
        &[
            "k (indices)",
            "mean dist ratio",
            "p95 ratio",
            "exact-hit rate",
            "probes/query",
        ],
    );
    let ensemble: Vec<AnnIndex> = (0..8u64)
        .map(|s| AnnIndex::build(&ps, &params, 700 + s).unwrap())
        .collect();
    for &k in &[1usize, 2, 4, 8] {
        let mut ratios = Vec::with_capacity(queries);
        let mut hits = 0usize;
        for i in 0..queries {
            let q: Vec<f64> = ps
                .point((i * 29) % n)
                .iter()
                .map(|x| x + ((i % 9) as f64) - 4.0)
                .collect();
            let a = AnnIndex::query_best_of(&ensemble[..k], &ps, &q);
            let e = exact_nearest(&ps, &q);
            let ra = metrics::dist(ps.point(a), &q);
            let re = metrics::dist(ps.point(e), &q);
            // 0/0 (query coincides with an indexed point and we return
            // it) counts as a perfect answer, not a free win.
            ratios.push(ra.max(1e-12) / re.max(1e-12));
            if ra <= re * (1.0 + 1e-9) + 1e-12 {
                hits += 1;
            }
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let p95 = ratios[(ratios.len() * 95) / 100 - 1];
        t.row(vec![
            k.to_string(),
            fnum(mean),
            fnum(p95),
            fnum(hits as f64 / queries as f64),
            params.num_levels().to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_quality_improves_with_ensemble_size() {
        let tables = run(Scale::quick());
        let means: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(
            means.last().unwrap() <= &(means[0] + 1e-9),
            "best-of-8 should not be worse than best-of-1: {means:?}"
        );
        assert!(means[3] < 5.0, "best-of-8 mean ratio {}", means[3]);
    }
}
