//! E3 — Theorem 3: FJLT distortion `(1±ξ)`, sparse `|P|` vs dense `d·k`,
//! O(1) MPC rounds.

use crate::{table::fnum, Scale, Table};
use treeemb_fjlt::audit::distortion_report;
use treeemb_fjlt::fjlt::{Fjlt, FjltParams};
use treeemb_fjlt::mpc::fjlt_mpc;
use treeemb_geom::generators;
use treeemb_mpc::{MpcConfig, Runtime};

/// Runs E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(48, 160);
    let mut t = Table::new(
        "E3",
        "FJLT quality & cost (Theorem 3: all-pairs (1±ξ), |P| = O(ξ⁻²log³n) ≪ d·k, O(1) rounds)",
        &[
            "n",
            "d",
            "xi",
            "k",
            "max expansion",
            "max contraction",
            "|P| nnz",
            "dense d*k",
            "space saving",
            "MPC rounds",
            "max |seq−mpc|",
        ],
    );
    let ds = scale.pick(vec![256usize, 1024], vec![512usize, 2048, 8192]);
    for &d in &ds {
        for &xi in &[0.25f64, 0.5] {
            let ps = generators::noisy_line(n, d, 1 << 12, 2.0, 17 + d as u64);
            let params = FjltParams::for_dataset(n, d, xi, 55);
            let f = Fjlt::new(params);
            let seq = f.apply(&ps);
            let report = distortion_report(&ps, &seq);
            let dense = params.k * params.d_pad;
            // MPC run (capacity sized for the WHT classes + P fan-out).
            let cap = (8 * n * params.d_pad / 4).max(1 << 14);
            let mut rt = Runtime::builder()
                .config(MpcConfig::explicit(n * d, cap, 8).with_threads(4).lenient())
                .build();
            let par = fjlt_mpc(&mut rt, &ps, &params).expect("mpc fjlt failed");
            let mut max_diff: f64 = 0.0;
            for i in 0..ps.len() {
                for j in 0..params.k {
                    max_diff = max_diff.max((seq.point(i)[j] - par.point(i)[j]).abs());
                }
            }
            t.row(vec![
                n.to_string(),
                d.to_string(),
                fnum(xi),
                params.k.to_string(),
                fnum(report.max_expansion),
                fnum(report.max_contraction),
                f.projection_nnz().to_string(),
                dense.to_string(),
                format!("{:.1}x", dense as f64 / f.projection_nnz().max(1) as f64),
                rt.metrics().rounds().to_string(),
                fnum(max_diff),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_mpc_matches_sequential_and_rounds_are_constant() {
        let tables = run(Scale::quick());
        let t = &tables[0];
        for row in &t.rows {
            let diff: f64 = row[10].parse().unwrap();
            assert!(diff < 1e-8, "seq/mpc divergence {diff}");
            let rounds: usize = row[9].parse().unwrap();
            assert!(rounds <= 12, "rounds {rounds}");
        }
    }
}
