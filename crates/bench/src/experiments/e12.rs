//! E12 — Algorithm 2 ≡ Algorithm 1: the MPC embedding computes the same
//! tree metric as the sequential one, and its round budget decomposes
//! into the paper's four steps.

use crate::{table::fnum, Scale, Table};
use treeemb_core::mpc_embed::embed_mpc;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;
use treeemb_mpc::{MpcConfig, Runtime};

/// Runs E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(32, 128);
    let ps = generators::uniform_cube(n, 8, 1 << 8, 23);
    let params = HybridParams::for_dataset(&ps, 4).unwrap();
    let seed = 9;
    let seq = SeqEmbedder::new(params.clone()).embed(&ps, seed).unwrap();
    let cap = (params.total_grid_words() * 4).max(1 << 15);
    let mut rt = Runtime::builder()
        .config(MpcConfig::explicit(n * 9, cap, 8).with_threads(4))
        .build();
    let par = embed_mpc(&mut rt, &ps, &params, seed).unwrap();

    let mut max_diff: f64 = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            max_diff = max_diff.max((seq.tree_distance(i, j) - par.tree_distance(i, j)).abs());
        }
    }
    let mut eq = Table::new(
        "E12a",
        "sequential vs MPC embedding, same seed (must agree)",
        &[
            "n",
            "max |dist_seq − dist_mpc|",
            "seq nodes",
            "mpc nodes",
            "rounds total",
        ],
    );
    eq.row(vec![
        n.to_string(),
        fnum(max_diff),
        seq.tree.num_nodes().to_string(),
        par.tree.num_nodes().to_string(),
        rt.metrics().rounds().to_string(),
    ]);

    let mut budget = Table::new(
        "E12b",
        "Algorithm 2 round budget by step (grids broadcast / paths local / dedup shuffle / failure check)",
        &["step", "rounds", "words sent"],
    );
    let stats = rt.metrics().round_stats();
    for prefix in ["broadcast", "reduce", "shuffle"] {
        let rounds = stats.iter().filter(|r| r.label.starts_with(prefix)).count();
        let words: usize = stats
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .map(|r| r.sent_words)
            .sum();
        budget.row(vec![prefix.into(), rounds.to_string(), words.to_string()]);
    }
    budget.row(vec![
        "path construction".into(),
        "0 (machine-local)".into(),
        "0".into(),
    ]);
    vec![eq, budget]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_metrics_agree() {
        let tables = run(Scale::quick());
        let diff: f64 = tables[0].rows[0][1].parse().unwrap();
        assert!(diff < 1e-9, "seq/mpc metric divergence {diff}");
        let rounds: usize = tables[0].rows[0][4].parse().unwrap();
        assert!(rounds <= 10, "round budget {rounds}");
    }
}
