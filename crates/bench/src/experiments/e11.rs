//! E11 — ablation (§1.3.2/§5): why the pipeline needs the FJLT. Without
//! dimension reduction, either the grid budget `U` explodes (small `r`)
//! or the `√r` distortion factor does (large `r`); with it, both stay
//! controlled and total space is near `O(nd)`.

use crate::{table::fnum, Scale, Table};
use treeemb_core::params::{estimate_grid_words, pipeline_r};
use treeemb_core::pipeline::{run as run_pipeline, PipelineConfig};
use treeemb_fjlt::dense::target_dimension;
use treeemb_geom::generators;

/// Runs E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(48, 128);
    let xi = 0.75;
    let mut analytic = Table::new(
        "E11a",
        "no-JL ablation, analytic: grid words and √(d·r) distortion factor vs d (min_sep=1, diag=√d·Δ)",
        &[
            "d",
            "r (m=5)",
            "√(d·r) factor",
            "grid words (no JL)",
            "k after JL",
            "r after JL",
            "√(k·r) factor",
            "grid words (JL)",
        ],
    );
    let delta = 1u64 << 10;
    for &d in &[64usize, 256, 1024, 4096] {
        let diag = (d as f64).sqrt() * delta as f64;
        let r_raw = pipeline_r(n, d);
        let words_raw = estimate_grid_words(n, d, r_raw, diag, 1.0, 1e-3);
        let k = target_dimension(n, xi).min(d);
        let r_jl = pipeline_r(n, k);
        let words_jl = estimate_grid_words(n, k, r_jl, diag, 1.0 - xi, 1e-3);
        analytic.row(vec![
            d.to_string(),
            r_raw.to_string(),
            fnum(((d.div_ceil(r_raw) * r_raw * r_raw) as f64).sqrt()),
            words_raw.to_string(),
            k.to_string(),
            r_jl.to_string(),
            fnum(((k.div_ceil(r_jl) * r_jl * r_jl) as f64).sqrt()),
            words_jl.to_string(),
        ]);
    }

    // Measured: run the pipeline with and without the JL step on a
    // moderate d and compare resources (forcing no-JL by xi≈1 keeps the
    // target above d).
    let mut measured = Table::new(
        "E11b",
        "measured pipeline with/without JL (d=256)",
        &[
            "variant",
            "rounds",
            "peak machine words",
            "peak total words",
            "r used",
        ],
    );
    let d = 256;
    let ps = generators::noisy_line(n, d, 1 << 10, 1.0, 9);
    let with_jl = run_pipeline(&ps, &PipelineConfig::builder().xi(xi).threads(4).build())
        .expect("with-JL pipeline failed");
    measured.row(vec![
        "FJLT + hybrid".into(),
        with_jl.rounds.to_string(),
        with_jl.peak_machine_words.to_string(),
        with_jl.peak_total_words.to_string(),
        with_jl.params.r.to_string(),
    ]);
    let no_jl = run_pipeline(
        &ps,
        &PipelineConfig::builder()
            .xi(xi)
            .skip_jl(true)
            .threads(4)
            .build(),
    );
    match no_jl {
        Ok(rep) => measured.row(vec![
            "hybrid only".into(),
            rep.rounds.to_string(),
            rep.peak_machine_words.to_string(),
            rep.peak_total_words.to_string(),
            rep.params.r.to_string(),
        ]),
        Err(e) => measured.row(vec![
            format!("hybrid only: FAILED ({e})"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]),
    }
    vec![analytic, measured]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_jl_reduces_distortion_factor_at_high_d() {
        let tables = run(Scale::quick());
        let a = &tables[0];
        for row in &a.rows {
            let raw: f64 = row[2].parse().unwrap();
            let jl: f64 = row[6].parse().unwrap();
            let d: usize = row[0].parse().unwrap();
            if d >= 1024 {
                assert!(jl < raw, "JL should shrink the √(dr) factor at d={d}");
            }
        }
    }
}
