//! E16 — Theorem 1's failure budget: the algorithm "reports failure"
//! with probability controlled by the configured `δ`. With the Lemma-7
//! grid budget sized for `δ`, the empirical coverage-failure rate must
//! stay below `δ`; with a deliberately starved budget, failures appear
//! and are *reported*, never silently mis-embedded.

use crate::{table::fnum, Scale, Table};
use treeemb_core::error::EmbedError;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;

/// Runs E16.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(24, 64);
    let trials = scale.pick(60u64, 300);
    let mut t = Table::new(
        "E16",
        "coverage-failure budget: empirical failure rate vs configured δ (and vs a starved budget)",
        &[
            "budget",
            "U (grids)",
            "trials",
            "failures",
            "empirical rate",
            "configured δ",
        ],
    );
    let ps = generators::uniform_cube(n, 8, 1 << 8, 31);

    for &delta in &[1e-1f64, 1e-3] {
        let params = HybridParams::for_dataset_with_sep(&ps, 4, 1.0, delta).unwrap();
        let embedder = SeqEmbedder::new(params.clone());
        let mut failures = 0usize;
        for s in 0..trials {
            if matches!(
                embedder.embed(&ps, 7000 + s),
                Err(EmbedError::CoverageFailure { .. })
            ) {
                failures += 1;
            }
        }
        t.row(vec![
            format!("Lemma 7 (δ={delta})"),
            params.grids_per_bucket.to_string(),
            trials.to_string(),
            failures.to_string(),
            fnum(failures as f64 / trials as f64),
            fnum(delta),
        ]);
    }

    // Starved budget: a fraction of the Lemma-7 count must visibly fail.
    let mut params = HybridParams::for_dataset_with_sep(&ps, 4, 1.0, 1e-3).unwrap();
    params.grids_per_bucket = (params.grids_per_bucket / 12).max(1);
    let embedder = SeqEmbedder::new(params.clone());
    let mut failures = 0usize;
    for s in 0..trials {
        match embedder.embed(&ps, 9000 + s) {
            Err(EmbedError::CoverageFailure { .. }) => failures += 1,
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => {}
        }
    }
    t.row(vec![
        "starved (U/12)".into(),
        params.grids_per_bucket.to_string(),
        trials.to_string(),
        failures.to_string(),
        fnum(failures as f64 / trials as f64),
        "-".into(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_budgeted_runs_rarely_fail_and_starved_runs_do() {
        let tables = run(Scale::quick());
        let rows = &tables[0].rows;
        // δ = 1e-3 row: no failures expected in 60 trials.
        let tight: usize = rows[1][3].parse().unwrap();
        assert_eq!(tight, 0, "budgeted coverage failed");
        // Starved row must fail visibly.
        let starved: usize = rows[2][3].parse().unwrap();
        assert!(
            starved > 0,
            "starved budget never failed — budget not binding"
        );
    }
}
