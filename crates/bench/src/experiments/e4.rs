//! E4 — Lemma 1/3: the cut probability is `O(√d·‖p−q‖/w)` and does not
//! depend on the bucket count `r`.

use crate::{table::fnum, Scale, Table};
use treeemb_partition::coverage::grids_needed;
use treeemb_partition::stats::{grid_cut_probability, hybrid_cut_probability, lemma1_bound};

/// Runs E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = 8usize;
    let w = 64.0;
    let trials = scale.pick(300, 2000);
    let mut t = Table::new(
        "E4",
        "cut probability at scale w=64, d=8 (Lemma 1: ≤ O(√d·dist/w), independent of r)",
        &[
            "dist",
            "bound √d·dist/w",
            "r=2",
            "r=4",
            "r=8",
            "grid (r=d eq.)",
        ],
    );
    for &dist in &[1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let p = vec![10.0; d];
        let mut q = p.clone();
        q[0] += dist / 2.0;
        q[1] += dist * (3.0f64).sqrt() / 2.0; // off-axis displacement
        let mut cells = vec![fnum(dist), fnum(lemma1_bound(d, dist, w))];
        for &r in &[2usize, 4, 8] {
            let m = d / r;
            let u = grids_needed(m, 10_000, 1e-4);
            let est = hybrid_cut_probability(&p, &q, r, w, u, trials, 31 + r as u64);
            cells.push(fnum(est));
        }
        cells.push(fnum(grid_cut_probability(&p, &q, w, trials, 77)));
        t.row(cells);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_cut_probability_r_independent_and_bounded() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            let bound: f64 = row[1].parse().unwrap();
            let rs: Vec<f64> = row[2..5].iter().map(|c| c.parse().unwrap()).collect();
            for &p in &rs {
                assert!(
                    p <= (4.0 * bound).min(1.0) + 0.05,
                    "cut {p} vs bound {bound}"
                );
            }
            // r-independence: max/min within a small constant (noisy MC).
            let max = rs.iter().cloned().fold(0.0, f64::max);
            let min = rs.iter().cloned().fold(1.0, f64::min);
            if max > 0.05 {
                assert!(max / min.max(1e-3) < 6.0, "r-dependence too strong: {rs:?}");
            }
        }
    }
}
