//! E15 — ablation: the ball-grid cell factor. Definition 2 fixes
//! `ℓ = 4w`; any `ℓ ≥ 2w` keeps balls disjoint. Smaller factors cover
//! far more per grid (`V_m/factor^m`) and so need far fewer grids, at a
//! higher ball-boundary density (more cuts). This quantifies a design
//! choice the paper makes silently.

use crate::{table::fnum, Scale, Table};
use treeemb_linalg::random::mix2;
use treeemb_partition::coverage::per_grid_cover_prob_factor;
use treeemb_partition::hybrid::HybridLevel;

/// Runs E15.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(400, 2000);
    let d = 8usize;
    let r = 2usize;
    let m = d / r;
    let w = 32.0;
    let dist = 4.0;
    let mut t = Table::new(
        "E15",
        "cell-factor ablation (d=8, r=2, w=32, pair at distance 4): coverage/grid vs cut probability",
        &[
            "factor",
            "per-grid cover p (m=4)",
            "grids for 99.9% cover",
            "cut probability",
            "cut × grids (cost proxy)",
        ],
    );
    for &factor in &[2.0f64, 2.5, 3.0, 4.0, 6.0] {
        let p_cover = per_grid_cover_prob_factor(m, factor);
        let grids = ((0.001f64).ln() / (1.0 - p_cover).ln()).ceil() as usize;
        // Cut probability with this factor, enough grids to cover.
        let budget = grids * 8;
        let mut cuts = 0usize;
        let p = vec![10.0; d];
        let mut q = p.clone();
        q[0] += dist;
        for trial in 0..trials {
            let lvl =
                HybridLevel::with_cell_factor(d, r, w, factor, budget, mix2(99, trial as u64));
            match (lvl.assign(&p), lvl.assign(&q)) {
                (Some(a), Some(b)) if a == b => {}
                _ => cuts += 1,
            }
        }
        let cut = cuts as f64 / trials as f64;
        t.row(vec![
            fnum(factor),
            fnum(p_cover),
            grids.to_string(),
            fnum(cut),
            fnum(cut * grids as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_smaller_factor_needs_fewer_grids() {
        let tables = run(Scale::quick());
        let grids: Vec<usize> = tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(
            grids.windows(2).all(|w| w[0] <= w[1]),
            "grid count should grow with factor: {grids:?}"
        );
        // Factor 2 vs 4: order-of-magnitude saving at m=4.
        assert!(grids[0] * 5 < grids[3], "{grids:?}");
    }
}
