//! E7 — Corollary 1(1): bicriteria densest ball. Recovered count vs the
//! exact point-centered bounds, as the diameter blow-up β grows.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::densest_ball::densest_cluster;
use treeemb_apps::exact::ball::opt_bounds;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;

/// Runs E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(100, 400);
    let dense = n / 4;
    let diameter = 10.0;
    let seeds = scale.pick(3u64, 10);
    let mut t = Table::new(
        "E7",
        "densest ball, planted instance (Cor 1(1): count → OPT as β grows; diameter ≤ β·D by domination)",
        &[
            "beta",
            "mean count",
            "planted",
            "exact lower (B(p,D/2))",
            "exact upper (B(p,D))",
            "count/planted",
        ],
    );
    let inst = generators::planted_ball(n, 8, dense, diameter, 1 << 12, 42);
    let (lower, upper) = opt_bounds(&inst.points, diameter);
    let params = HybridParams::for_dataset(&inst.points, 4).unwrap();
    let emb = SeqEmbedder::new(params);
    for &beta in &[2.0f64, 8.0, 24.0, 64.0] {
        let mut total = 0usize;
        for s in 0..seeds {
            let e = emb.embed(&inst.points, 1000 + s).expect("embed failed");
            total += densest_cluster(&e, beta * diameter).count;
        }
        let mean = total as f64 / seeds as f64;
        t.row(vec![
            fnum(beta),
            fnum(mean),
            dense.to_string(),
            lower.to_string(),
            upper.to_string(),
            fnum(mean / dense as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_count_improves_with_beta_and_reaches_most_of_plant() {
        let tables = run(Scale::quick());
        let counts: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{counts:?}");
        let planted: f64 = tables[0].rows[0][2].parse().unwrap();
        assert!(
            *counts.last().unwrap() >= 0.8 * planted,
            "largest beta recovers too little: {counts:?} of {planted}"
        );
    }
}
