//! One module per experiment; ids match DESIGN.md's index.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod f1;
