//! E14 — k-median through the embedding: the classic tree-embedding
//! application (§1: FRT "notably yielded the first polylogarithmic
//! approximation for the k-median problem"). The tree DP is exact on
//! the tree metric; pricing its medians in Euclidean space stays within
//! the embedding's distortion of the exact optimum.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::kmedian::{exact_kmedian_euclid, kmedian_cost_euclid, tree_kmedian};
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::generators;

/// Runs E14.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(12, 16);
    let trials = scale.pick(5u64, 12);
    let mut t = Table::new(
        "E14",
        "k-median via the tree embedding vs exact enumeration (ratio bounded by E[distortion])",
        &[
            "n",
            "k",
            "exact OPT",
            "tree-median cost (mean)",
            "best-of-trials",
            "mean ratio",
        ],
    );
    let ps = generators::gaussian_clusters(n, 6, 3, 2.0, 512, 23);
    let embedder = SeqEmbedder::new(HybridParams::for_dataset(&ps, 3).unwrap());
    for &k in &[1usize, 2, 3] {
        let (_, opt) = exact_kmedian_euclid(&ps, k);
        let mut sum = 0.0;
        let mut best = f64::INFINITY;
        for s in 0..trials {
            let emb = embedder.embed(&ps, 500 + s).unwrap();
            let result = tree_kmedian(&emb, k);
            let euclid = kmedian_cost_euclid(&ps, &result.medians);
            sum += euclid;
            best = best.min(euclid);
        }
        let mean = sum / trials as f64;
        t.row(vec![
            n.to_string(),
            k.to_string(),
            fnum(opt),
            fnum(mean),
            fnum(best),
            fnum(mean / opt.max(1e-12)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_ratios_bounded_and_dominating() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "below OPT?");
            assert!(ratio < 15.0, "k-median ratio {ratio} too large");
        }
    }
}
