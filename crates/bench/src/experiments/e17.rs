//! E17 — §1.3.3: tree DPs on *distributed* trees. Pointer doubling
//! evaluates root paths of an edge-list tree in `O(log depth)` MPC
//! rounds — the \[17\] "massive trees" regime the paper points at (its
//! own applications avoid this via per-point paths; see E13).

use crate::{Scale, Table};
use treeemb_core::mpc_tree::{root_paths, TreeEdge};
use treeemb_mpc::{MpcConfig, Runtime};

/// Runs E17.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E17",
        "pointer doubling on distributed path graphs: rounds grow ~log2(depth), not ~depth",
        &["depth", "rounds", "log2(depth) (ref)", "rounds/log2"],
    );
    let depths = scale.pick(vec![16u64, 64, 256], vec![16u64, 64, 256, 1024, 4096]);
    for &depth in &depths {
        let edges: Vec<TreeEdge> = (0..depth)
            .map(|i| TreeEdge {
                node: i,
                parent: i.saturating_sub(1),
                weight: 1.0,
            })
            .collect();
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 18, 1 << 15, 16).with_threads(4))
            .build();
        let dist = rt.distribute(edges).unwrap();
        let _ = root_paths(&mut rt, dist).unwrap();
        let rounds = rt.metrics().rounds();
        let log2 = (depth as f64).log2();
        t.row(vec![
            depth.to_string(),
            rounds.to_string(),
            format!("{log2:.1}"),
            format!("{:.2}", rounds as f64 / log2),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_rounds_grow_logarithmically() {
        let tables = run(Scale::quick());
        let rows = &tables[0].rows;
        // Going from depth 16 to 256 (16x) should add only ~4 jumps'
        // worth of rounds, far from 16x.
        let r16: f64 = rows[0][1].parse().unwrap();
        let r256: f64 = rows[2][1].parse().unwrap();
        assert!(r256 < 3.0 * r16, "rounds {r16} -> {r256} not logarithmic");
    }
}
