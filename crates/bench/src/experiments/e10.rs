//! E10 — headline scaling. Two views:
//!
//! (a) distortion vs `n` with `Δ = n²` (the paper's aspect-ratio regime;
//!     hybrid tracks a `log^1.5`-shaped curve, grid a `log²` one);
//! (b) distortion vs `d` at fixed `r` — the gap the paper proves:
//!     hybrid's `√(d·r)·logΔ` grows like `√d` while grid's `d·logΔ`
//!     grows linearly, so the grid/hybrid ratio should rise ≈ `√(d/r)`.
//!     This is the regime ("high dimensional spaces") the title is
//!     about; at small `d` the ball-boundary constant hides the gap.

use crate::{table::fnum, Scale, Table};
use treeemb_core::audit::estimate_expected_distortion;
use treeemb_core::params::{GridParams, HybridParams};
use treeemb_core::seq::{GridEmbedder, SeqEmbedder};
use treeemb_geom::generators;

/// Runs E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 16);

    // (a) vs n.
    let mut ta = Table::new(
        "E10a",
        "expected distortion vs n with Δ = n² (d=16, r=4)",
        &[
            "n",
            "Δ",
            "hybrid α (max)",
            "grid α (max)",
            "hybrid mean",
            "grid mean",
            "grid/hybrid (mean)",
            "log^1.5 n (ref)",
            "log² n (ref)",
        ],
    );
    let ns = scale.pick(vec![16usize, 32, 64], vec![32usize, 64, 128, 256]);
    for &n in &ns {
        let delta = (n * n) as u64;
        let d = 16;
        let ps = generators::uniform_cube(n, d, delta, 11 + n as u64);
        let hybrid = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap());
        let grid = GridEmbedder::new(GridParams::for_dataset(&ps).unwrap());
        let h = estimate_expected_distortion(&ps, trials, |s| hybrid.embed(&ps, s)).unwrap();
        let g = estimate_expected_distortion(&ps, trials, |s| grid.embed(&ps, s)).unwrap();
        let ln2 = (n as f64).ln() / std::f64::consts::LN_2;
        ta.row(vec![
            n.to_string(),
            delta.to_string(),
            fnum(h.expected_distortion),
            fnum(g.expected_distortion),
            fnum(h.mean_ratio),
            fnum(g.mean_ratio),
            fnum(g.mean_ratio / h.mean_ratio),
            fnum(ln2.powf(1.5)),
            fnum(ln2 * ln2),
        ]);
    }

    // (b) vs d at fixed r.
    let mut tb = Table::new(
        "E10b",
        "expected distortion vs d at fixed r=4 (Δ=2^10): grid grows ~d, hybrid ~√(4d); ratio ≈ √(d/r)·const",
        &["d", "m=d/4", "hybrid mean", "grid mean", "grid/hybrid (mean)", "√(d/r) (ref)"],
    );
    let n = scale.pick(40, 96);
    let ds = scale.pick(vec![8usize, 16, 24], vec![8usize, 16, 24, 28]);
    for &d in &ds {
        let ps = generators::uniform_cube(n, d, 1 << 10, 19 + d as u64);
        let hybrid = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap());
        let grid = GridEmbedder::new(GridParams::for_dataset(&ps).unwrap());
        let h = estimate_expected_distortion(&ps, trials, |s| hybrid.embed(&ps, s)).unwrap();
        let g = estimate_expected_distortion(&ps, trials, |s| grid.embed(&ps, s)).unwrap();
        tb.row(vec![
            d.to_string(),
            d.div_ceil(4).to_string(),
            fnum(h.mean_ratio),
            fnum(g.mean_ratio),
            fnum(g.mean_ratio / h.mean_ratio),
            fnum((d as f64 / 4.0).sqrt()),
        ]);
    }
    vec![ta, tb]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_gap_grows_with_dimension() {
        let tables = run(Scale::quick());
        let tb = &tables[1];
        let first: f64 = tb.rows.first().unwrap()[4].parse().unwrap();
        let last: f64 = tb.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last > first * 0.95,
            "grid/hybrid ratio should not shrink with d: {first} -> {last}"
        );
        // At the largest d the hybrid should be at least competitive.
        assert!(last > 0.85, "hybrid loses badly at high d: ratio {last}");
    }
}
