//! F1 — Figure 1: one level of grid, ball, and hybrid partitioning.
//!
//! The paper's Figure 1 is an illustration; we regenerate its content as
//! (a) ASCII raster renderings of the three partitionings of a 2-D/3-D
//! patch and (b) an occupancy table quantifying what the figure shows:
//! grids cover everything with one draw; one ball grid covers only a
//! `V_m/4^m` fraction; hybrid's per-bucket coverage matches the 1-D/2-D
//! products.

use crate::{table::fnum, Scale, Table};
use treeemb_partition::ball::BallGrid;
use treeemb_partition::grid::ShiftedGrid;
use treeemb_partition::hybrid::HybridLevel;

/// Renders one partitioning of the `[0, side)²` patch as an ASCII
/// raster: each sample point prints the symbol of its partition (or
/// `'.'` when uncovered).
fn raster(side: f64, res: usize, label: impl Fn(&[f64]) -> Option<u64>) -> String {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let mut ids: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
    let mut s = String::with_capacity(res * (res + 1));
    for iy in 0..res {
        for ix in 0..res {
            let p = [
                side * (ix as f64 + 0.5) / res as f64,
                side * (iy as f64 + 0.5) / res as f64,
            ];
            match label(&p) {
                None => s.push('.'),
                Some(key) => {
                    let next = (ids.len() % GLYPHS.len()) as u8;
                    let g = *ids.entry(key).or_insert(next);
                    s.push(GLYPHS[g as usize] as char);
                }
            }
        }
        s.push('\n');
    }
    s
}

fn hash_cells(cells: &[i64], salt: u64) -> u64 {
    let mut h = treeemb_partition::ids::StructuralHash::root().absorb(salt);
    for &c in cells {
        h = h.absorb_i64(c);
    }
    h.value()
}

/// Runs F1.
pub fn run(scale: Scale) -> Vec<Table> {
    let res = scale.pick(24, 48);
    let side = 4.0;
    let w = 1.0;
    let seed = 20230617;

    // (a) grid partitioning, cell width 1.
    let grid = ShiftedGrid::from_seed(2, w, seed);
    let grid_art = raster(side, res, |p| Some(hash_cells(&grid.cell_of(p), 1)));

    // (b) one grid of balls, radius 1/4, cell 1.
    let ball = BallGrid::from_seed(2, 4.0 * (w / 4.0), w / 4.0, seed);
    let ball_art = raster(side, res, |p| ball.ball_of(p).map(|c| hash_cells(&c, 2)));

    // (c) hybrid r = 2 in 3-D, sliced at z = 0.5: bucket {x,y} is a 2-D
    // ball partition, bucket {z} a 1-D ball partition.
    let hybrid = HybridLevel::new(4, 2, w / 4.0, 400, seed);
    let hybrid_art = raster(side, res, |p| {
        let p3 = [p[0], p[1], 0.5, 0.0]; // padded to 4 dims (r | d)
        hybrid.assign(&p3).map(|a| {
            let mut h = treeemb_partition::ids::StructuralHash::root();
            h = a.absorb_into(h);
            h.value()
        })
    });

    println!("F1(a) random shifted grid (w=1):\n{grid_art}");
    println!("F1(b) one grid of balls (w=1/4): '.' = uncovered\n{ball_art}");
    println!("F1(c) hybrid r=2 slice (w=1/4): '.' = uncovered\n{hybrid_art}");

    // Quantify the figure: coverage fraction of a single draw.
    let mut t = Table::new(
        "F1",
        "single-draw coverage fraction per method (paper Fig. 1: grids tile, one ball grid leaves gaps)",
        &["method", "dim", "covered_fraction", "analytic"],
    );
    let samples = scale.pick(4000, 40_000);
    let mut covered_ball = 0usize;
    let mut covered_hybrid = 0usize;
    for i in 0..samples {
        let x = side * treeemb_linalg::random::unit_f64(7, i as u64);
        let y = side * treeemb_linalg::random::unit_f64(8, i as u64);
        if ball.ball_of(&[x, y]).is_some() {
            covered_ball += 1;
        }
        let z = side * treeemb_linalg::random::unit_f64(9, i as u64);
        let hb = HybridLevel::new(
            4,
            2,
            w / 4.0,
            1,
            treeemb_linalg::random::mix2(seed, i as u64),
        );
        if hb.assign(&[x, y, z, 0.0]).is_some() {
            covered_hybrid += 1;
        }
    }
    t.row(vec![
        "grid".into(),
        "2".into(),
        "1.000".into(),
        "1 (tiles)".into(),
    ]);
    let pi16 = std::f64::consts::PI / 16.0;
    t.row(vec![
        "ball(1 grid)".into(),
        "2".into(),
        fnum(covered_ball as f64 / samples as f64),
        format!("pi/16 = {}", fnum(pi16)),
    ]);
    // Hybrid single-draw coverage in the 3-D slice: bucket {x,y} covers
    // with pi/16... buckets here are 2-D pairs: (x,y) and (z,0-pad).
    t.row(vec![
        "hybrid(r=2,1 grid/bucket)".into(),
        "3+pad".into(),
        fnum(covered_hybrid as f64 / samples as f64),
        format!("(pi/16)^2 = {}", fnum(pi16 * pi16)),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_produces_coverage_table() {
        let tables = run(Scale::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        // Ball single-grid coverage should be near pi/16.
        let ball_cov: f64 = tables[0].rows[1][2].parse().unwrap();
        assert!(
            (ball_cov - std::f64::consts::PI / 16.0).abs() < 0.05,
            "{ball_cov}"
        );
    }

    #[test]
    fn raster_marks_uncovered_with_dots() {
        let ball = BallGrid::from_seed(2, 1.0, 0.25, 3);
        let art = raster(4.0, 16, |p| ball.ball_of(p).map(|c| hash_cells(&c, 2)));
        assert!(art.contains('.'), "a single ball grid must leave gaps");
    }
}
