//! E9 — Corollary 1(3): tree EMD vs exact Hungarian EMD.

use crate::{table::fnum, Scale, Table};
use treeemb_apps::emd::{exact_emd, tree_emd};
use treeemb_core::params::{GridParams, HybridParams};
use treeemb_core::seq::{GridEmbedder, SeqEmbedder};
use treeemb_geom::generators;

/// Runs E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let seeds = scale.pick(4u64, 10);
    let mut t = Table::new(
        "E9",
        "EMD approximation (Cor 1(3): EMD ≤ E[EMD_T] ≤ O~(log^1.5 n)·EMD; hybrid vs grid)",
        &[
            "pairs",
            "d",
            "exact EMD",
            "hybrid E[EMD_T]/EMD",
            "grid E[EMD_T]/EMD",
            "hybrid/grid",
        ],
    );
    let sizes = scale.pick(vec![8usize, 16], vec![16usize, 32, 64]);
    for &half in &sizes {
        let n = 2 * half;
        let d = 8;
        let ps = generators::gaussian_clusters(n, d, 3, 3.0, 1 << 10, 5 + n as u64);
        let a: Vec<usize> = (0..half).collect();
        let b: Vec<usize> = (half..n).collect();
        let exact = exact_emd(&ps, &a, &b).max(1e-12);
        let hybrid = SeqEmbedder::new(HybridParams::for_dataset(&ps, 4).unwrap());
        let grid = GridEmbedder::new(GridParams::for_dataset(&ps).unwrap());
        let mut h_sum = 0.0;
        let mut g_sum = 0.0;
        for s in 0..seeds {
            h_sum += tree_emd(&hybrid.embed(&ps, 200 + s).unwrap(), &a, &b);
            g_sum += tree_emd(&grid.embed(&ps, 200 + s).unwrap(), &a, &b);
        }
        let h_ratio = h_sum / seeds as f64 / exact;
        let g_ratio = g_sum / seeds as f64 / exact;
        t.row(vec![
            half.to_string(),
            d.to_string(),
            fnum(exact),
            fnum(h_ratio),
            fnum(g_ratio),
            fnum(h_ratio / g_ratio),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_tree_emd_dominates_and_is_bounded() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            let h: f64 = row[3].parse().unwrap();
            assert!(h >= 1.0 - 1e-9, "tree EMD must dominate, got {h}");
            assert!(h < 80.0, "hybrid EMD ratio {h} beyond theory scale");
        }
    }
}
