//! E5 — Lemmas 4/5: random unit vectors avoid equator bands —
//! `Pr[|u₁| ≤ t] = O(√d·t)` on both the sphere and the ball.

use crate::{table::fnum, Scale, Table};
use treeemb_partition::stats::equator_band_probability;

/// Runs E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(4000, 40_000);
    let mut t = Table::new(
        "E5",
        "equator-band probability Pr[|u1| <= t] (Lemma 4: sphere; Lemma 5: ball); bound O(√d·t)",
        &["d", "t", "sphere", "ball", "√d·t", "sphere/(√d·t)"],
    );
    for &d in &[4usize, 16, 64, 256] {
        for &band in &[0.02f64, 0.05, 0.1] {
            let sphere = equator_band_probability(d, band, false, trials, 3 + d as u64);
            let ball = equator_band_probability(d, band, true, trials, 5 + d as u64);
            let bound = (d as f64).sqrt() * band;
            t.row(vec![
                d.to_string(),
                fnum(band),
                fnum(sphere),
                fnum(ball),
                fnum(bound),
                fnum(sphere / bound),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_band_probability_below_constant_times_bound() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            let ratio: f64 = row[5].parse().unwrap();
            // Lemma 4's constant is ~ sqrt(2/pi) ≈ 0.8; allow slack.
            assert!(ratio < 1.5, "constant {ratio} too large");
        }
    }
}
