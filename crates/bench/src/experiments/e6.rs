//! E6 — Lemmas 6/7: the grid count for ball-partition coverage explodes
//! as `2^{Θ(m log m)}` in the bucket dimension `m` — the quantitative
//! reason hybrid partitioning buckets dimensions.

use crate::{table::fnum, Scale, Table};
use treeemb_partition::coverage::{empirical_grids_to_cover, grids_needed, per_grid_cover_prob};

/// Runs E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(400, 4000);
    let mut t = Table::new(
        "E6",
        "grids needed for coverage vs bucket dimension m (Lemma 6/7: 2^{Θ(m log m)})",
        &[
            "m",
            "per-grid cover prob",
            "1/p (mean grids)",
            "empirical mean",
            "empirical max",
            "U (Lemma 7, 1000 targets, δ=1e-3)",
        ],
    );
    let ms = scale.pick(vec![1usize, 2, 3, 4, 5], vec![1usize, 2, 3, 4, 5, 6, 7]);
    for &m in &ms {
        let p = per_grid_cover_prob(m);
        let u = grids_needed(m, 1000, 1e-3);
        let cap = (u * 2).min(2_000_000);
        let (mean, max) = empirical_grids_to_cover(m, trials, cap, 13 + m as u64);
        t.row(vec![
            m.to_string(),
            fnum(p),
            fnum(1.0 / p),
            fnum(mean),
            max.to_string(),
            u.to_string(),
        ]);
    }
    // Extrapolation rows: the ball-partitioning (r = 1) regime the paper
    // rules out — no simulation, the numbers speak.
    for &m in &[12usize, 16, 24] {
        let p = per_grid_cover_prob(m);
        t.row(vec![
            format!("{m} (analytic)"),
            fnum(p),
            fnum(1.0 / p),
            "-".into(),
            "-".into(),
            format!("~{:.1e}", (1000.0f64 / 1e-3).ln() / p),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_empirical_mean_tracks_inverse_probability() {
        let tables = run(Scale::quick());
        for row in &tables[0].rows {
            if row[0].contains("analytic") {
                continue;
            }
            let inv_p: f64 = row[2].parse().unwrap();
            let mean: f64 = row[3].parse().unwrap();
            assert!(
                (mean - inv_p).abs() < 0.35 * inv_p,
                "m={}: {mean} vs {inv_p}",
                row[0]
            );
        }
    }
}
