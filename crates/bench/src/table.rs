//! Result tables: markdown + CSV rendering.

use std::fmt::Write as _;

/// One experiment result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment id (e.g. `"E1"`).
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Markdown rendering with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut l = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(l, " {c:<w$} |");
            }
            l
        };
        let _ = writeln!(s, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(s, "{sep}");
        for row in &self.rows {
            let _ = writeln!(s, "{}", line(row, &widths));
        }
        s
    }

    /// CSV rendering (no escaping; cells are plain numbers/idents).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        s
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new("E0", "demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0"));
        assert!(md.contains("| a "));
        assert!(md.lines().count() >= 4);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.500");
        assert!(fnum(123456.0).contains('e'));
        assert!(fnum(0.0001).contains('e'));
    }
}
