//! Chaos/conformance harness: sweeps seeded fault plans across the
//! FJLT, partition, and full-pipeline stages and checks the conformance
//! contract — under any retryable fault schedule a stage either produces
//! output **bit-identical** to its fault-free run (same RNG stream) or
//! returns a typed error; a mismatch or a panic is a bug. Failures
//! shrink to a minimal reproducing [`FaultPlan`] printed as JSON (see
//! the `chaos` binary and `tests/chaos.rs`).
//!
//! Everything here is deterministic: stage datasets derive from explicit
//! seeds, fault decisions from the plan seed, so a reported plan JSON
//! replays the identical run.

use std::panic::{self, AssertUnwindSafe};
use treeemb_core::mpc_embed::embed_mpc;
use treeemb_core::params::HybridParams;
use treeemb_core::pipeline::{self, PipelineConfig};
use treeemb_fjlt::fjlt::FjltParams;
use treeemb_fjlt::mpc::fjlt_mpc;
use treeemb_geom::generators;
use treeemb_mpc::fault::{shrink_plan, FaultEvent, FaultPlan, FaultRates, FaultSpec};
use treeemb_mpc::{FaultKind, Runtime};

/// Which pipeline stage a chaos check drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The MPC FJLT in isolation (output: projected coordinates).
    Fjlt,
    /// Hybrid partitioning / tree building in isolation (output: tree
    /// distances).
    Partition,
    /// The full embed pipeline (FJLT → schedule → embed).
    Pipeline,
}

impl Stage {
    /// All stages, in pipeline order.
    pub fn all() -> [Stage; 3] {
        [Stage::Fjlt, Stage::Partition, Stage::Pipeline]
    }

    /// Stable lowercase name (CLI and report key).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Fjlt => "fjlt",
            Stage::Partition => "partition",
            Stage::Pipeline => "pipeline",
        }
    }

    /// Parses a stage name as accepted by `--stage`.
    pub fn parse(s: &str) -> Option<Stage> {
        match s {
            "fjlt" => Some(Stage::Fjlt),
            "partition" => Some(Stage::Partition),
            "pipeline" => Some(Stage::Pipeline),
            _ => None,
        }
    }
}

/// Outcome of one chaos check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Output bit-identical to the fault-free run.
    Conformant,
    /// The stage failed with a typed error — the contract's other
    /// permitted outcome (carries the error's display form).
    TypedError(String),
    /// BUG: output differs from the fault-free run.
    Mismatch(String),
    /// BUG: the stage panicked instead of returning a typed error.
    Panicked(String),
}

impl ChaosVerdict {
    /// True for contract violations (mismatch or panic).
    pub fn is_failure(&self) -> bool {
        matches!(self, ChaosVerdict::Mismatch(_) | ChaosVerdict::Panicked(_))
    }
}

/// One chaos check's result: verdict plus the deterministic fault log
/// of the faulted run (empty on panic).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Stage checked.
    pub stage: Stage,
    /// What happened.
    pub verdict: ChaosVerdict,
    /// Faults the runtime injected, in deterministic order.
    pub events: Vec<FaultEvent>,
    /// Faults injected (events minus backoff bookkeeping).
    pub faults: usize,
}

fn words_for(n: usize, d: usize) -> usize {
    n * (d + 1)
}

/// Machines a stage cluster simulates.
const STAGE_MACHINES: usize = 8;

/// Per-machine capacity overrides a heterogeneity factor induces:
/// every odd-indexed machine shrinks to `factor * capacity` words
/// (`factor <= 0` means a homogeneous cluster). Applied identically to
/// the fault-free reference and the faulted run, so conformance is
/// checked *on* the heterogeneous cluster, not against a homogeneous
/// baseline.
fn hetero_overrides(capacity: usize, factor: f64) -> Vec<(usize, usize)> {
    if factor <= 0.0 || factor >= 1.0 {
        return Vec::new();
    }
    let small = ((capacity as f64) * factor).ceil().max(1.0) as usize;
    (1..STAGE_MACHINES).step_by(2).map(|m| (m, small)).collect()
}

fn stage_runtime(
    n: usize,
    d: usize,
    capacity: usize,
    threads: usize,
    plan: Option<&FaultPlan>,
    hetero: f64,
) -> Runtime {
    let mut builder = Runtime::builder()
        .input_words(words_for(n, d))
        .capacity_words(capacity)
        .machines(STAGE_MACHINES)
        .threads(threads);
    for (machine, words) in hetero_overrides(capacity, hetero) {
        builder = builder.machine_capacity(machine, words);
    }
    if let Some(p) = plan {
        builder = builder.fault_plan(p.clone());
    }
    builder.build()
}

/// Bitwise fingerprint of a float sequence (NaN-safe, order-sensitive).
fn bits_of(vals: impl Iterator<Item = f64>) -> Vec<u64> {
    vals.map(f64::to_bits).collect()
}

fn compare_bits(reference: &[u64], candidate: &[u64], what: &str) -> ChaosVerdict {
    if reference.len() != candidate.len() {
        return ChaosVerdict::Mismatch(format!(
            "{what}: length {} vs fault-free {}",
            candidate.len(),
            reference.len()
        ));
    }
    match reference.iter().zip(candidate).position(|(a, b)| a != b) {
        None => ChaosVerdict::Conformant,
        Some(i) => ChaosVerdict::Mismatch(format!(
            "{what}: first divergence at index {i} ({:#x} vs fault-free {:#x})",
            candidate[i], reference[i]
        )),
    }
}

/// Runs `f` and folds a panic into [`ChaosVerdict::Panicked`].
fn catching(
    f: impl FnOnce() -> (ChaosVerdict, Vec<FaultEvent>),
) -> (ChaosVerdict, Vec<FaultEvent>) {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(out) => out,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            (ChaosVerdict::Panicked(detail), Vec::new())
        }
    }
}

/// Checks one `(stage, plan, data_seed)` triple against the conformance
/// contract. Deterministic: same arguments, same [`ChaosOutcome`].
pub fn check_stage(stage: Stage, plan: &FaultPlan, data_seed: u64) -> ChaosOutcome {
    check_stage_tuned(stage, plan, data_seed, 0.0)
}

/// Like [`check_stage`], on a heterogeneous cluster: `hetero` in
/// `(0, 1)` shrinks every odd-indexed machine to that fraction of the
/// stage capacity (0 = homogeneous). The fault-free reference runs on
/// the same cluster shape.
pub fn check_stage_tuned(
    stage: Stage,
    plan: &FaultPlan,
    data_seed: u64,
    hetero: f64,
) -> ChaosOutcome {
    let (verdict, events) = match stage {
        Stage::Fjlt => check_fjlt(plan, data_seed, hetero),
        Stage::Partition => check_partition(plan, data_seed, hetero),
        Stage::Pipeline => check_pipeline(plan, data_seed, hetero),
    };
    // Backoffs and recoveries are consequences of injected faults, not
    // faults themselves.
    let faults = events
        .iter()
        .filter(|e| e.kind != FaultKind::Backoff && e.kind != FaultKind::Recover)
        .count();
    ChaosOutcome {
        stage,
        verdict,
        events,
        faults,
    }
}

fn check_fjlt(plan: &FaultPlan, data_seed: u64, hetero: f64) -> (ChaosVerdict, Vec<FaultEvent>) {
    let (n, d) = (32usize, 96usize);
    let ps = generators::noisy_line(n, d, 1 << 10, 1.0, data_seed);
    let params = FjltParams::for_dataset(n, d, 0.45, data_seed ^ 0xF17);
    let mut clean_rt = stage_runtime(n, d, 1 << 17, 2, None, hetero);
    let clean = fjlt_mpc(&mut clean_rt, &ps, &params).expect("fault-free FJLT must succeed");
    let reference = bits_of((0..clean.len()).flat_map(|i| clean.point(i).iter().copied()));
    catching(|| {
        let mut rt = stage_runtime(n, d, 1 << 17, 2, Some(plan), hetero);
        let result = fjlt_mpc(&mut rt, &ps, &params);
        let events = rt.take_fault_log();
        let verdict = match result {
            Err(e) => ChaosVerdict::TypedError(e.to_string()),
            Ok(projected) => {
                let got =
                    bits_of((0..projected.len()).flat_map(|i| projected.point(i).iter().copied()));
                compare_bits(&reference, &got, "fjlt coordinates")
            }
        };
        (verdict, events)
    })
}

fn check_partition(
    plan: &FaultPlan,
    data_seed: u64,
    hetero: f64,
) -> (ChaosVerdict, Vec<FaultEvent>) {
    let (n, d) = (24usize, 8usize);
    let ps = generators::uniform_cube(n, d, 256, data_seed);
    let params =
        HybridParams::for_dataset_with_sep(&ps, 4, 1.0, 1e-3).expect("params must be valid");
    let embed_seed = data_seed ^ 0x7EED;
    let mut clean_rt = stage_runtime(n, d, 1 << 15, 2, None, hetero);
    let clean =
        embed_mpc(&mut clean_rt, &ps, &params, embed_seed).expect("fault-free embed must succeed");
    let all_pairs = |emb: &treeemb_core::seq::Embedding| {
        let mut dists = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(emb.tree_distance(i, j));
            }
        }
        dists
    };
    let reference = bits_of(all_pairs(&clean).into_iter());
    catching(|| {
        let mut rt = stage_runtime(n, d, 1 << 15, 2, Some(plan), hetero);
        let result = embed_mpc(&mut rt, &ps, &params, embed_seed);
        let events = rt.take_fault_log();
        let verdict = match result {
            Err(e) => ChaosVerdict::TypedError(e.to_string()),
            Ok(emb) => compare_bits(
                &reference,
                &bits_of(all_pairs(&emb).into_iter()),
                "tree distances",
            ),
        };
        (verdict, events)
    })
}

fn check_pipeline(
    plan: &FaultPlan,
    data_seed: u64,
    hetero: f64,
) -> (ChaosVerdict, Vec<FaultEvent>) {
    let n = 24usize;
    let ps = generators::uniform_cube(n, 8, 256, data_seed);
    let mut builder = PipelineConfig::builder()
        .capacity_words(1 << 15)
        .machines(STAGE_MACHINES)
        .r(4)
        .threads(2)
        .seed(data_seed ^ 0x7EED);
    for (machine, words) in hetero_overrides(1 << 15, hetero) {
        builder = builder.machine_capacity(machine, words);
    }
    let cfg = builder.build();
    let clean = pipeline::run(&ps, &cfg).expect("fault-free pipeline must succeed");
    let all_pairs = |emb: &treeemb_core::seq::Embedding| {
        let mut dists = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(emb.tree_distance(i, j));
            }
        }
        dists
    };
    let reference = bits_of(all_pairs(&clean.embedding).into_iter());
    catching(|| {
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.faults = Some(plan.clone());
        faulted_cfg.fault_attempts = 2;
        let (result, events) = pipeline::run_faulted(&ps, &faulted_cfg);
        let verdict = match result {
            Err(e) => ChaosVerdict::TypedError(e.to_string()),
            Ok(report) => compare_bits(
                &reference,
                &bits_of(all_pairs(&report.embedding).into_iter()),
                "pipeline tree distances",
            ),
        };
        (verdict, events)
    })
}

/// The seeded plan matrix swept per seed: light transient noise, heavy
/// transient noise (low retry budget, so `RetriesExhausted` is
/// reachable), a drastic mid-run capacity squeeze (non-retryable; must
/// surface as a typed error), a deterministic first-attempt drop per
/// round, one scheduled machine crash per early round (must recover
/// bit-identically from the checkpoint), and a crash storm that
/// exhausts the recovery budget (must surface as the typed retryable
/// `RecoveryExhausted`).
pub fn plan_matrix(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    // Per-message rates scale with round fan-out: the FJLT rounds carry
    // thousands of messages, so "light" must stay well under 1 expected
    // fault per attempt there for the retry-then-succeed path to win.
    let light = FaultPlan::new(seed)
        .with_rates(FaultRates {
            drop: 0.0002,
            duplicate: 0.0001,
            unavailable: 0.002,
            straggle: 0.01,
            straggle_ns: 5_000,
            crash: 0.0,
        })
        .with_max_retries(12);
    let heavy = FaultPlan::new(seed ^ 0xBEEF)
        .with_rates(FaultRates {
            drop: 0.01,
            duplicate: 0.005,
            unavailable: 0.05,
            straggle: 0.05,
            straggle_ns: 5_000,
            crash: 0.0,
        })
        .with_max_retries(3);
    let squeeze = FaultPlan::new(seed).with_fault(FaultSpec::Squeeze {
        from_round: 2,
        capacity_words: 32,
        machine: None,
    });
    // One first-attempt drop per round: every stage deterministically
    // exercises the retry-then-succeed path (rounds where machine 0
    // sends nothing simply skip the fault), so conformance-after-retry
    // is checked even on stages whose fan-out makes rate plans exhaust.
    let mut pinpoint = FaultPlan::new(seed).with_max_retries(3);
    for round in 0..6 {
        pinpoint.scheduled.push(FaultSpec::Drop {
            round,
            attempt: 0,
            src: 0,
            msg_index: 0,
        });
    }
    // One scheduled crash per early round, rotating over machines: every
    // stage loses at least one shard mid-round and must recover from the
    // checkpoint bit-identically.
    let mut crash = FaultPlan::new(seed ^ 0xC4A5);
    for round in 0..4 {
        crash = crash.with_fault(FaultSpec::Crash {
            round,
            attempt: 0,
            machine: round % STAGE_MACHINES,
        });
    }
    // Crash machine 0 on the initial run and the single permitted
    // re-execution of round 0: recovery exhausts, so the stage must die
    // of the typed, retryable `RecoveryExhausted` (never a panic).
    // Blanket the early round indices so the schedule also bites in
    // stages whose first round indices are accounted analytically and
    // never execute.
    let mut crash_exhaust = FaultPlan::new(seed ^ 0xDEAD).with_max_recoveries(1);
    for round in 0..8 {
        for attempt in 0..2 {
            crash_exhaust = crash_exhaust.with_fault(FaultSpec::Crash {
                round,
                attempt,
                machine: 0,
            });
        }
    }
    vec![
        ("light", light),
        ("heavy", heavy),
        ("squeeze", squeeze),
        ("pinpoint", pinpoint),
        ("crash", crash),
        ("crash-exhaust", crash_exhaust),
    ]
}

/// A rate-based crash plan (per-machine, per-execution crash
/// probability) for `--crash-rate` sweeps; generous recovery budget so
/// moderate rates recover rather than exhaust.
pub fn crash_rate_plan(seed: u64, crash_rate: f64) -> FaultPlan {
    FaultPlan::new(seed ^ 0xC7A5)
        .with_rates(FaultRates {
            crash: crash_rate,
            ..FaultRates::default()
        })
        .with_max_recoveries(6)
}

/// One row of a sweep report.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Stage checked.
    pub stage: Stage,
    /// Plan-matrix entry name (`light`/`heavy`/`squeeze`/`crash`/…).
    pub plan_name: &'static str,
    /// Plan seed.
    pub seed: u64,
    /// The plan that ran.
    pub plan: FaultPlan,
    /// Heterogeneity factor the stage cluster ran with (0 =
    /// homogeneous).
    pub hetero: f64,
    /// Check outcome.
    pub outcome: ChaosOutcome,
}

/// Tuning knobs of a sweep, beyond the seeded plan matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// When positive, adds a `crash-rate` plan column sampling machine
    /// crashes at this probability per execution.
    pub crash_rate: f64,
    /// Heterogeneity factor in `(0, 1)`: odd-indexed machines shrink to
    /// this fraction of the stage capacity (0 = homogeneous).
    pub hetero: f64,
}

/// Sweeps the plan matrix over `seeds` seeds and every stage in
/// `stages`. Returns every row; callers decide what a failure means.
pub fn sweep(stages: &[Stage], seeds: u64) -> Vec<SweepRow> {
    sweep_with(stages, seeds, SweepOptions::default())
}

/// [`sweep`] with tuning: extra crash-rate plan column and/or a
/// heterogeneous stage cluster.
pub fn sweep_with(stages: &[Stage], seeds: u64, opts: SweepOptions) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &stage in stages {
        for seed in 0..seeds {
            let mut plans = plan_matrix(seed);
            if opts.crash_rate > 0.0 {
                plans.push(("crash-rate", crash_rate_plan(seed, opts.crash_rate)));
            }
            for (plan_name, plan) in plans {
                let outcome = check_stage_tuned(stage, &plan, seed, opts.hetero);
                rows.push(SweepRow {
                    stage,
                    plan_name,
                    seed,
                    plan,
                    hetero: opts.hetero,
                    outcome,
                });
            }
        }
    }
    rows
}

/// Shrinks a failing row to a minimal reproducing plan: first replays
/// the observed fault events as an explicit schedule (if that still
/// fails), then greedily delta-debugs whichever plan reproduces.
pub fn shrink_failure(row: &SweepRow) -> FaultPlan {
    let fails = |p: &FaultPlan| {
        check_stage_tuned(row.stage, p, row.seed, row.hetero)
            .verdict
            .is_failure()
    };
    let explicit = FaultPlan::from_events(
        &row.outcome.events,
        row.plan.max_retries,
        row.plan.backoff_ns,
    );
    let base = if fails(&explicit) {
        explicit
    } else {
        row.plan.clone()
    };
    shrink_plan(&base, fails)
}

/// Renders sweep rows as a JSON report (hand-rolled; no serde in the
/// workspace).
pub fn report_json(rows: &[SweepRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let (verdict, detail) = match &row.outcome.verdict {
            ChaosVerdict::Conformant => ("conformant", String::new()),
            ChaosVerdict::TypedError(e) => ("typed_error", e.clone()),
            ChaosVerdict::Mismatch(e) => ("mismatch", e.clone()),
            ChaosVerdict::Panicked(e) => ("panicked", e.clone()),
        };
        let _ = writeln!(
            out,
            "    {{\"stage\": \"{}\", \"plan\": \"{}\", \"seed\": {}, \"hetero\": {}, \"verdict\": \"{}\", \"faults\": {}, \"detail\": {}}}{}",
            row.stage.name(),
            row.plan_name,
            row.seed,
            row.hetero,
            verdict,
            row.outcome.faults,
            json_string(&detail),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::all() {
            assert_eq!(Stage::parse(stage.name()), Some(stage));
        }
        assert_eq!(Stage::parse("nope"), None);
    }

    #[test]
    fn empty_plan_is_conformant_on_every_stage() {
        for stage in Stage::all() {
            let outcome = check_stage(stage, &FaultPlan::new(0), 3);
            assert_eq!(
                outcome.verdict,
                ChaosVerdict::Conformant,
                "stage {}",
                stage.name()
            );
            assert!(outcome.events.is_empty());
        }
    }

    #[test]
    fn report_json_is_parseable() {
        let rows = vec![SweepRow {
            stage: Stage::Fjlt,
            plan_name: "light",
            seed: 1,
            plan: FaultPlan::new(1),
            hetero: 0.0,
            outcome: ChaosOutcome {
                stage: Stage::Fjlt,
                verdict: ChaosVerdict::TypedError("x \"quoted\"\n".into()),
                events: Vec::new(),
                faults: 0,
            },
        }];
        let text = report_json(&rows);
        let parsed = treeemb_mpc::fault::json::parse(&text).expect("report must parse");
        let arr = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("verdict").unwrap().as_str(), Some("typed_error"));
    }
}
