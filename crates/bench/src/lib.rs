//! Experiment harness: regenerates every table/figure of the paper's
//! claims (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! Each experiment is a function `eN(scale) -> Vec<Table>`; the
//! `experiments` bench target (and the `exp` binary) run them and print
//! markdown tables. `Scale::quick()` keeps everything under a few
//! seconds per experiment for CI; `Scale::full()` uses larger sweeps.

pub mod chaos;
pub mod experiments;
pub mod table;

pub use table::Table;

/// Experiment sizing knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Smaller sweeps and fewer Monte-Carlo trials.
    pub quick: bool,
}

impl Scale {
    /// CI-friendly sizes.
    pub fn quick() -> Self {
        Self { quick: true }
    }

    /// Paper-shape sizes (minutes, release build recommended).
    pub fn full() -> Self {
        Self { quick: false }
    }

    /// Picks `q` under quick scale, else `f`.
    pub fn pick<T>(&self, q: T, f: T) -> T {
        if self.quick {
            q
        } else {
            f
        }
    }
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16", "e17", "e18",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, scale: Scale) -> Vec<Table> {
    match id {
        "f1" => experiments::f1::run(scale),
        "e1" => experiments::e1::run(scale),
        "e2" => experiments::e2::run(scale),
        "e3" => experiments::e3::run(scale),
        "e4" => experiments::e4::run(scale),
        "e5" => experiments::e5::run(scale),
        "e6" => experiments::e6::run(scale),
        "e7" => experiments::e7::run(scale),
        "e8" => experiments::e8::run(scale),
        "e9" => experiments::e9::run(scale),
        "e10" => experiments::e10::run(scale),
        "e11" => experiments::e11::run(scale),
        "e12" => experiments::e12::run(scale),
        "e13" => experiments::e13::run(scale),
        "e14" => experiments::e14::run(scale),
        "e15" => experiments::e15::run(scale),
        "e16" => experiments::e16::run(scale),
        "e17" => experiments::e17::run(scale),
        "e18" => experiments::e18::run(scale),
        other => panic!("unknown experiment id {other:?} (known: {ALL_EXPERIMENTS:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        // Smoke: every id is wired up (running them is the bench's job;
        // here just check the dispatch doesn't panic on the cheapest).
        assert!(ALL_EXPERIMENTS.contains(&"e1"));
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::quick().pick(1, 2), 1);
        assert_eq!(Scale::full().pick(1, 2), 2);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("nope", Scale::quick());
    }
}
