//! Structured tracing for the workspace: nesting wall-time spans,
//! named counters, and machine-readable trace export.
//!
//! The paper's claims are resource claims (rounds, words, space), and
//! `treeemb-mpc` already meters those; this crate records *where
//! wall-clock time goes*. Every MPC round, pipeline stage, and executor
//! job opens a [`Span`]; spans nest per thread and record their wall
//! time plus `u64` arguments (word counts, item counts) into one global
//! collector. The collected events export as
//!
//! * a Chrome `trace_event`-format file ([`export::chrome_trace_json`]),
//!   loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * a JSONL stream ([`export::jsonl`]), one event object per line.
//!
//! **Zero-cost when off.** Tracing is armed either by the
//! `TREEEMB_TRACE=path` environment variable (read once, on first use)
//! or programmatically via [`set_trace_path`] / [`capture_start`]. When
//! disarmed, [`Span::enter`] is a single relaxed atomic load and no
//! allocation, no clock read, and no event storage happens; dynamic
//! span names ([`Span::enter_with`]) take a closure so the `format!`
//! is never evaluated. When the variable is unset and no path was set,
//! [`flush_trace`] writes nothing and returns `None`.
//!
//! Thread-safety: events are buffered per event (one short
//! mutex-protected push at span *end*), so spans opened concurrently on
//! many executor workers interleave without loss; ordering within a
//! thread is by end time, and each event carries a stable per-thread id
//! plus its nesting depth.
//!
//! ```
//! treeemb_obs::capture_start();
//! {
//!     let mut outer = treeemb_obs::span!("pipeline.stage");
//!     outer.arg("items", 3);
//!     let _inner = treeemb_obs::span!("inner.work");
//! }
//! let events = treeemb_obs::drain();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "inner.work"); // inner ends first
//! treeemb_obs::capture_stop();
//! ```

pub mod export;

use std::borrow::Cow;
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: wall-time interval with nested depth.
    Span,
    /// A sampled counter value (monotonic or gauge; the value is in
    /// the first entry of `args`).
    Counter,
    /// A zero-duration marker.
    Mark,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name (span label, counter name).
    pub name: String,
    /// Span, counter, or mark.
    pub kind: EventKind,
    /// Stable small integer id of the recording thread.
    pub tid: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds (0 for counters/marks).
    pub dur_ns: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Attached integer arguments (word counts, item counts, ...).
    pub args: Vec<(&'static str, u64)>,
}

struct Collector {
    enabled: AtomicBool,
    events: Mutex<Vec<Event>>,
    trace_path: Mutex<Option<PathBuf>>,
}

static ENV_INIT: Once = Once::new();

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        events: Mutex::new(Vec::new()),
        trace_path: Mutex::new(None),
    })
}

/// Arms tracing from `TREEEMB_TRACE=path`, once per process. Called
/// implicitly by every [`enabled`] check; cheap after the first call.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        // lint:allow(env-read): TREEEMB_TRACE arms the tracer itself and
        // is documented in from_env's module docs as living here; obs
        // cannot depend on treeemb-mpc (dependency inversion).
        if let Ok(path) = std::env::var("TREEEMB_TRACE") {
            if !path.is_empty() {
                let c = collector();
                *c.trace_path.lock().expect("obs path lock") = Some(PathBuf::from(path));
                c.enabled.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Whether event collection is armed. The disarmed fast path is one
/// `Once` check plus one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    collector().enabled.load(Ordering::Relaxed)
}

/// Arms in-memory event collection (no file path; use [`drain`]).
pub fn capture_start() {
    init_from_env();
    collector().enabled.store(true, Ordering::Relaxed);
}

/// Disarms event collection. Spans already open still restore their
/// nesting depth but record nothing new after this.
pub fn capture_stop() {
    collector().enabled.store(false, Ordering::Relaxed);
}

/// Sets the trace output path programmatically (e.g. from a
/// `--trace-out` flag) and arms collection; [`flush_trace`] then writes
/// a Chrome-trace file there.
pub fn set_trace_path(path: impl Into<PathBuf>) {
    init_from_env();
    let c = collector();
    *c.trace_path.lock().expect("obs path lock") = Some(path.into());
    c.enabled.store(true, Ordering::Relaxed);
}

/// Takes every event collected so far, leaving the buffer empty.
pub fn drain() -> Vec<Event> {
    std::mem::take(&mut *collector().events.lock().expect("obs event lock"))
}

/// Clones every event collected so far (the buffer keeps accumulating).
pub fn snapshot() -> Vec<Event> {
    collector().events.lock().expect("obs event lock").clone()
}

/// Writes all events collected so far to the configured trace path in
/// Chrome `trace_event` format, returning the path written. Returns
/// `None` — and touches no file — when neither `TREEEMB_TRACE` nor
/// [`set_trace_path`] configured a destination. Safe to call repeatedly:
/// later calls rewrite the file with the fuller event set.
pub fn flush_trace() -> Option<PathBuf> {
    init_from_env();
    let path = collector()
        .trace_path
        .lock()
        .expect("obs path lock")
        .clone()?;
    let events = snapshot();
    if let Err(e) = export::write_chrome_trace(&path, &events) {
        eprintln!("treeemb-obs: failed to write trace {}: {e}", path.display());
        return None;
    }
    Some(path)
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use of the clock).
/// Monotonic; shared by every span and by `Metrics` round timestamps.
#[inline]
pub fn now_ns() -> u64 {
    trace_epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Stable small integer id of the calling thread (assigned on first use).
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn record(event: Event) {
    collector()
        .events
        .lock()
        .expect("obs event lock")
        .push(event);
}

/// Records a counter sample (rendered as a counter track in Perfetto).
/// No-op when collection is disarmed.
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.to_string(),
        kind: EventKind::Counter,
        tid: thread_id(),
        start_ns: now_ns(),
        dur_ns: 0,
        depth: 0,
        args: vec![("value", value)],
    });
}

/// Records a zero-duration marker with arguments. No-op when disarmed.
pub fn mark(name: impl Into<Cow<'static, str>>, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.into().into_owned(),
        kind: EventKind::Mark,
        tid: thread_id(),
        start_ns: now_ns(),
        dur_ns: 0,
        depth: DEPTH.with(Cell::get),
        args: args.to_vec(),
    });
}

/// A RAII wall-time span. Create via [`span!`], [`Span::enter`], or
/// [`Span::enter_with`]; the event is recorded when the guard drops.
/// When collection is disarmed the guard is inert: no name is built, no
/// clock is read, nothing is stored.
pub struct Span {
    /// `None` = inert guard (collection was disarmed at entry).
    name: Option<Cow<'static, str>>,
    start_ns: u64,
    depth: u32,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Opens a span with a static name.
    #[inline]
    pub fn enter(name: impl Into<Cow<'static, str>>) -> Span {
        if !enabled() {
            return Span::inert();
        }
        Span::active(name.into())
    }

    /// Opens a span with a lazily built name; `f` runs only when
    /// collection is armed (so `format!` costs nothing when off).
    #[inline]
    pub fn enter_with(f: impl FnOnce() -> String) -> Span {
        if !enabled() {
            return Span::inert();
        }
        Span::active(Cow::Owned(f()))
    }

    fn inert() -> Span {
        Span {
            name: None,
            start_ns: 0,
            depth: 0,
            args: Vec::new(),
        }
    }

    fn active(name: Cow<'static, str>) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            name: Some(name),
            start_ns: now_ns(),
            depth,
            args: Vec::new(),
        }
    }

    /// Whether this guard will record an event on drop.
    pub fn is_active(&self) -> bool {
        self.name.is_some()
    }

    /// Attaches an integer argument (word count, item count, ...).
    /// No-op on an inert guard.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.name.is_some() {
            self.args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = now_ns();
        record(Event {
            name: name.into_owned(),
            kind: EventKind::Span,
            tid: thread_id(),
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            depth: self.depth,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a wall-time [`Span`] guard: `span!("name")` or
/// `span!("name", "items" = n, "words" = w)`. Bind it to a named local
/// (`let _sp = span!(...)`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($k:literal = $v:expr),+ $(,)?) => {{
        let mut __sp = $crate::Span::enter($name);
        $(__sp.arg($k, $v as u64);)+
        __sp
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Collection state is process-global; tests that arm/disarm it
    // serialize on this lock so they cannot observe each other.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_spans_are_inert_and_free() {
        let _g = test_lock();
        capture_stop();
        drain();
        let mut s = Span::enter("never");
        assert!(!s.is_active());
        s.arg("x", 1);
        drop(s);
        let called = std::cell::Cell::new(false);
        let lazy = Span::enter_with(|| {
            called.set(true);
            "nope".to_string()
        });
        assert!(!lazy.is_active());
        drop(lazy);
        assert!(!called.get(), "lazy name must not be built when disarmed");
        counter("never.counter", 3);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_record_containment() {
        let _g = test_lock();
        capture_start();
        drain();
        {
            let mut outer = span!("outer");
            outer.arg("items", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span!("inner", "w" = 3);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        capture_stop();
        let events = drain();
        assert_eq!(events.len(), 2);
        // Events are recorded at span end: inner first.
        let (inner, outer) = (&events[0], &events[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert!(outer.dur_ns >= 2_000_000, "outer covers both sleeps");
        assert_eq!(outer.args, vec![("items", 7)]);
        assert_eq!(inner.args, vec![("w", 3)]);
    }

    #[test]
    fn concurrent_threads_lose_no_spans() {
        let _g = test_lock();
        capture_start();
        drain();
        let per_thread = 64;
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for i in 0..per_thread {
                        let _sp = span!("concurrent.span", "t" = t, "i" = i);
                    }
                });
            }
        });
        capture_stop();
        let events: Vec<Event> = drain()
            .into_iter()
            .filter(|e| e.name == "concurrent.span")
            .collect();
        assert_eq!(events.len(), 8 * per_thread as usize);
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 8, "each thread keeps a distinct tid");
        // Per-thread order: recorded end times are non-decreasing.
        for tid in tids {
            let ends: Vec<u64> = events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.start_ns + e.dur_ns)
                .collect();
            assert!(ends.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn flush_without_destination_writes_nothing() {
        let _g = test_lock();
        // No TREEEMB_TRACE in the test environment and no explicit path
        // configured: flush must not create any file.
        // lint:allow(env-read): probing whether the ambient environment
        // invalidates this test's premise, not configuring anything.
        if std::env::var("TREEEMB_TRACE").is_ok() {
            return; // environment overrides the premise; skip
        }
        capture_start();
        {
            let _sp = span!("will.not.be.written");
        }
        capture_stop();
        assert!(flush_trace().is_none());
        drain();
    }

    #[test]
    fn counters_and_marks_record_values() {
        let _g = test_lock();
        capture_start();
        drain();
        counter("exec.tasks", 42);
        mark("round.accounted", &[("sent_words", 9)]);
        capture_stop();
        let events = drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Counter);
        assert_eq!(events[0].args, vec![("value", 42)]);
        assert_eq!(events[1].kind, EventKind::Mark);
        assert_eq!(events[1].args, vec![("sent_words", 9)]);
    }
}
