//! Trace exporters: Chrome `trace_event` JSON and JSONL.
//!
//! The workspace builds without serde, so both writers emit JSON by
//! hand; the grammar used (string keys, integer/float values, flat
//! `args` objects) is small enough that escaping names is the only
//! subtlety.
//!
//! The Chrome format is the ["Trace Event Format"] consumed by
//! `chrome://tracing` and Perfetto: an object with a `traceEvents`
//! array of complete events (`ph:"X"`, microsecond `ts`/`dur`), counter
//! events (`ph:"C"`), and instant events (`ph:"i"`).
//!
//! ["Trace Event Format"]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, EventKind};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes `s` for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_args(json: &mut String, args: &[(&'static str, u64)]) {
    json.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\"{}\":{v}", escape(k));
    }
    json.push('}');
}

/// Renders events as a Chrome `trace_event`-format JSON document.
/// Timestamps convert from nanoseconds to the format's microseconds
/// with fractional precision preserved.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut json = String::with_capacity(events.len() * 96 + 128);
    json.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let ts = e.start_ns as f64 / 1_000.0;
        match e.kind {
            EventKind::Span => {
                let dur = e.dur_ns as f64 / 1_000.0;
                let _ = write!(
                    json,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":",
                    escape(&e.name),
                    e.tid,
                );
                write_args(&mut json, &e.args);
                json.push('}');
            }
            EventKind::Counter => {
                let _ = write!(
                    json,
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{ts:.3},\"args\":",
                    escape(&e.name),
                );
                write_args(&mut json, &e.args);
                json.push('}');
            }
            EventKind::Mark => {
                let _ = write!(
                    json,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"args\":",
                    escape(&e.name),
                    e.tid,
                );
                write_args(&mut json, &e.args);
                json.push('}');
            }
        }
    }
    json.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    json
}

/// Renders events as JSONL: one self-contained JSON object per line,
/// with raw nanosecond timestamps and nesting depth (for scripted
/// consumers that don't want the Chrome envelope).
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let kind = match e.kind {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Mark => "mark",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{kind}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"depth\":{},\"args\":",
            escape(&e.name),
            e.tid,
            e.start_ns,
            e.dur_ns,
            e.depth,
        );
        write_args(&mut out, &e.args);
        out.push_str("}\n");
    }
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path, events: &[Event]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

/// Writes [`jsonl`] to `path`.
pub fn write_jsonl(path: &Path, events: &[Event]) -> io::Result<()> {
    std::fs::write(path, jsonl(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                name: "mpc.round:fjlt \"wht\"".into(),
                kind: EventKind::Span,
                tid: 3,
                start_ns: 1_500,
                dur_ns: 2_000,
                depth: 1,
                args: vec![("sent_words", 10), ("round", 0)],
            },
            Event {
                name: "exec.tasks".into(),
                kind: EventKind::Counter,
                tid: 1,
                start_ns: 4_000,
                dur_ns: 0,
                depth: 0,
                args: vec![("value", 99)],
            },
            Event {
                name: "round.accounted".into(),
                kind: EventKind::Mark,
                tid: 1,
                start_ns: 5_000,
                dur_ns: 0,
                depth: 0,
                args: vec![],
            },
        ]
    }

    /// Minimal structural JSON check (the workspace has no JSON parser):
    /// brackets/braces balance outside string literals and all string
    /// literals terminate.
    fn assert_balanced_json(s: &str) {
        let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert!(!in_str, "unterminated string literal");
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
    }

    #[test]
    fn chrome_trace_has_expected_phases_and_balances() {
        let json = chrome_trace_json(&sample());
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        // ns -> us conversion: 1500 ns = 1.5 us, 2000 ns = 2 us.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"sent_words\":10"));
        // The quote inside the span name must be escaped.
        assert!(json.contains("mpc.round:fjlt \\\"wht\\\""));
    }

    #[test]
    fn jsonl_is_one_balanced_object_per_line() {
        let out = jsonl(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_balanced_json(line);
        }
        assert!(out.contains("\"kind\":\"span\""));
        assert!(out.contains("\"start_ns\":1500"));
        assert!(out.contains("\"depth\":1"));
    }

    #[test]
    fn empty_event_list_still_valid() {
        let json = chrome_trace_json(&[]);
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
        assert!(jsonl(&[]).is_empty());
    }

    #[test]
    fn control_characters_escape() {
        let e = Event {
            name: "bad\nname\u{1}".into(),
            kind: EventKind::Span,
            tid: 1,
            start_ns: 0,
            dur_ns: 1,
            depth: 0,
            args: vec![],
        };
        let json = chrome_trace_json(&[e]);
        assert_balanced_json(&json);
        assert!(json.contains("bad\\nname\\u0001"));
    }
}
