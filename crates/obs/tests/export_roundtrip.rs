//! Exporter round-trip tests: capture a real span/counter/mark trace,
//! render it with both exporters (Chrome `trace_event` JSON and JSONL),
//! parse both back with a real JSON parser, and check the two documents
//! describe the same trace — same event count, same names, same span
//! nesting. The unit tests in `src/export.rs` check string shape; these
//! check the documents as *data*.
//!
//! The workspace has no serde, and `treeemb-obs` sits below every crate
//! that owns a parser, so the test carries its own minimal
//! recursive-descent JSON reader (objects, arrays, strings, numbers,
//! literals — the full grammar both exporters emit).

use std::sync::Mutex;
use treeemb_obs::{self as obs, export, Event, EventKind};

/// Capture buffer and trace path are process-global; serialize the
/// tests that touch them.
static TEST_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Minimal JSON parser (test-only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

fn parse(text: &str) -> Json {
    let mut p = Parser::new(text);
    let v = p.value().expect("document must parse");
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after document");
    v
}

// ---------------------------------------------------------------------
// Trace capture and the round-trip checks.
// ---------------------------------------------------------------------

/// Records a small but structurally rich trace: two levels of span
/// nesting, a mark inside the inner span, a counter, and a name that
/// needs escaping.
fn record_sample() -> Vec<Event> {
    obs::capture_start();
    {
        let mut outer = obs::span!("roundtrip.outer", "n" = 3);
        {
            let mut inner = obs::span!("roundtrip.inner \"q\"");
            inner.arg("k", 1);
            obs::mark("roundtrip.mark", &[("round", 2), ("attempt", 0)]);
        }
        obs::counter("roundtrip.counter", 7);
        outer.arg("done", 1);
    }
    obs::capture_stop();
    let events = obs::drain();
    assert!(
        events.len() >= 4,
        "expected spans+mark+counter, got {events:?}"
    );
    events
}

fn phase_of(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Span => "X",
        EventKind::Counter => "C",
        EventKind::Mark => "i",
    }
}

fn kind_word(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Span => "span",
        EventKind::Counter => "counter",
        EventKind::Mark => "mark",
    }
}

#[test]
fn chrome_trace_round_trips_through_a_real_parser() {
    let _guard = TEST_LOCK.lock().unwrap();
    let events = record_sample();
    let doc = parse(&export::chrome_trace_json(&events));
    let rows = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert_eq!(rows.len(), events.len(), "one trace row per event");
    for (row, event) in rows.iter().zip(&events) {
        assert_eq!(row.get("name").unwrap().as_str(), Some(&*event.name));
        assert_eq!(row.get("ph").unwrap().as_str(), Some(phase_of(event.kind)));
        let ts = row.get("ts").unwrap().as_num().unwrap();
        assert!(
            (ts - event.start_ns as f64 / 1_000.0).abs() < 1e-3,
            "ts must be the microsecond start"
        );
        if event.kind == EventKind::Span {
            let dur = row.get("dur").unwrap().as_num().unwrap();
            assert!((dur - event.dur_ns as f64 / 1_000.0).abs() < 1e-3);
        }
        // args survive as a flat object of integers.
        for (k, v) in &event.args {
            let got = row.get("args").unwrap().get(k).and_then(Json::as_num);
            assert_eq!(got, Some(*v as f64), "arg {k} on {}", event.name);
        }
    }
}

#[test]
fn jsonl_round_trips_through_a_real_parser() {
    let _guard = TEST_LOCK.lock().unwrap();
    let events = record_sample();
    let text = export::jsonl(&events);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len(), "one line per event");
    for (line, event) in lines.iter().zip(&events) {
        let row = parse(line);
        assert_eq!(row.get("name").unwrap().as_str(), Some(&*event.name));
        assert_eq!(
            row.get("kind").unwrap().as_str(),
            Some(kind_word(event.kind))
        );
        assert_eq!(
            row.get("start_ns").unwrap().as_num(),
            Some(event.start_ns as f64)
        );
        assert_eq!(
            row.get("dur_ns").unwrap().as_num(),
            Some(event.dur_ns as f64)
        );
        assert_eq!(row.get("depth").unwrap().as_num(), Some(event.depth as f64));
    }
}

/// The two exporters must tell the same story: same span count, same
/// names in the same order, and nesting that agrees — JSONL's explicit
/// `depth` must match interval containment in the Chrome document.
#[test]
fn exporters_agree_on_span_counts_and_nesting() {
    let _guard = TEST_LOCK.lock().unwrap();
    let events = record_sample();
    let chrome = parse(&export::chrome_trace_json(&events));
    let chrome_rows = chrome.get("traceEvents").unwrap().as_arr().unwrap();
    let jsonl_text = export::jsonl(&events);
    let jsonl_rows: Vec<Json> = jsonl_text.lines().map(parse).collect();

    // Same events, same order, same names.
    assert_eq!(chrome_rows.len(), jsonl_rows.len());
    for (c, j) in chrome_rows.iter().zip(&jsonl_rows) {
        assert_eq!(
            c.get("name").unwrap().as_str(),
            j.get("name").unwrap().as_str()
        );
    }

    // Same span count.
    let chrome_spans: Vec<&Json> = chrome_rows
        .iter()
        .filter(|r| r.get("ph").unwrap().as_str() == Some("X"))
        .collect();
    let jsonl_spans: Vec<&Json> = jsonl_rows
        .iter()
        .filter(|r| r.get("kind").unwrap().as_str() == Some("span"))
        .collect();
    assert_eq!(chrome_spans.len(), jsonl_spans.len());
    assert!(chrome_spans.len() >= 2, "sample must contain nested spans");

    // Nesting agreement: find the inner/outer pair by name in both
    // documents. JSONL says inner is one level deeper; the Chrome
    // intervals must show containment (inner within outer).
    let by_name = |rows: &[&Json], name: &str| -> Json {
        rows.iter()
            .find(|r| {
                r.get("name")
                    .unwrap()
                    .as_str()
                    .is_some_and(|n| n.starts_with(name))
            })
            .map(|r| (*r).clone())
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    let (c_outer, c_inner) = (
        by_name(&chrome_spans, "roundtrip.outer"),
        by_name(&chrome_spans, "roundtrip.inner"),
    );
    let (j_outer, j_inner) = (
        by_name(&jsonl_spans, "roundtrip.outer"),
        by_name(&jsonl_spans, "roundtrip.inner"),
    );
    let depth = |r: &Json| r.get("depth").unwrap().as_num().unwrap();
    assert_eq!(
        depth(&j_inner),
        depth(&j_outer) + 1.0,
        "JSONL must report the inner span one level deeper"
    );
    let span_of = |r: &Json| -> (f64, f64) {
        let ts = r.get("ts").unwrap().as_num().unwrap();
        (ts, ts + r.get("dur").unwrap().as_num().unwrap())
    };
    let (outer_start, outer_end) = span_of(&c_outer);
    let (inner_start, inner_end) = span_of(&c_inner);
    assert!(
        outer_start <= inner_start && inner_end <= outer_end,
        "Chrome intervals must show the same containment \
         (outer [{outer_start}, {outer_end}], inner [{inner_start}, {inner_end}])"
    );
}

/// The file writers emit the same bytes the string renderers produce.
#[test]
fn file_writers_match_string_renderers() {
    let _guard = TEST_LOCK.lock().unwrap();
    let events = record_sample();
    let dir = std::env::temp_dir();
    let chrome_path = dir.join("treeemb_obs_roundtrip_trace.json");
    let jsonl_path = dir.join("treeemb_obs_roundtrip_trace.jsonl");
    export::write_chrome_trace(&chrome_path, &events).expect("chrome write");
    export::write_jsonl(&jsonl_path, &events).expect("jsonl write");
    assert_eq!(
        std::fs::read_to_string(&chrome_path).unwrap(),
        export::chrome_trace_json(&events)
    );
    assert_eq!(
        std::fs::read_to_string(&jsonl_path).unwrap(),
        export::jsonl(&events)
    );
    let _ = std::fs::remove_file(chrome_path);
    let _ = std::fs::remove_file(jsonl_path);
}
