//! Property tests for the partitioning layer: geometric invariants that
//! must hold for every point, scale, and seed.
//!
//! Case count defaults to 64 (fast, every CI run); set
//! `TREEEMB_PROPTEST_CASES=2048` (or higher) for the promoted nightly
//! sweep — in particular the packed-key vs exact-key partition parity
//! property, which guards the `assign_packed` hot path.

use proptest::prelude::*;
use treeemb_geom::metrics::dist;
use treeemb_partition::ball::{BallGrid, GridSequence};
use treeemb_partition::grid::ShiftedGrid;
use treeemb_partition::hybrid::HybridLevel;

/// `TREEEMB_PROPTEST_CASES` override, defaulting to 64.
fn cases() -> u32 {
    // lint:allow(env-read): test-harness knob (case-count budget), not
    // runtime configuration; documented alongside from_env.
    std::env::var("TREEEMB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn covered_point_is_within_radius_of_its_ball(
        seed in 0u64..100_000,
        x in -500f64..500.0,
        y in -500f64..500.0,
        w in 0.5f64..50.0,
    ) {
        let g = BallGrid::from_seed(2, 4.0 * w, w, seed);
        if let Some(cell) = g.ball_of(&[x, y]) {
            // Reconstruct the ball center: shift + cell * cell-length.
            let center: Vec<f64> = cell
                .iter()
                .zip(g.shift())
                .map(|(&c, &s)| s + c as f64 * 4.0 * w)
                .collect();
            prop_assert!(dist(&center, &[x, y]) <= w * (1.0 + 1e-9));
        }
    }

    #[test]
    fn points_in_same_ball_are_within_diameter(
        seed in 0u64..100_000,
        x in -100f64..100.0,
        y in -100f64..100.0,
        dx in -10f64..10.0,
        dy in -10f64..10.0,
        w in 1.0f64..20.0,
    ) {
        let g = BallGrid::from_seed(2, 4.0 * w, w, seed);
        let p = [x, y];
        let q = [x + dx, y + dy];
        if let (Some(cp), Some(cq)) = (g.ball_of(&p), g.ball_of(&q)) {
            if cp == cq {
                prop_assert!(dist(&p, &q) <= 2.0 * w * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn sequence_assignment_respects_priority(
        seed in 0u64..100_000,
        x in -100f64..100.0,
        y in -100f64..100.0,
    ) {
        let seq = GridSequence::build(2, 2.0, 40, seed);
        if let Some(a) = seq.assign(&[x, y]) {
            for u in 0..a.grid_index as usize {
                prop_assert!(
                    seq.grids()[u].ball_of(&[x, y]).is_none(),
                    "earlier grid {u} covered the point"
                );
            }
        }
    }

    #[test]
    fn grid_cells_partition_space_consistently(
        seed in 0u64..100_000,
        x in -1000f64..1000.0,
        w in 0.1f64..100.0,
    ) {
        // A point strictly inside a cell stays in the same cell under
        // tiny perturbation.
        let g = ShiftedGrid::from_seed(1, w, seed);
        let cell = g.cell_of(&[x]);
        let lo = g.cell_of(&[x - 1e-12 * w]);
        let hi = g.cell_of(&[x + 1e-12 * w]);
        prop_assert!(cell == lo || cell == hi);
    }

    #[test]
    fn hybrid_equals_bucketwise_ball_partitions(
        seed in 0u64..100_000,
        coords in proptest::collection::vec(-50f64..50.0, 6),
    ) {
        // Definition 3: the hybrid assignment IS the tuple of per-bucket
        // ball assignments of the projections.
        let lvl = HybridLevel::new(6, 3, 5.0, 200, seed);
        let p: Vec<f64> = coords;
        if let Some(a) = lvl.assign(&p) {
            prop_assert_eq!(a.buckets.len(), 3);
            for (j, seq) in lvl.sequences().iter().enumerate() {
                let proj = &p[j * 2..(j + 1) * 2];
                let direct = seq.assign(proj).expect("bucket covered in hybrid");
                prop_assert_eq!(&a.buckets[j], &direct);
            }
        }
    }

    #[test]
    fn packed_and_exact_keys_induce_identical_partitions(
        seed in 0u64..100_000,
        bucket_dim in 1usize..4,
        r in 1usize..4,
        w in 0.5f64..20.0,
        probe in 0u64..1000,
    ) {
        // The packed 128-bit key must group points exactly as the
        // materialized per-bucket assignments do, for every geometry.
        let dim = bucket_dim * r;
        let lvl = HybridLevel::new(dim, r, w, 40, seed);
        let point = |t: u64| -> Vec<f64> {
            (0..dim)
                .map(|j| {
                    let u = treeemb_linalg::random::unit_f64(probe ^ 0x9E37, t * 31 + j as u64);
                    (u - 0.5) * 80.0
                })
                .collect()
        };
        let pts: Vec<Vec<f64>> = (0..12).map(point).collect();
        let exact: Vec<_> = pts.iter().map(|p| lvl.assign(p)).collect();
        let packed: Vec<_> = pts.iter().map(|p| lvl.assign_packed(p)).collect();
        for (e, k) in exact.iter().zip(&packed) {
            prop_assert_eq!(e.is_some(), k.is_some());
        }
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if exact[i].is_some() && exact[j].is_some() {
                    prop_assert_eq!(exact[i] == exact[j], packed[i] == packed[j]);
                }
            }
        }
    }

    #[test]
    fn cell_factor_two_covers_dimension_one_completely(
        seed in 0u64..100_000,
        x in -1000f64..1000.0,
        w in 0.5f64..50.0,
    ) {
        // In 1-D with cell = 2w, every point is within w of some vertex.
        let seq = GridSequence::build_with_cell_factor(1, w, 2.0, 1, seed);
        prop_assert!(seq.assign(&[x]).is_some());
    }
}
