//! Replays the checked-in cargo-fuzz corpus (and a deterministic random
//! byte sweep) through the packed-vs-exact parity oracle, so the fuzz
//! harness runs on every `cargo test` even without a fuzzer toolchain.
//!
//! The corpus lives in `fuzz/corpus/packed_vs_exact/` at the workspace
//! root; the actual fuzz target (`fuzz/fuzz_targets/packed_vs_exact.rs`)
//! calls the same `treeemb_partition::fuzzing::check_packed_vs_exact`.

use std::path::PathBuf;
use treeemb_partition::fuzzing::check_packed_vs_exact;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/packed_vs_exact")
}

#[test]
fn checked_in_corpus_replays_clean() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} must exist: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus went missing: only {} entries in {}",
        entries.len(),
        dir.display()
    );
    let mut checked_points = 0usize;
    for path in &entries {
        let data = std::fs::read(path).expect("readable corpus file");
        checked_points += check_packed_vs_exact(&data);
    }
    assert!(
        checked_points >= 50,
        "corpus only exercised {checked_points} points; seeds have degraded"
    );
}

/// SplitMix64 — deterministic byte-string generator for the sweep.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn random_byte_sweep_replays_clean() {
    // 256 deterministic pseudo-random inputs of varied length: a cheap
    // stand-in for a short fuzz run, hitting header parsing, partial
    // points, and all (r, bucket_dim) combinations.
    let mut state = 0xF022_CAFEu64;
    for case in 0..256u64 {
        let len = (splitmix(&mut state) % 96) as usize;
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            data.extend_from_slice(&splitmix(&mut state).to_le_bytes());
        }
        data.truncate(len);
        if !data.is_empty() {
            // Cycle the header bytes so every geometry shape appears.
            data[0] = (case % 4) as u8;
            if data.len() > 1 {
                data[1] = ((case / 4) % 4) as u8;
            }
        }
        check_packed_vs_exact(&data);
    }
}
