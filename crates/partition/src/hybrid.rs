//! Hybrid partitioning (Definition 3) — the paper's core contribution.
//!
//! Dimensions are grouped into `r` contiguous buckets of `d/r`
//! dimensions each. Every bucket runs an independent ball partitioning
//! of the projected points; two points share a hybrid partition iff they
//! share a ball in **every** bucket. `r` interpolates between ball
//! partitioning (`r = 1`) and random shifted grids (`r = d` with radius
//! `ℓ/2`).

use crate::ball::{BallAssignment, BallGrid, GridSequence};
use crate::ids::{PackedHasher, PackedLevelKey, StructuralHash};
use treeemb_linalg::random::mix2;

/// One scale ("level") of hybrid partitioning over `R^d`.
///
/// ```
/// use treeemb_partition::HybridLevel;
/// // d = 4 dimensions in r = 2 buckets, ball radius w = 2.
/// let level = HybridLevel::new(4, 2, 2.0, 200, 42);
/// let a = level.assign(&[1.0, 1.0, 5.0, 5.0]);
/// let b = level.assign(&[1.1, 1.0, 5.0, 5.0]); // 0.1 away
/// if let (Some(a), Some(b)) = (a, b) {
///     // Same partition implies within the diameter bound.
///     if a == b {
///         assert!(0.1 <= level.diameter_bound());
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct HybridLevel {
    dim: usize,
    r: usize,
    bucket_dim: usize,
    w: f64,
    sequences: Vec<GridSequence>,
}

/// A point's assignment at one hybrid level: its ball assignment in each
/// of the `r` buckets. Two points are in the same partition iff their
/// `LevelAssignment`s are equal (Definition 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LevelAssignment {
    /// Per-bucket ball assignments, in bucket order.
    pub buckets: Vec<BallAssignment>,
}

impl LevelAssignment {
    /// Folds this assignment into a structural hash chain (used to form
    /// tree-node ids in the MPC embedding).
    pub fn absorb_into(&self, mut h: StructuralHash) -> StructuralHash {
        for a in &self.buckets {
            h = h.absorb_assignment(a);
        }
        h
    }
}

impl HybridLevel {
    /// Builds a hybrid level with the paper's geometry: per bucket, a
    /// sequence of `grids_per_bucket` ball grids of radius `w` and cell
    /// length `4w`.
    ///
    /// # Panics
    /// Panics unless `r` divides `dim` (callers zero-pad, paper
    /// footnote 3) and parameters are positive.
    pub fn new(dim: usize, r: usize, w: f64, grids_per_bucket: usize, seed: u64) -> Self {
        Self::with_cell_factor(dim, r, w, 4.0, grids_per_bucket, seed)
    }

    /// [`Self::new`] with an explicit ball-grid cell factor (the paper
    /// uses 4; see [`GridSequence::build_with_cell_factor`]).
    pub fn with_cell_factor(
        dim: usize,
        r: usize,
        w: f64,
        factor: f64,
        grids_per_bucket: usize,
        seed: u64,
    ) -> Self {
        assert!(r >= 1 && r <= dim, "need 1 <= r <= dim");
        assert_eq!(dim % r, 0, "r must divide dim (zero-pad first)");
        assert!(w > 0.0);
        let bucket_dim = dim / r;
        let sequences = (0..r)
            .map(|j| {
                GridSequence::build_with_cell_factor(
                    bucket_dim,
                    w,
                    factor,
                    grids_per_bucket,
                    mix2(seed, j as u64),
                )
            })
            .collect();
        Self {
            dim,
            r,
            bucket_dim,
            w,
            sequences,
        }
    }

    /// Scale parameter `w` (ball radius).
    #[must_use]
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Number of buckets `r`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Dimensions per bucket (`d/r`).
    #[must_use]
    pub fn bucket_dim(&self) -> usize {
        self.bucket_dim
    }

    /// Ambient dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-bucket grid sequences.
    pub fn sequences(&self) -> &[GridSequence] {
        &self.sequences
    }

    /// Upper bound on the Euclidean diameter of any partition at this
    /// level: each bucket confines the projection to a ball of diameter
    /// `2w`, so the full diameter is at most `2w·√r` (Lemma 1's second
    /// part).
    pub fn diameter_bound(&self) -> f64 {
        2.0 * self.w * (self.r as f64).sqrt()
    }

    /// Assigns a point to its hybrid partition, or `None` if some
    /// bucket's grid sequence fails to cover it.
    ///
    /// This is the exact-key path: it materializes the per-bucket
    /// lattice cells. The hot loops should prefer [`Self::assign_packed`]
    /// (grouping) or [`Self::absorb_assignment_into`] (node-id chains),
    /// which make the identical covering decisions without allocating.
    pub fn assign(&self, p: &[f64]) -> Option<LevelAssignment> {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        let mut buckets = Vec::with_capacity(self.r);
        for (j, seq) in self.sequences.iter().enumerate() {
            let lo = j * self.bucket_dim;
            let hi = lo + self.bucket_dim;
            buckets.push(seq.assign(&p[lo..hi])?);
        }
        Some(LevelAssignment { buckets })
    }

    /// Allocation-free partition key: hashes the exact token stream of
    /// `assign(p)`'s [`LevelAssignment`] into a 128-bit
    /// [`PackedLevelKey`]. Two points get equal keys iff (w.h.p.) their
    /// exact assignments are equal, so grouping by the packed key
    /// reproduces the exact grouping.
    pub fn assign_packed(&self, p: &[f64]) -> Option<PackedLevelKey> {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        let mut h = PackedHasher::new();
        for (j, seq) in self.sequences.iter().enumerate() {
            let lo = j * self.bucket_dim;
            let proj = &p[lo..lo + self.bucket_dim];
            let u = seq.first_covering(proj)?;
            h.absorb(0xBA11);
            h.absorb(u as u64);
            seq.covering_cell(u, proj, |c| h.absorb_i64(c));
            h.absorb(0xE4D);
        }
        Some(h.key())
    }

    /// Folds `p`'s level assignment into a structural-hash chain with
    /// exactly the token stream of
    /// `assign(p).unwrap().absorb_into(h)` — but without materializing
    /// the assignment. This is the MPC embedder's node-id hot path; the
    /// resulting ids are bit-identical to the exact path's.
    pub fn absorb_assignment_into(&self, p: &[f64], h: StructuralHash) -> Option<StructuralHash> {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        let mut cur = h;
        for (j, seq) in self.sequences.iter().enumerate() {
            let lo = j * self.bucket_dim;
            let proj = &p[lo..lo + self.bucket_dim];
            let u = seq.first_covering(proj)?;
            cur = cur.absorb(0xBA11).absorb(u as u64);
            seq.covering_cell(u, proj, |c| cur = cur.absorb_i64(c));
            cur = cur.absorb(0xE4D);
        }
        Some(cur)
    }

    /// Total words the level's grids occupy when broadcast (Lemma 8's
    /// space accounting).
    pub fn words(&self) -> usize {
        self.sequences.iter().map(GridSequence::words).sum()
    }
}

/// The grid-equivalent degenerate hybrid: `r = d`, one grid per bucket,
/// balls of radius `cell/2` (which tile each 1-D bucket completely).
/// Included to demonstrate the `r = d` ⇔ random-shifted-grid claim of
/// §3 and as the Arora baseline inside the same code path.
#[derive(Debug, Clone)]
pub struct GridLikeLevel {
    grids: Vec<BallGrid>,
    width: f64,
}

impl GridLikeLevel {
    /// One 1-D full-cover ball grid per dimension, cell width `width`.
    pub fn new(dim: usize, width: f64, seed: u64) -> Self {
        assert!(width > 0.0);
        let grids = (0..dim)
            .map(|j| BallGrid::from_seed(1, width, width / 2.0, mix2(seed, j as u64)))
            .collect();
        Self { grids, width }
    }

    /// Cell width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Assigns a point; total coverage means this never returns `None`
    /// for finite coordinates.
    pub fn assign(&self, p: &[f64]) -> LevelAssignment {
        assert_eq!(p.len(), self.grids.len());
        let buckets = p
            .iter()
            .zip(&self.grids)
            .map(|(x, g)| {
                let cell = g
                    .ball_of(std::slice::from_ref(x))
                    .expect("radius w/2 tiles the line");
                BallAssignment {
                    grid_index: 0,
                    cell,
                }
            })
            .collect();
        LevelAssignment { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::grids_needed;
    use treeemb_geom::metrics::dist;

    #[test]
    fn r_must_divide_dim() {
        let ok = HybridLevel::new(8, 4, 1.0, 4, 1);
        assert_eq!(ok.bucket_dim(), 2);
        let res = std::panic::catch_unwind(|| HybridLevel::new(8, 3, 1.0, 4, 1));
        assert!(res.is_err());
    }

    #[test]
    fn assignment_is_deterministic() {
        let lvl = HybridLevel::new(6, 2, 2.0, 64, 5);
        let p = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(lvl.assign(&p), lvl.assign(&p));
    }

    #[test]
    fn same_partition_iff_equal_in_every_bucket() {
        // Construct two points that differ wildly in the second bucket:
        // they can never share a partition even if bucket 1 matches.
        let lvl = HybridLevel::new(4, 2, 1.0, grids_needed(2, 100, 0.001), 9);
        let p = [0.3, 0.3, 0.0, 0.0];
        let q = [0.3, 0.3, 50.0, 50.0];
        if let (Some(ap), Some(aq)) = (lvl.assign(&p), lvl.assign(&q)) {
            assert_eq!(
                ap.buckets[0], aq.buckets[0],
                "identical first-bucket projections"
            );
            assert_ne!(ap, aq, "distant second bucket must separate them");
        } else {
            panic!("coverage failed with Lemma-7 grid budget");
        }
    }

    #[test]
    fn partition_diameter_respects_bound() {
        // Points in the same partition must be within 2w sqrt(r).
        let w = 3.0;
        let lvl = HybridLevel::new(4, 2, w, grids_needed(2, 1000, 0.001), 11);
        let mut groups: std::collections::HashMap<LevelAssignment, Vec<Vec<f64>>> =
            std::collections::HashMap::new();
        for i in 0..400 {
            let p = vec![
                (i % 20) as f64 * 0.9,
                (i / 20) as f64 * 0.9,
                (i % 7) as f64,
                (i % 13) as f64,
            ];
            if let Some(a) = lvl.assign(&p) {
                groups.entry(a).or_default().push(p);
            }
        }
        let bound = lvl.diameter_bound() + 1e-9;
        for members in groups.values() {
            for a in members {
                for b in members {
                    assert!(dist(a, b) <= bound, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn r_equals_one_is_plain_ball_partitioning() {
        let lvl = HybridLevel::new(3, 1, 2.0, 128, 13);
        let p = [1.0, 2.0, 3.0];
        let direct = lvl.sequences()[0].assign(&p);
        let hybrid = lvl
            .assign(&p)
            .map(|a| a.buckets.into_iter().next().unwrap());
        assert_eq!(direct, hybrid);
    }

    #[test]
    fn grid_like_level_always_covers() {
        let lvl = GridLikeLevel::new(5, 2.0, 3);
        let a = lvl.assign(&[0.1, -7.3, 100.0, 2.5, 0.0]);
        assert_eq!(a.buckets.len(), 5);
    }

    #[test]
    fn grid_like_matches_shifted_grid_grouping() {
        // The r = d, radius w/2 hybrid induces the same partition as some
        // shifted grid: verify grouping consistency on many random pairs.
        use treeemb_linalg::random::unit_f64;
        let w = 1.0;
        let lvl = GridLikeLevel::new(2, w, 77);
        for t in 0..500u64 {
            let p = [unit_f64(1, t) * 10.0, unit_f64(2, t) * 10.0];
            let q = [
                p[0] + unit_f64(3, t) * 0.4 - 0.2,
                p[1] + unit_f64(4, t) * 0.4 - 0.2,
            ];
            let same = lvl.assign(&p) == lvl.assign(&q);
            // Same iff per-axis nearest-vertex matches; cross-check with
            // an explicit interval computation per axis.
            let mut expect = true;
            for axis in 0..2 {
                let g = &lvl.grids[axis];
                let cp = g.ball_of(&[p[axis]]).unwrap();
                let cq = g.ball_of(&[q[axis]]).unwrap();
                if cp != cq {
                    expect = false;
                }
            }
            assert_eq!(same, expect, "trial {t}");
        }
    }

    #[test]
    fn packed_key_equality_matches_exact_assignment_equality() {
        let lvl = HybridLevel::new(4, 2, 2.5, grids_needed(2, 1000, 0.001), 31);
        let points: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    (i % 11) as f64 * 0.8,
                    (i / 11) as f64 * 0.8,
                    (i % 5) as f64 * 2.0,
                    (i % 3) as f64 * 2.0,
                ]
            })
            .collect();
        let exact: Vec<_> = points.iter().map(|p| lvl.assign(p)).collect();
        let packed: Vec<_> = points.iter().map(|p| lvl.assign_packed(p)).collect();
        for (e, k) in exact.iter().zip(&packed) {
            assert_eq!(e.is_some(), k.is_some(), "coverage must agree");
        }
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if exact[i].is_some() && exact[j].is_some() {
                    assert_eq!(
                        exact[i] == exact[j],
                        packed[i] == packed[j],
                        "pair ({i},{j}) grouped differently"
                    );
                }
            }
        }
    }

    #[test]
    fn absorb_assignment_into_matches_exact_chain() {
        let lvl = HybridLevel::new(6, 3, 1.5, 300, 17);
        let h0 = StructuralHash::root().absorb(9);
        for i in 0..80 {
            let p = vec![
                i as f64 * 0.4,
                1.0,
                (i % 7) as f64,
                -0.5 * i as f64,
                2.0,
                (i % 4) as f64,
            ];
            let exact = lvl.assign(&p).map(|a| a.absorb_into(h0));
            let streamed = lvl.absorb_assignment_into(&p, h0);
            assert_eq!(exact, streamed, "point {i}");
        }
    }

    #[test]
    fn words_sums_buckets() {
        let lvl = HybridLevel::new(8, 2, 1.0, 10, 1);
        // Each bucket: 10 grids * (4 dims + 2 words) = 60; two buckets.
        assert_eq!(lvl.words(), 120);
    }

    #[test]
    fn uncovered_point_yields_none_with_tiny_budget() {
        // A single grid in 3-D covers ~ V_3/64 ~ 6.5% of space: some probe
        // point will be uncovered.
        let lvl = HybridLevel::new(3, 1, 1.0, 1, 40);
        let mut missed = false;
        for i in 0..200 {
            let p = [i as f64 * 0.37, i as f64 * 0.73, i as f64 * 0.11];
            if lvl.assign(&p).is_none() {
                missed = true;
                break;
            }
        }
        assert!(missed, "one grid should leave gaps in 3-D");
    }
}
