//! Random shifted grids (Definition 1; Arora's partitioning).

use treeemb_geom::PointSet;

/// A grid of hypercubic cells with side `width`, translated by a random
/// shift vector drawn uniformly from `[0, width)^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftedGrid {
    width: f64,
    shift: Vec<f64>,
}

impl ShiftedGrid {
    /// Constructs a grid with an explicit shift (each component must lie
    /// in `[0, width)`).
    pub fn new(width: f64, shift: Vec<f64>) -> Self {
        assert!(width > 0.0, "cell width must be positive");
        assert!(
            shift.iter().all(|&s| (0.0..width).contains(&s)),
            "shift components must lie in [0, width)"
        );
        Self { width, shift }
    }

    /// Derives the grid's shift from a counter-based random stream, so
    /// identical `(seed, dim, width)` always produce the same grid on
    /// any machine.
    pub fn from_seed(dim: usize, width: f64, seed: u64) -> Self {
        let shift = (0..dim)
            .map(|j| treeemb_linalg::random::unit_f64(seed, j as u64) * width)
            .collect();
        Self::new(width, shift)
    }

    /// Cell width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.shift.len()
    }

    /// Integer cell coordinates containing point `p`:
    /// `⌊(p_j − shift_j) / width⌋` per axis.
    pub fn cell_of(&self, p: &[f64]) -> Vec<i64> {
        assert_eq!(p.len(), self.dim(), "point dimension mismatch");
        p.iter()
            .zip(&self.shift)
            .map(|(x, s)| ((x - s) / self.width).floor() as i64)
            .collect()
    }
}

/// Flat grid partitioning of a point set: returns, per point, a dense
/// partition index (points share an index iff they share a grid cell).
pub fn grid_partition(ps: &PointSet, width: f64, seed: u64) -> Vec<usize> {
    let grid = ShiftedGrid::from_seed(ps.dim(), width, seed);
    let mut table: std::collections::HashMap<Vec<i64>, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(ps.len());
    for p in ps.iter() {
        let cell = grid.cell_of(p);
        let next = table.len();
        out.push(*table.entry(cell).or_insert(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_respects_shift() {
        let g = ShiftedGrid::new(2.0, vec![0.5, 1.5]);
        assert_eq!(g.cell_of(&[0.0, 0.0]), vec![-1, -1]);
        assert_eq!(g.cell_of(&[0.5, 1.5]), vec![0, 0]);
        assert_eq!(g.cell_of(&[2.4, 3.4]), vec![0, 0]);
        assert_eq!(g.cell_of(&[2.5, 3.5]), vec![1, 1]);
    }

    #[test]
    fn from_seed_is_deterministic() {
        let a = ShiftedGrid::from_seed(4, 3.0, 9);
        let b = ShiftedGrid::from_seed(4, 3.0, 9);
        assert_eq!(a, b);
        assert_ne!(a, ShiftedGrid::from_seed(4, 3.0, 10));
    }

    #[test]
    fn shift_components_in_range() {
        for seed in 0..20 {
            let g = ShiftedGrid::from_seed(6, 5.0, seed);
            assert!(g.shift.iter().all(|&s| (0.0..5.0).contains(&s)));
        }
    }

    #[test]
    fn close_points_usually_share_cells() {
        // Two points at distance 0.1 with cell width 10 are separated with
        // probability <= d * 0.1/10 = 2%; over 200 seeds expect few cuts.
        let p = [5.0, 5.0];
        let q = [5.1, 5.0];
        let mut cuts = 0;
        for seed in 0..200 {
            let g = ShiftedGrid::from_seed(2, 10.0, seed);
            if g.cell_of(&p) != g.cell_of(&q) {
                cuts += 1;
            }
        }
        assert!(cuts < 15, "cuts = {cuts}");
    }

    #[test]
    fn grid_partition_groups_by_cell() {
        let ps = PointSet::from_rows(&[vec![1.0, 1.0], vec![1.1, 1.1], vec![100.0, 100.0]]);
        let parts = grid_partition(&ps, 10.0, 3);
        assert_eq!(parts[0], parts[1]);
        assert_ne!(parts[0], parts[2]);
    }

    #[test]
    fn partition_indices_are_dense() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![50.0], vec![0.2]]);
        let parts = grid_partition(&ps, 5.0, 1);
        let max = *parts.iter().max().unwrap();
        assert!(max < ps.len());
        assert_eq!(parts[0], parts[2]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = ShiftedGrid::new(0.0, vec![]);
    }
}
