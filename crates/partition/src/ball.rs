//! Ball partitioning (Definition 2; Charikar et al.).
//!
//! A *grid of balls* places a ball of radius `w` at every vertex of a
//! randomly shifted lattice of cell length `ℓ = 4w`. One grid leaves
//! gaps, so a **sequence** of independently shifted grids is drawn
//! (`BuildGrids` in Algorithm 1) and each point joins the first ball
//! that covers it.

use treeemb_linalg::random;

/// One grid of balls: lattice `shift + ℓ·Z^d`, ball radius `w = ℓ/4`
/// by the paper's convention (any `w ≤ ℓ/2` keeps balls disjoint).
#[derive(Debug, Clone, PartialEq)]
pub struct BallGrid {
    cell: f64,
    /// Precomputed `1/cell`: the per-coordinate lattice snap in
    /// [`Self::ball_of`] is a multiply instead of a divide.
    inv_cell: f64,
    radius: f64,
    shift: Vec<f64>,
}

impl BallGrid {
    /// Constructs a ball grid with an explicit shift in `[0, cell)^d`.
    pub fn new(cell: f64, radius: f64, shift: Vec<f64>) -> Self {
        assert!(cell > 0.0 && radius > 0.0, "scales must be positive");
        assert!(
            2.0 * radius <= cell + 1e-12,
            "balls of radius {radius} overlap at cell length {cell}"
        );
        Self {
            cell,
            inv_cell: 1.0 / cell,
            radius,
            shift,
        }
    }

    /// Derives the shift from a counter stream.
    pub fn from_seed(dim: usize, cell: f64, radius: f64, seed: u64) -> Self {
        let shift = (0..dim)
            .map(|j| random::unit_f64(seed, j as u64) * cell)
            .collect();
        Self::new(cell, radius, shift)
    }

    /// Ball radius `w`.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Lattice cell length `ℓ`.
    #[must_use]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.shift.len()
    }

    /// The lattice shift vector (each component in `[0, cell)`). Exposed
    /// so the MPC embedder can broadcast grids as raw words (Lemma 8's
    /// space accounting).
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }

    /// If `p` lies within radius of its nearest lattice vertex, returns
    /// that vertex's integer lattice coordinates.
    pub fn ball_of(&self, p: &[f64]) -> Option<Vec<i64>> {
        debug_assert_eq!(p.len(), self.dim());
        let mut sq = 0.0;
        let mut coords = Vec::with_capacity(p.len());
        let r2 = self.radius * self.radius;
        for (x, s) in p.iter().zip(&self.shift) {
            let t = (x - s) * self.inv_cell;
            let m = t.round();
            let e = (t - m) * self.cell;
            sq += e * e;
            if sq > r2 {
                return None; // early exit: already outside every ball
            }
            coords.push(m as i64);
        }
        Some(coords)
    }
}

/// Assignment of a point under a grid sequence: the index of the first
/// covering grid and the lattice coordinates of the covering ball.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BallAssignment {
    /// Index of the first grid whose ball covers the point.
    pub grid_index: u32,
    /// Lattice coordinates of the covering ball within that grid.
    pub cell: Vec<i64>,
}

/// An ordered sequence of independently shifted ball grids at one scale
/// (the output of `BuildGrids`).
///
/// Besides the per-grid [`BallGrid`] objects (the broadcastable form),
/// the sequence keeps every shift in one flat structure-of-arrays buffer
/// so the first-covering-grid scan walks memory linearly instead of
/// chasing one heap allocation per grid.
#[derive(Debug, Clone)]
pub struct GridSequence {
    grids: Vec<BallGrid>,
    dim: usize,
    cell: f64,
    inv_cell: f64,
    radius: f64,
    /// Grid `u`'s shift occupies `shifts[u*dim .. (u+1)*dim]`.
    shifts: Vec<f64>,
}

impl GridSequence {
    /// Builds `count` grids of cell length `4w`, radius `w` (the paper's
    /// Definition-2 geometry), with shifts derived from `(seed, grid
    /// index)` counter streams.
    pub fn build(dim: usize, w: f64, count: usize, seed: u64) -> Self {
        Self::build_with_cell_factor(dim, w, 4.0, count, seed)
    }

    /// Builds grids with cell length `factor·w` for radius `w`. The
    /// paper fixes `factor = 4`; smaller factors (≥ 2, keeping balls
    /// disjoint) cover more per grid (`V_m/factor^m`) at the price of a
    /// higher ball-boundary density — the E13 ablation quantifies the
    /// trade-off.
    pub fn build_with_cell_factor(
        dim: usize,
        w: f64,
        factor: f64,
        count: usize,
        seed: u64,
    ) -> Self {
        assert!(count > 0, "need at least one grid");
        assert!(factor >= 2.0, "balls must stay disjoint (factor >= 2)");
        let grids: Vec<BallGrid> = (0..count)
            .map(|u| BallGrid::from_seed(dim, factor * w, w, random::mix2(seed, u as u64)))
            .collect();
        let mut shifts = Vec::with_capacity(count * dim);
        for g in &grids {
            shifts.extend_from_slice(g.shift());
        }
        Self {
            dim,
            cell: grids[0].cell(),
            inv_cell: 1.0 / grids[0].cell(),
            radius: grids[0].radius(),
            shifts,
            grids,
        }
    }

    /// Number of grids (`U`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// True when the sequence holds no grids. The constructors reject
    /// `count == 0`, so this is always `false` for a built sequence; it
    /// exists to satisfy the `len`/`is_empty` API convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Ball radius `w` of the sequence.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The grids, in priority order.
    #[must_use]
    pub fn grids(&self) -> &[BallGrid] {
        &self.grids
    }

    /// Index of the first grid whose ball covers `p`, scanning the flat
    /// shift buffer cache-linearly. Shares `ball_of`'s arithmetic
    /// exactly (reciprocal multiply, same operation order), so it agrees
    /// with [`Self::assign`] bit for bit.
    #[must_use]
    pub fn first_covering(&self, p: &[f64]) -> Option<u32> {
        debug_assert_eq!(p.len(), self.dim);
        let r2 = self.radius * self.radius;
        for (u, shift) in self.shifts.chunks_exact(self.dim.max(1)).enumerate() {
            let mut sq = 0.0;
            let mut covered = true;
            for (x, s) in p.iter().zip(shift) {
                let t = (x - s) * self.inv_cell;
                let e = (t - t.round()) * self.cell;
                sq += e * e;
                if sq > r2 {
                    covered = false;
                    break; // early exit: outside every ball of this grid
                }
            }
            if covered {
                return Some(u as u32);
            }
        }
        None
    }

    /// Streams the lattice coordinates of `p`'s ball in grid `u` (as
    /// returned by [`Self::first_covering`]) without allocating. Must
    /// only be called for a covering grid.
    pub fn covering_cell(&self, u: u32, p: &[f64], mut emit: impl FnMut(i64)) {
        let shift = &self.shifts[u as usize * self.dim..(u as usize + 1) * self.dim];
        for (x, s) in p.iter().zip(shift) {
            let m = ((x - s) * self.inv_cell).round();
            emit(m as i64);
        }
    }

    /// Assigns `p` to the first covering ball, or `None` if no grid in
    /// the sequence covers it (a coverage failure; see Lemma 7 for how
    /// large `U` must be to make this improbable).
    pub fn assign(&self, p: &[f64]) -> Option<BallAssignment> {
        let u = self.first_covering(p)?;
        let mut cell = Vec::with_capacity(self.dim);
        self.covering_cell(u, p, |c| cell.push(c));
        Some(BallAssignment {
            grid_index: u,
            cell,
        })
    }

    /// Words of memory this sequence occupies when broadcast in MPC
    /// (one shift vector per grid).
    #[must_use]
    pub fn words(&self) -> usize {
        self.grids.iter().map(|g| g.dim() + 2).sum()
    }
}

/// Paper-name alias for [`GridSequence::build`]: Algorithm 1's
/// `BuildGrids(P^{(j)}, r, U)` subroutine builds the grid sequence a
/// bucket's ball partitioning draws from.
pub fn build_grids(dim: usize, w: f64, u: usize, seed: u64) -> GridSequence {
    GridSequence::build(dim, w, u, seed)
}

/// Paper-name alias for sequence assignment: Algorithm 1's
/// `BallPart(P^{(j)}, G)` assigns each projected point to its first
/// covering ball; `None` entries are coverage failures ("if any ball
/// partitionings failed, halt and report failure").
pub fn ball_part(
    points: &treeemb_geom::PointSet,
    grids: &GridSequence,
) -> Vec<Option<BallAssignment>> {
    points.iter().map(|p| grids.assign(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_grids_and_ball_part_paper_aliases() {
        let ps = treeemb_geom::PointSet::from_rows(&[vec![1.0, 2.0], vec![50.0, 9.0]]);
        let grids = build_grids(2, 2.0, 100, 5);
        let assignments = ball_part(&ps, &grids);
        assert_eq!(assignments.len(), 2);
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(*a, grids.assign(ps.point(i)));
        }
    }

    #[test]
    fn ball_of_detects_coverage() {
        // Unshifted 1-D grid: cells of length 4, balls of radius 1 at 0, 4, 8...
        let g = BallGrid::new(4.0, 1.0, vec![0.0]);
        assert_eq!(g.ball_of(&[0.5]), Some(vec![0]));
        assert_eq!(g.ball_of(&[3.6]), Some(vec![1]));
        assert_eq!(g.ball_of(&[2.0]), None, "midpoint is uncovered");
        assert_eq!(g.ball_of(&[8.4]), Some(vec![2]));
    }

    #[test]
    fn ball_of_euclidean_not_linf() {
        // Point at (0.9, 0.9): within 1 of origin in l-inf but not l2.
        let g = BallGrid::new(4.0, 1.0, vec![0.0, 0.0]);
        assert_eq!(g.ball_of(&[0.9, 0.0]), Some(vec![0, 0]));
        assert_eq!(g.ball_of(&[0.9, 0.9]), None);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_balls_rejected() {
        let _ = BallGrid::new(1.0, 0.6, vec![0.0]);
    }

    #[test]
    fn sequence_assign_prefers_earliest_grid() {
        let seq = GridSequence::build(2, 1.0, 50, 123);
        let p = [10.3, -4.7];
        if let Some(a) = seq.assign(&p) {
            // Every earlier grid must not cover p.
            for u in 0..a.grid_index {
                assert!(seq.grids()[u as usize].ball_of(&p).is_none());
            }
            assert!(seq.grids()[a.grid_index as usize].ball_of(&p).is_some());
        }
    }

    #[test]
    fn enough_grids_cover_low_dimensions() {
        // In 2-D the per-grid cover probability is pi/16 ~ 0.196, so 100
        // grids miss a point with probability ~ 3e-10.
        let seq = GridSequence::build(2, 2.0, 100, 7);
        for i in 0..100 {
            let p = [i as f64 * 1.37, (i * i % 19) as f64];
            assert!(seq.assign(&p).is_some(), "point {i} uncovered");
        }
    }

    #[test]
    fn coverage_rate_matches_ball_volume_fraction() {
        // One grid covers a random point with probability
        // V_d(w) / (4w)^d; in 2-D that is pi w^2 / 16 w^2 = pi/16.
        let trials = 4000;
        let mut covered = 0;
        for t in 0..trials {
            let g = BallGrid::from_seed(2, 4.0, 1.0, random::mix2(55, t as u64));
            // Fixed probe point: randomness of the shift is equivalent to
            // randomness of the point.
            if g.ball_of(&[0.0, 0.0]).is_some() {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        let expect = std::f64::consts::PI / 16.0;
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs {expect}");
    }

    #[test]
    fn nearby_points_share_balls_when_covered_deep() {
        let seq = GridSequence::build(3, 5.0, 200, 99);
        let p = [1.0, 2.0, 3.0];
        let q = [1.05, 2.0, 3.0];
        let (ap, aq) = (seq.assign(&p), seq.assign(&q));
        if let (Some(ap), Some(aq)) = (ap, aq) {
            if ap.grid_index == aq.grid_index {
                assert_eq!(
                    ap.cell, aq.cell,
                    "same grid must give same ball for close points"
                );
            }
        }
    }

    #[test]
    fn words_counts_broadcast_size() {
        let seq = GridSequence::build(4, 1.0, 10, 1);
        assert_eq!(seq.words(), 10 * 6);
    }

    #[test]
    fn first_covering_matches_per_grid_scan() {
        let seq = GridSequence::build(3, 2.0, 60, 42);
        for i in 0..200 {
            let p = [i as f64 * 0.53, (i % 17) as f64 * 1.1, -(i as f64) * 0.21];
            let slow = seq
                .grids()
                .iter()
                .position(|g| g.ball_of(&p).is_some())
                .map(|u| u as u32);
            assert_eq!(seq.first_covering(&p), slow, "point {i}");
        }
    }

    #[test]
    fn covering_cell_streams_ball_of_coords() {
        let seq = GridSequence::build(4, 1.5, 80, 9);
        for i in 0..100 {
            let p = [i as f64 * 0.3, 1.0, (i % 5) as f64, -2.5];
            if let Some(u) = seq.first_covering(&p) {
                let expect = seq.grids()[u as usize].ball_of(&p).unwrap();
                let mut got = Vec::new();
                seq.covering_cell(u, &p, |c| got.push(c));
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn sequences_differ_across_seeds() {
        let a = GridSequence::build(2, 1.0, 5, 1);
        let b = GridSequence::build(2, 1.0, 5, 2);
        assert_ne!(a.grids()[0], b.grids()[0]);
    }
}
