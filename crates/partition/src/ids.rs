//! Stable structural identifiers for partitions and tree nodes.
//!
//! The MPC embedding (Algorithm 2) lets every machine compute its
//! points' root-to-leaf paths independently; nodes discovered by
//! different machines must agree on an identifier without communication.
//! We derive 64-bit ids by hashing the *structure* (level, per-bucket
//! ball assignments, parent chain) with a fixed mixing function — any
//! machine hashing the same structure gets the same id.
//!
//! Collisions: with `≈ n·logΔ` distinct nodes and 64-bit ids the
//! collision probability is `≲ n²log²Δ / 2^64`, far below the
//! `1/poly(n)` failure budget Theorem 1 already tolerates.

use crate::ball::BallAssignment;
use treeemb_linalg::random::mix2;

/// Running structural hash (Fowler–Noll–Vo-style chaining over the
/// SplitMix finalizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructuralHash(pub u64);

impl StructuralHash {
    /// Seed hash for a new chain.
    pub fn root() -> Self {
        StructuralHash(0x7265_6562_6D48_5354) // "reebmHST"
    }

    /// Absorbs one 64-bit token.
    #[inline]
    pub fn absorb(self, token: u64) -> Self {
        StructuralHash(mix2(self.0, token))
    }

    /// Absorbs a signed lattice coordinate.
    #[inline]
    pub fn absorb_i64(self, token: i64) -> Self {
        self.absorb(token as u64)
    }

    /// Absorbs a ball assignment (grid index + lattice cell).
    pub fn absorb_assignment(self, a: &BallAssignment) -> Self {
        let mut h = self.absorb(0xBA11).absorb(a.grid_index as u64);
        for &c in &a.cell {
            h = h.absorb_i64(c);
        }
        h.absorb(0xE4D) // assignment terminator
    }

    /// The digest.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Root constant of the second (high) lane of [`PackedLevelKey`]. Any
/// constant other than [`StructuralHash::root`]'s works: the two SplitMix
/// chains start from different states, so their collisions are
/// independent for all practical purposes.
pub const PACKED_HI_ROOT: u64 = 0x5041_434B_4C4B_4559; // "PACKLKEY"

/// An allocation-free hybrid-partition key: two independent 64-bit
/// structural-hash lanes over the same token stream, giving ~128 bits of
/// collision resistance. Two points receive equal keys iff (w.h.p.)
/// their exact per-bucket ball assignments are equal, so grouping by
/// `PackedLevelKey` reproduces the exact `LevelAssignment` grouping
/// without materializing per-bucket `Vec<i64>` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedLevelKey {
    /// Low lane: the [`StructuralHash::root`] chain.
    pub lo: u64,
    /// High lane: the [`PACKED_HI_ROOT`] chain.
    pub hi: u64,
}

/// Running two-lane hasher producing a [`PackedLevelKey`]. Absorbing the
/// same tokens as a [`StructuralHash`] chain keeps the low lane equal to
/// that chain's digest.
#[derive(Debug, Clone, Copy)]
pub struct PackedHasher {
    lo: StructuralHash,
    hi: StructuralHash,
}

impl Default for PackedHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl PackedHasher {
    /// Seed hasher for a new key.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lo: StructuralHash::root(),
            hi: StructuralHash(PACKED_HI_ROOT),
        }
    }

    /// Absorbs one 64-bit token into both lanes.
    #[inline]
    pub fn absorb(&mut self, token: u64) {
        self.lo = self.lo.absorb(token);
        self.hi = self.hi.absorb(token);
    }

    /// Absorbs a signed lattice coordinate into both lanes.
    #[inline]
    pub fn absorb_i64(&mut self, token: i64) {
        self.absorb(token as u64);
    }

    /// The 128-bit digest.
    #[must_use]
    pub fn key(&self) -> PackedLevelKey {
        PackedLevelKey {
            lo: self.lo.value(),
            hi: self.hi.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(grid: u32, cell: &[i64]) -> BallAssignment {
        BallAssignment {
            grid_index: grid,
            cell: cell.to_vec(),
        }
    }

    #[test]
    fn equal_structures_hash_equal() {
        let a = StructuralHash::root()
            .absorb(3)
            .absorb_assignment(&asg(1, &[2, -5]));
        let b = StructuralHash::root()
            .absorb(3)
            .absorb_assignment(&asg(1, &[2, -5]));
        assert_eq!(a, b);
    }

    #[test]
    fn different_grid_indices_differ() {
        let a = StructuralHash::root().absorb_assignment(&asg(1, &[0]));
        let b = StructuralHash::root().absorb_assignment(&asg(2, &[0]));
        assert_ne!(a, b);
    }

    #[test]
    fn coordinate_order_matters() {
        let a = StructuralHash::root().absorb_assignment(&asg(0, &[1, 2]));
        let b = StructuralHash::root().absorb_assignment(&asg(0, &[2, 1]));
        assert_ne!(a, b);
    }

    #[test]
    fn chain_is_prefix_sensitive() {
        let a = StructuralHash::root().absorb(1).absorb(2);
        let b = StructuralHash::root().absorb(2).absorb(1);
        assert_ne!(a, b);
    }

    #[test]
    fn negative_coordinates_are_distinct() {
        let a = StructuralHash::root().absorb_assignment(&asg(0, &[-1]));
        let b = StructuralHash::root().absorb_assignment(&asg(0, &[1]));
        assert_ne!(a, b);
    }

    #[test]
    fn packed_low_lane_tracks_structural_chain() {
        let mut p = PackedHasher::new();
        p.absorb(0xBA11);
        p.absorb(7);
        p.absorb_i64(-3);
        p.absorb(0xE4D);
        let single = StructuralHash::root()
            .absorb(0xBA11)
            .absorb(7)
            .absorb_i64(-3)
            .absorb(0xE4D);
        assert_eq!(p.key().lo, single.value());
    }

    #[test]
    fn packed_lanes_diverge() {
        let mut p = PackedHasher::new();
        p.absorb(1);
        let k = p.key();
        assert_ne!(k.lo, k.hi, "lanes must evolve independently");
    }

    #[test]
    fn no_trivial_length_extension_confusion() {
        // [1] followed by [2] vs [1, 2] in one assignment: the END marker
        // separates assignments.
        let a = StructuralHash::root()
            .absorb_assignment(&asg(0, &[1]))
            .absorb_assignment(&asg(0, &[2]));
        let b = StructuralHash::root().absorb_assignment(&asg(0, &[1, 2]));
        assert_ne!(a, b);
    }
}
