//! Monte-Carlo estimators for the paper's probabilistic lemmas.
//!
//! * [`hybrid_cut_probability`] — Lemma 1/3: the probability two points
//!   are separated at scale `w` is `O(√d·‖p−q‖/w)`, independent of `r`;
//! * [`grid_cut_probability`] — the analogous quantity for random
//!   shifted grids (the Arora baseline);
//! * [`equator_band_probability`] — Lemmas 4/5: random unit vectors are
//!   unlikely to land near the equator.

use crate::grid::ShiftedGrid;
use crate::hybrid::HybridLevel;
use treeemb_linalg::random::mix2;

/// Estimates the probability that `p` and `q` are assigned to different
/// partitions by one draw of an `r`-bucket hybrid partitioning at scale
/// `w`, over `trials` independent draws.
///
/// A trial in which either point is left uncovered counts as a cut (the
/// grid budget should be chosen to make that rare; see
/// [`crate::coverage::grids_needed`]).
pub fn hybrid_cut_probability(
    p: &[f64],
    q: &[f64],
    r: usize,
    w: f64,
    grids_per_bucket: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert_eq!(p.len(), q.len());
    let d = p.len();
    let mut cuts = 0usize;
    for t in 0..trials {
        let lvl = HybridLevel::new(d, r, w, grids_per_bucket, mix2(seed, t as u64));
        match (lvl.assign(p), lvl.assign(q)) {
            (Some(a), Some(b)) if a == b => {}
            _ => cuts += 1,
        }
    }
    cuts as f64 / trials as f64
}

/// Estimates the probability that `p` and `q` land in different cells of
/// a random shifted grid of width `w`.
pub fn grid_cut_probability(p: &[f64], q: &[f64], w: f64, trials: usize, seed: u64) -> f64 {
    assert_eq!(p.len(), q.len());
    let d = p.len();
    let mut cuts = 0usize;
    for t in 0..trials {
        let g = ShiftedGrid::from_seed(d, w, mix2(seed, t as u64));
        if g.cell_of(p) != g.cell_of(q) {
            cuts += 1;
        }
    }
    cuts as f64 / trials as f64
}

/// The analytic bound of Lemma 1: `√d · ‖p−q‖ / w` (up to the `O(·)`
/// constant, which experiments chart empirically).
pub fn lemma1_bound(d: usize, dist: f64, w: f64) -> f64 {
    (d as f64).sqrt() * dist / w
}

/// Largest Euclidean distance observed between two points sharing a
/// hybrid partition — the empirical counterpart of Lemma 1's
/// `O(√r·w)` diameter bound ([`HybridLevel::diameter_bound`] is `2√r·w`).
/// Returns 0.0 when no two covered points share a partition.
pub fn empirical_partition_diameter(points: &[Vec<f64>], level: &HybridLevel) -> f64 {
    let mut groups: std::collections::HashMap<_, Vec<usize>> = std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        if let Some(a) = level.assign(p) {
            groups.entry(a).or_default().push(i);
        }
    }
    let mut worst: f64 = 0.0;
    for members in groups.values() {
        for (k, &a) in members.iter().enumerate() {
            for &b in &members[k + 1..] {
                worst = worst.max(treeemb_geom::metrics::dist(&points[a], &points[b]));
            }
        }
    }
    worst
}

/// Estimates `Pr[|u_1| ≤ D/(2w)]` for `u` uniform on the unit sphere
/// (`Lemma 4`) or the unit ball (`Lemma 5`), via `trials` samples.
pub fn equator_band_probability(
    d: usize,
    band_half_width: f64,
    from_ball: bool,
    trials: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let v = if from_ball {
            treeemb_geom::sphere::unit_ball(&mut rng, d)
        } else {
            treeemb_geom::sphere::unit_sphere(&mut rng, d)
        };
        if v[0].abs() <= band_half_width {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::grids_needed;

    #[test]
    fn cut_probability_scales_inversely_with_w() {
        let p = [0.0, 0.0];
        let q = [1.0, 0.0];
        let u = grids_needed(1, 100, 0.001);
        let near = hybrid_cut_probability(&p, &q, 2, 8.0, u, 400, 1);
        let far = hybrid_cut_probability(&p, &q, 2, 64.0, u, 400, 2);
        assert!(far < near, "larger scale must cut less: {far} vs {near}");
    }

    #[test]
    fn cut_probability_roughly_independent_of_r_lemma1() {
        // d = 4, ||p-q|| = 1, w = 16: compare r = 1, 2, 4.
        let p = [0.0; 4];
        let mut q = [0.0; 4];
        q[0] = 1.0;
        let trials = 600;
        let pr: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&r| {
                let m = 4 / r;
                let u = grids_needed(m, 1000, 0.001);
                hybrid_cut_probability(&p, &q, r, 16.0, u, trials, 7 + r as u64)
            })
            .collect();
        // All within a constant factor of each other (Lemma 1 says the
        // bound is independent of r; empirical values fluctuate).
        let max = pr.iter().cloned().fold(0.0, f64::max);
        let min = pr.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.0, "never cut at all?");
        assert!(max / min.max(1e-3) < 5.0, "r-dependence too strong: {pr:?}");
    }

    #[test]
    fn cut_probability_below_lemma1_bound_scaled() {
        let p = [0.0; 4];
        let mut q = [0.0; 4];
        q[0] = 1.0;
        let u = grids_needed(2, 1000, 0.001);
        let est = hybrid_cut_probability(&p, &q, 2, 32.0, u, 500, 3);
        // Lemma 1: O(sqrt(d) * dist / w) = O(2/32); allow constant 8.
        assert!(est <= 8.0 * lemma1_bound(4, 1.0, 32.0), "est {est}");
    }

    #[test]
    fn grid_cut_probability_matches_union_bound_shape() {
        let p = [0.0, 0.0];
        let q = [0.5, 0.5];
        let est = grid_cut_probability(&p, &q, 10.0, 2000, 4);
        // Exact: 1 - (1 - 0.05)^2 = 0.0975.
        assert!((est - 0.0975).abs() < 0.03, "est {est}");
    }

    #[test]
    fn empirical_diameter_stays_within_lemma1_bound() {
        use treeemb_linalg::random::unit_f64;
        let level = HybridLevel::new(4, 2, 8.0, 400, 77);
        let points: Vec<Vec<f64>> = (0..300u64)
            .map(|i| (0..4).map(|j| unit_f64(i, j as u64) * 60.0).collect())
            .collect();
        let worst = empirical_partition_diameter(&points, &level);
        assert!(worst > 0.0, "no pair shared a partition");
        assert!(
            worst <= level.diameter_bound() + 1e-9,
            "{worst} > bound {}",
            level.diameter_bound()
        );
    }

    #[test]
    fn equator_band_shrinks_with_band() {
        let wide = equator_band_probability(8, 0.5, false, 3000, 1);
        let narrow = equator_band_probability(8, 0.05, false, 3000, 2);
        assert!(narrow < wide);
    }

    #[test]
    fn equator_band_grows_with_dimension() {
        // Lemma 4: Pr ~ sqrt(d) * band; higher d concentrates mass near
        // the equator.
        let lo = equator_band_probability(4, 0.1, false, 4000, 3);
        let hi = equator_band_probability(64, 0.1, false, 4000, 4);
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    fn ball_and_sphere_bands_are_close() {
        // Lemma 5 extends Lemma 4 from sphere to ball with the same
        // asymptotics.
        let sphere = equator_band_probability(16, 0.2, false, 4000, 5);
        let ball = equator_band_probability(16, 0.2, true, 4000, 6);
        assert!((sphere - ball).abs() < 0.15, "{sphere} vs {ball}");
    }
}
