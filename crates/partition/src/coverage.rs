//! Coverage analysis for ball partitioning (Lemmas 6 and 7).
//!
//! A single grid of balls covers a fixed point with probability exactly
//! `p_m = V_m(w) / (4w)^m = V_m(1) / 4^m` in bucket dimension `m`, where
//! `V_m` is the unit-ball volume. Since `1/p_m = 2^{Θ(m log m)}`, the
//! number of independent grids needed to cover every point w.h.p. grows
//! exponentially in `m` — the quantitative content of Lemma 6 and the
//! reason hybrid partitioning splits dimensions into buckets (Lemma 7:
//! `U = 2^{O((d/r)·log(d/r))} · log(r·logΔ/δ)`).

/// Volume of the unit ball in `R^m`, via the half-integer recursion
/// `V_m = V_{m-2} · 2π/m` with `V_0 = 1`, `V_1 = 2` (exact, no Γ).
pub fn unit_ball_volume(m: usize) -> f64 {
    match m {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(m - 2) * 2.0 * std::f64::consts::PI / m as f64,
    }
}

/// Probability that one random ball grid (cell `4w`, radius `w`) covers
/// a fixed point in dimension `m`.
pub fn per_grid_cover_prob(m: usize) -> f64 {
    per_grid_cover_prob_factor(m, 4.0)
}

/// Cover probability for a general cell factor (`cell = factor·w`):
/// `V_m / factor^m`. `factor = 2` (touching balls) maximizes coverage
/// while keeping balls disjoint.
pub fn per_grid_cover_prob_factor(m: usize, factor: f64) -> f64 {
    assert!(factor >= 2.0);
    unit_ball_volume(m) / factor.powi(m as i32)
}

/// Number of grids needed so that each of `union_targets` points (union
/// bound over points, buckets, and levels) stays uncovered with
/// probability at most `fail_prob`:
/// `U = ⌈ln(union_targets / fail_prob) / p_m⌉`.
///
/// This is the concrete instantiation of Lemma 7's
/// `U = 2^{O(m log m)} · log(r·logΔ/δ)` with the constant in the
/// exponent made explicit through `p_m`.
pub fn grids_needed(m: usize, union_targets: usize, fail_prob: f64) -> usize {
    assert!(m >= 1, "bucket dimension must be positive");
    assert!(fail_prob > 0.0 && fail_prob < 1.0);
    let p = per_grid_cover_prob(m);
    let ln_term = ((union_targets.max(1) as f64) / fail_prob).ln().max(1.0);
    (ln_term / p).ceil() as usize
}

/// Empirically measures how many grids a `GridSequence`-style process
/// needs before a probe point is covered, averaged over `trials`
/// independent probes. Feeds experiment E6.
///
/// Returns `(mean, max)` over the trials; probes that stay uncovered
/// after `cap` grids count as `cap`.
pub fn empirical_grids_to_cover(m: usize, trials: usize, cap: usize, seed: u64) -> (f64, usize) {
    use treeemb_linalg::random::mix2;
    let mut total = 0usize;
    let mut worst = 0usize;
    for t in 0..trials {
        // Randomly shifted grid vs fixed probe == fixed grid vs random
        // probe; probe the origin.
        let probe = vec![0.0; m];
        let mut used = cap;
        for u in 0..cap {
            let g = crate::ball::BallGrid::from_seed(m, 4.0, 1.0, mix2(seed, (t * cap + u) as u64));
            if g.ball_of(&probe).is_some() {
                used = u + 1;
                break;
            }
        }
        total += used;
        worst = worst.max(used);
    }
    (total as f64 / trials as f64, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_ball_volumes() {
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(4) - std::f64::consts::PI.powi(2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn volumes_peak_at_dimension_five() {
        // Classic fact: V_m is maximized at m = 5.
        let peak = unit_ball_volume(5);
        for m in [1usize, 2, 3, 4, 6, 7, 8] {
            assert!(unit_ball_volume(m) < peak, "m={m}");
        }
    }

    #[test]
    fn cover_prob_decays_superexponentially() {
        // 1/p_m should grow faster than 4^m (by the Gamma factor).
        let mut prev_ratio = 0.0;
        for m in 1..10 {
            let ratio = per_grid_cover_prob(m) / per_grid_cover_prob(m + 1);
            assert!(ratio > prev_ratio, "ratio must increase with m");
            prev_ratio = ratio;
        }
        assert!(per_grid_cover_prob(10) < 1e-5);
    }

    #[test]
    fn grids_needed_scales_with_union_targets() {
        let small = grids_needed(3, 10, 0.01);
        let large = grids_needed(3, 10_000, 0.01);
        assert!(large > small);
        // Logarithmic growth: 1000x more targets ~ +ln(1000)/p.
        assert!((large - small) as f64 / small as f64 <= 3.0);
    }

    #[test]
    fn grids_needed_explodes_with_bucket_dimension() {
        let m3 = grids_needed(3, 100, 0.01);
        let m8 = grids_needed(8, 100, 0.01);
        assert!(m8 > 50 * m3, "m=8 needs {m8}, m=3 needs {m3}");
    }

    #[test]
    fn empirical_coverage_matches_analytic_rate() {
        let m = 2;
        let (mean, _max) = empirical_grids_to_cover(m, 2000, 200, 42);
        let expect = 1.0 / per_grid_cover_prob(m); // geometric mean 1/p
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn analytic_u_suffices_empirically() {
        let m = 3;
        let cap = grids_needed(m, 2000, 0.01);
        let (_, worst) = empirical_grids_to_cover(m, 2000, cap, 7);
        assert!(worst < cap, "a probe exhausted the Lemma-7 budget");
    }
}
