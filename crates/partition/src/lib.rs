//! The paper's three space-partitioning methods (SPAA'23 §1.2, §3).
//!
//! * [`grid`] — **random shifted grids** (Arora; Definition 1): partition
//!   space into hypercubic cells of width `w`, origin shifted uniformly.
//!   Simple, MPC-friendly, but `O(log² n)` distortion.
//! * [`ball`] — **ball partitioning** (Charikar et al.; Definition 2):
//!   place balls of radius `w` at the vertices of grids of cell length
//!   `ℓ = 4w`; repeat with fresh random shifts until every point is
//!   covered; a point belongs to the *first* ball that covers it.
//!   `O(log^1.5 n)` distortion but needs `2^{Θ(d log d)}` grids.
//! * [`hybrid`] — **hybrid partitioning** (Definition 3, the paper's
//!   contribution): split the `d` dimensions into `r` buckets, ball
//!   partition each bucket independently, and intersect: two points
//!   share a partition iff they share a ball in *every* bucket. `r = 1`
//!   recovers ball partitioning; `r = d` (with radius `w/2`, see
//!   [`grid`]) recovers shifted grids. The grid count drops to
//!   `2^{Θ((d/r)·log(d/r))}` while the cut probability stays
//!   `O(√d·‖p−q‖/w)` — independent of `r` (Lemma 1).
//!
//! [`coverage`] quantifies the number of grids needed (Lemmas 6/7) and
//! [`stats`] estimates cut probabilities and partition diameters
//! empirically (the E4/E6 experiments).

pub mod ball;
pub mod coverage;
pub mod fuzzing;
pub mod grid;
pub mod hybrid;
pub mod ids;
pub mod stats;

pub use ball::{BallAssignment, GridSequence};
pub use grid::ShiftedGrid;
pub use hybrid::{HybridLevel, LevelAssignment};
pub use ids::{PackedHasher, PackedLevelKey, StructuralHash};
