//! Fuzz harness for the packed-key vs exact-key partition parity
//! contract (the `TREEEMB_EXACT_KEYS` verification path).
//!
//! [`check_packed_vs_exact`] decodes an arbitrary byte string into a
//! hybrid-level geometry plus a batch of points and asserts, at the bit
//! level, that the allocation-free [`HybridLevel::assign_packed`] /
//! [`HybridLevel::absorb_assignment_into`] hot paths agree with the
//! materialized [`HybridLevel::assign`] exact path. Any disagreement
//! panics, which the fuzzer (and the corpus replay test in
//! `tests/fuzz_corpus.rs`) reports as a failure.
//!
//! The same function backs the `packed_vs_exact` cargo-fuzz target
//! (`fuzz/fuzz_targets/packed_vs_exact.rs`) and the in-tree corpus
//! replay, so tier-1 CI exercises every checked-in corpus entry even on
//! machines without a fuzzer toolchain.
//!
//! ## Input encoding
//!
//! | bytes    | meaning                                             |
//! |----------|-----------------------------------------------------|
//! | 0        | `r` (buckets), mapped to `1..=4`                    |
//! | 1        | `bucket_dim`, mapped to `1..=4`                     |
//! | 2..10    | geometry seed (little-endian `u64`)                 |
//! | 10..12   | ball radius `w`, `u16` mapped to `[0.5, 20.0]`      |
//! | 12..     | coordinates, `u16` pairs mapped to `[-50, 50]`      |
//!
//! Trailing bytes that do not complete a `dim`-dimensional point are
//! ignored; inputs shorter than the 12-byte header are skipped. The
//! ranges mirror the `packed_and_exact_keys_induce_identical_partitions`
//! proptest family, whose generator seeds the initial corpus.

use crate::hybrid::HybridLevel;
use crate::ids::StructuralHash;

/// Max points decoded per input: enough for all-pairs grouping checks,
/// small enough to keep per-exec cost flat.
const MAX_POINTS: usize = 16;

/// Decoded fuzz case: geometry plus point batch.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Bucket count `r` in `1..=4`.
    pub r: usize,
    /// Per-bucket dimension in `1..=4`.
    pub bucket_dim: usize,
    /// Geometry seed.
    pub seed: u64,
    /// Ball radius in `[0.5, 20.0]`.
    pub w: f64,
    /// Decoded points, each of dimension `r * bucket_dim`.
    pub points: Vec<Vec<f64>>,
}

/// Decodes a byte string per the module's input encoding, or `None` if
/// it is shorter than the header.
pub fn decode(data: &[u8]) -> Option<FuzzCase> {
    if data.len() < 12 {
        return None;
    }
    let r = (data[0] % 4) as usize + 1;
    let bucket_dim = (data[1] % 4) as usize + 1;
    let dim = r * bucket_dim;
    let seed = u64::from_le_bytes(data[2..10].try_into().unwrap());
    let wq = u16::from_le_bytes([data[10], data[11]]);
    let w = 0.5 + (f64::from(wq) / 65535.0) * 19.5;
    let mut coords = data[12..].chunks_exact(2).map(|b| {
        let v = u16::from_le_bytes([b[0], b[1]]);
        (f64::from(v) / 65535.0 - 0.5) * 100.0
    });
    let mut points = Vec::new();
    while points.len() < MAX_POINTS {
        let p: Vec<f64> = coords.by_ref().take(dim).collect();
        if p.len() < dim {
            break;
        }
        points.push(p);
    }
    Some(FuzzCase {
        r,
        bucket_dim,
        seed,
        w,
        points,
    })
}

/// The parity oracle: panics iff the packed hot paths disagree with the
/// exact path on the decoded case. Returns the number of points checked
/// (0 when the input is too short), so replay harnesses can assert the
/// corpus actually exercises the oracle.
pub fn check_packed_vs_exact(data: &[u8]) -> usize {
    let Some(case) = decode(data) else {
        return 0;
    };
    let dim = case.r * case.bucket_dim;
    let lvl = HybridLevel::new(dim, case.r, case.w, 40, case.seed);
    let exact: Vec<_> = case.points.iter().map(|p| lvl.assign(p)).collect();
    let packed: Vec<_> = case.points.iter().map(|p| lvl.assign_packed(p)).collect();
    for (i, (e, k)) in exact.iter().zip(&packed).enumerate() {
        // Covering decisions must agree exactly.
        assert_eq!(
            e.is_some(),
            k.is_some(),
            "point {i}: exact and packed disagree on coverage"
        );
        let (Some(e), Some(k)) = (e, k) else { continue };
        // The packed key's low lane IS the structural chain over the
        // exact assignment's token stream — bit-identical, not merely
        // collision-free.
        let chain = e.absorb_into(StructuralHash::root());
        assert_eq!(
            k.lo,
            chain.value(),
            "point {i}: packed low lane diverged from the exact chain"
        );
        // And the streaming node-id fold must produce the same chain.
        let folded = lvl
            .absorb_assignment_into(&case.points[i], StructuralHash::root())
            .expect("covered point must fold");
        assert_eq!(
            folded.value(),
            chain.value(),
            "point {i}: absorb_assignment_into diverged from the exact chain"
        );
    }
    // Grouping parity: packed keys partition the batch exactly as the
    // materialized assignments do.
    for i in 0..case.points.len() {
        for j in (i + 1)..case.points.len() {
            if exact[i].is_some() && exact[j].is_some() {
                assert_eq!(
                    exact[i] == exact[j],
                    packed[i] == packed[j],
                    "points {i},{j}: grouping parity violated"
                );
            }
        }
    }
    case.points.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_input_is_skipped() {
        assert_eq!(check_packed_vs_exact(&[]), 0);
        assert_eq!(check_packed_vs_exact(&[1; 11]), 0);
    }

    #[test]
    fn header_only_input_checks_zero_points() {
        assert_eq!(check_packed_vs_exact(&[0; 12]), 0);
    }

    #[test]
    fn decode_ranges_are_respected() {
        let mut data = vec![0xFFu8; 40];
        data[0] = 7; // r = 7 % 4 + 1 = 4
        data[1] = 0; // bucket_dim = 1
        let case = decode(&data).unwrap();
        assert_eq!(case.r, 4);
        assert_eq!(case.bucket_dim, 1);
        assert!((0.5..=20.0).contains(&case.w));
        for p in &case.points {
            assert_eq!(p.len(), 4);
            for &c in p {
                assert!((-50.0..=50.0).contains(&c));
            }
        }
    }

    #[test]
    fn dense_input_checks_points() {
        // 12-byte header + 16 u16 coordinates: with r=1, bucket_dim=1,
        // that is 16 one-dimensional points.
        let mut data = vec![0u8; 12 + 32];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 37 + 11) as u8;
        }
        data[0] = 0;
        data[1] = 0;
        assert_eq!(check_packed_vs_exact(&data), 16);
    }
}
