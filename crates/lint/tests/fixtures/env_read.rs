// lint-fixture: crates/linalg/src/violations.rs
// TREEEMB_* environment variables are parsed exactly once, in
// treeemb_mpc::config::from_env; scattered reads are denied. Non-repo
// variables are not this lint's business.

fn scattered_overrides() {
    let t = std::env::var("TREEEMB_THREADS"); //~ DENY env-read
    let u = env::var_os("TREEEMB_CAPACITY_WORDS"); //~ DENY env-read
    let _ = (t, u);
}

fn foreign_vars_ok() {
    let _ = std::env::var("PATH");
    let _ = std::env::var("RUST_LOG");
}

fn sanctioned() -> treeemb_mpc::EnvOverrides {
    treeemb_mpc::from_env()
}
