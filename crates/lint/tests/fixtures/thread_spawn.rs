// lint-fixture: crates/fjlt/src/violations.rs
// Ad-hoc threading is denied everywhere outside mpc::exec's audited
// pool: parallelism must flow through the deterministic executor.

fn rogue_parallelism() {
    let h = std::thread::spawn(|| 42); //~ DENY thread-spawn
    let b = thread::Builder::new(); //~ DENY thread-spawn
    let _ = (h.join(), b);
}

fn sanctioned(items: Vec<u64>) -> Vec<u64> {
    treeemb_mpc::exec::par_map_indexed(items, 4, |_, x| x + 1)
}
