// lint-fixture: crates/mpc/src/violations.rs
// The escape hatch polices itself: unknown rule ids and allows that
// suppress nothing are deny diagnostics in their own right, and an
// allow without a reason does not suppress.

// lint:allow(wall-clok): typo in the rule id. //~ DENY unknown-rule
fn typo_target() {
    let _x = 1;
}

// lint:allow(wall-clock): nothing on the next line reads a clock. //~ DENY unused-allow
fn stale_target() {
    let _x = 2;
}

fn reasonless() {
    // lint:allow(wall-clock) //~ DENY unused-allow
    let _t = Instant::now(); //~ DENY wall-clock
}

fn correct() {
    // lint:allow(wall-clock): phase metering; outputs unaffected.
    let _t = Instant::now();
}
