// lint-fixture: crates/apps/src/violations.rs
// The deprecated construction/mutation shims were deleted; the lint
// keeps them from coming back — even in test code.

fn resurrect() {
    let mut rt = Runtime::new(cfg()); //~ DENY deprecated-shim
    rt.set_fault_plan(plan()); //~ DENY deprecated-shim
    rt.clear_fault_plan(); //~ DENY deprecated-shim
}

fn sanctioned() {
    let _rt = Runtime::builder()
        .input_words(64)
        .machines(4)
        .fault_plan(plan())
        .build();
}

#[cfg(test)]
mod tests {
    #[test]
    fn also_denied_in_tests() {
        let rt = Runtime::new(cfg()); //~ DENY deprecated-shim
        let _ = rt;
    }
}
