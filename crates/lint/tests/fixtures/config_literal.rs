// lint-fixture: crates/geom/src/violations.rs
// Struct-literal construction of the config types bypasses builder
// validation and is denied outside their defining modules.

fn literal_configs() {
    let m = MpcConfig { //~ DENY config-literal
        input_words: 64,
        num_machines: 4,
    };
    let p = PipelineConfig { //~ DENY config-literal
        xi: 0.5,
    };
    let _ = (m, p);
}

fn builders_ok() {
    let m = MpcConfig::builder().input_words(64).build();
    let p = PipelineConfig::builder().xi(0.5).build();
    // Type positions and impls never trip the heuristic:
    let _: Option<MpcConfig> = None;
    let _ = (m, p);
}

impl MpcConfigExt for MpcConfig {
    fn describe(&self) -> String {
        String::new()
    }
}
