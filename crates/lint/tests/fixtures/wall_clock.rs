// lint-fixture: crates/partition/src/violations.rs
// Wall-clock reads in the deterministic core are denied; annotated and
// test-module reads are not.

fn timing() {
    let t0 = Instant::now(); //~ DENY wall-clock
    let t1 = std::time::SystemTime::now(); //~ DENY wall-clock
    let epoch = SystemTime::UNIX_EPOCH; //~ DENY wall-clock
    let _ = (t0, t1, epoch);
}

fn audited() {
    // lint:allow(wall-clock): metering only; outputs never see this.
    let _t = Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
    }
}
