// lint-fixture: crates/core/src/violations.rs
// Iterating hash containers in the deterministic core is denied
// (bucket order is unspecified); lookups and sorted materialization
// are fine, as is BTreeMap iteration.

fn iterate(m: &HashMap<u64, u64>) {
    for k in m.keys() { //~ DENY hash-iter
        black_box(k);
    }
    let vs: Vec<_> = m.values().collect(); //~ DENY hash-iter
    black_box(vs);
}

fn iterate_set() {
    let mut s: HashSet<u32> = HashSet::new();
    s.insert(3);
    for x in &s { //~ DENY hash-iter
        black_box(x);
    }
}

fn lookups_ok(m: &mut HashMap<u64, u64>) {
    m.insert(1, 2);
    let _ = m.get(&1);
    m.entry(3).or_insert(4);
}

fn ordered_ok(b: &BTreeMap<u64, u64>) {
    for k in b.keys() {
        black_box(k);
    }
}

fn audited(m: &HashMap<u64, u64>) -> u64 {
    // lint:allow(hash-iter): order-insensitive reduction (sum).
    m.values().sum()
}
