// lint-fixture: crates/hst/src/violations.rs
// Ambient entropy sources are denied in the deterministic core; seeded
// generators are the sanctioned path.

fn entropy() {
    let mut rng = thread_rng(); //~ DENY ambient-rand
    let x: u64 = rand::random(); //~ DENY ambient-rand
    let r2 = SmallRng::from_entropy(); //~ DENY ambient-rand
    let _ = (rng.next_u64(), x, r2);
}

fn seeded_ok(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let _ = rng.next_u64();
}
