//! UI-style fixture tests for the repo-invariant linter, plus
//! end-to-end checks of the `treeemb-lint` binary's exit codes.
//!
//! Each file in `tests/fixtures/` is a self-contained violation
//! showcase. Its first line, `// lint-fixture: <pretend-path>`, sets
//! the workspace-relative path the file is linted *as* (which selects
//! the applicable rule scopes), and every line expected to produce a
//! diagnostic carries a trailing `//~ DENY <rule-id>` marker. The test
//! asserts the exact (line, rule) multiset both ways: every marker must
//! fire and nothing unmarked may fire.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use treeemb_lint::lint_source;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

/// (line, rule) pairs, as a multiset.
type Findings = BTreeMap<(usize, String), usize>;

fn expected_markers(src: &str) -> Findings {
    let mut out = Findings::new();
    for (i, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~ DENY ") {
            let tail = &rest[pos + "//~ DENY ".len()..];
            let rule: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(!rule.is_empty(), "malformed marker on line {}", i + 1);
            *out.entry((i + 1, rule)).or_default() += 1;
            rest = tail;
        }
    }
    out
}

fn check_fixture(name: &str) {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    let first = src.lines().next().unwrap_or_default();
    let pretend = first
        .strip_prefix("// lint-fixture: ")
        .unwrap_or_else(|| panic!("{name}: first line must be `// lint-fixture: <path>`"))
        .trim();

    let expected = expected_markers(&src);
    let mut actual = Findings::new();
    for d in lint_source(pretend, &src) {
        *actual.entry((d.line, d.rule.to_string())).or_default() += 1;
    }
    assert_eq!(
        actual, expected,
        "{name}: diagnostics (left) diverge from //~ DENY markers (right)"
    );
}

#[test]
fn fixture_wall_clock() {
    check_fixture("wall_clock.rs");
}

#[test]
fn fixture_ambient_rand() {
    check_fixture("ambient_rand.rs");
}

#[test]
fn fixture_hash_iter() {
    check_fixture("hash_iter.rs");
}

#[test]
fn fixture_thread_spawn() {
    check_fixture("thread_spawn.rs");
}

#[test]
fn fixture_deprecated_shim() {
    check_fixture("deprecated_shim.rs");
}

#[test]
fn fixture_config_literal() {
    check_fixture("config_literal.rs");
}

#[test]
fn fixture_env_read() {
    check_fixture("env_read.rs");
}

#[test]
fn fixture_allow_hygiene() {
    check_fixture("allow_hygiene.rs");
}

#[test]
fn every_fixture_has_a_test_and_markers() {
    // Guards against a fixture being added but never wired to a test:
    // each .rs fixture must parse as a fixture and carry ≥1 marker or
    // be an explicitly-clean showcase (none currently).
    let mut seen = 0;
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).unwrap();
            assert!(
                src.starts_with("// lint-fixture: "),
                "{path:?} missing pretend-path header"
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 8, "fixture count drifted; update the ui tests");
}

/// The shipped binary must exit 0 on the real workspace: the tree stays
/// lint-clean, with audited exceptions annotated in place.
#[test]
fn binary_exits_zero_on_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_treeemb-lint"))
        .arg(workspace_root())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "workspace has lint violations:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// And it must exit nonzero when pointed at a tree seeded with a
/// violation (built under target/tmp so nothing pollutes the repo).
#[test]
fn binary_exits_nonzero_on_seeded_violation() {
    let seed_root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-ws");
    let src_dir = seed_root.join("crates/partition/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn t() -> std::time::Instant { Instant::now() }\n",
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_treeemb-lint"))
        .arg(&seed_root)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "seeded wall-clock violation was not denied"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("deny(wall-clock)"),
        "unexpected diagnostics:\n{stderr}"
    );
    assert!(stderr.contains("crates/partition/src/bad.rs:1:"));
}

/// `--list-rules` names every rule and exits 0.
#[test]
fn binary_lists_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_treeemb-lint"))
        .arg("--list-rules")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "ambient-rand",
        "hash-iter",
        "thread-spawn",
        "deprecated-shim",
        "config-literal",
        "env-read",
    ] {
        assert!(stdout.contains(rule), "--list-rules missing {rule}");
    }
}
