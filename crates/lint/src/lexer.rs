//! A small Rust lexer, sufficient for token-pattern linting.
//!
//! Produces a stream of significant tokens (identifiers/keywords,
//! punctuation with `::`/`=>`/`->` merged, literals) plus the line
//! comments, which carry `lint:allow(...)` directives. It understands
//! every Rust construct that could otherwise make a naive scanner
//! misfire inside non-code text: line and nested block comments, string
//! and byte-string literals with escapes, raw strings with arbitrary
//! `#` fences, char literals versus lifetimes.
//!
//! It deliberately does **not** parse: the rule engine works on token
//! patterns (e.g. `Instant :: now`), which is exactly as much syntax as
//! the repo invariants need.

/// Kinds of significant tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; `::`, `=>` and `->` arrive as single tokens.
    Punct,
    /// String or byte-string literal (text includes the quotes).
    Str,
    /// Char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
}

/// One significant token with its source position (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

/// One `//` comment (block comments are skipped — only line comments
/// may carry lint directives).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Comment text after the `//`.
    pub text: String,
    pub line: usize,
    /// True when source code precedes the comment on its line (a
    /// trailing comment annotates its own line rather than the next).
    pub trailing: bool,
}

/// Lexed file: tokens plus line comments.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<LineComment>,
}

/// Tokenizes `src`. Unterminated literals/comments end the scan early
/// rather than erroring: a file in that state will not compile anyway,
/// and the linter must never panic on input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    // Whether any significant token has appeared on the current line
    // (classifies comments as trailing or leading).
    let mut code_on_line = false;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                        code_on_line = false;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i + 2;
            let mut end = start;
            while end < b.len() && b[end] != b'\n' {
                end += 1;
            }
            comments.push(LineComment {
                text: String::from_utf8_lossy(&b[start..end]).into_owned(),
                line,
                trailing: code_on_line,
            });
            advance!(end - i);
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            advance!(2);
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    advance!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br"..." etc.
        let (raw_prefix, hash_at) = if c == b'r' && i + 1 < b.len() {
            (1usize, i + 1)
        } else if (c == b'b' || c == b'c') && i + 2 < b.len() && b[i + 1] == b'r' {
            (2usize, i + 2)
        } else {
            (0, 0)
        };
        if raw_prefix > 0 {
            let mut h = hash_at;
            while h < b.len() && b[h] == b'#' {
                h += 1;
            }
            if h < b.len() && b[h] == b'"' {
                let fences = h - hash_at;
                let (tline, tcol) = (line, col);
                let body_start = i;
                // Scan for `"` followed by `fences` hashes.
                let mut j = h + 1;
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if b[j] == b'"'
                        && b.len() >= j + 1 + fences
                        && b[j + 1..j + 1 + fences].iter().all(|&x| x == b'#')
                    {
                        j += 1 + fences;
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&b[body_start..j]).into_owned(),
                    line: tline,
                    col: tcol,
                });
                code_on_line = true;
                advance!(j - i);
                continue;
            }
        }
        // Plain/byte strings.
        if c == b'"' || ((c == b'b' || c == b'c') && i + 1 < b.len() && b[i + 1] == b'"') {
            let (tline, tcol) = (line, col);
            let start = i;
            let mut j = if c == b'"' { i + 1 } else { i + 2 };
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if b[j] == b'"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&b[start..j.min(b.len())]).into_owned(),
                line: tline,
                col: tcol,
            });
            code_on_line = true;
            advance!(j.min(b.len()) - i);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let (tline, tcol) = (line, col);
            let next = b.get(i + 1).copied();
            let is_lifetime = match next {
                Some(n) if n == b'_' || n.is_ascii_alphabetic() => {
                    // 'a followed by another quote is the char 'a';
                    // otherwise a lifetime (or the `'static` keyword).
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    !(j < b.len() && b[j] == b'\'')
                }
                _ => false,
            };
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                    line: tline,
                    col: tcol,
                });
                code_on_line = true;
                advance!(j - i);
            } else {
                // Char literal: 'x', '\n', '\'', '\u{..}'.
                let mut j = i + 1;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == b'\'' {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::from_utf8_lossy(&b[i..j.min(b.len())]).into_owned(),
                    line: tline,
                    col: tcol,
                });
                code_on_line = true;
                advance!(j.min(b.len()) - i);
            }
            continue;
        }
        // Identifiers / keywords.
        if c == b'_' || c.is_ascii_alphabetic() {
            let (tline, tcol) = (line, col);
            let mut j = i;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                line: tline,
                col: tcol,
            });
            code_on_line = true;
            advance!(j - i);
            continue;
        }
        // Numbers (digits, then trailing alphanumerics/underscores for
        // suffixes and hex; a `.` joins only when followed by a digit,
        // so `0..n` stays three tokens).
        if c.is_ascii_digit() {
            let (tline, tcol) = (line, col);
            let mut j = i;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j < b.len() && b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                j += 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                line: tline,
                col: tcol,
            });
            code_on_line = true;
            advance!(j - i);
            continue;
        }
        // Punctuation; merge the pairs the rule engine matches on.
        let (tline, tcol) = (line, col);
        let pair = if i + 1 < b.len() {
            &b[i..i + 2]
        } else {
            &b[i..i + 1]
        };
        let merged = matches!(pair, b"::" | b"=>" | b"->");
        let len = if merged { 2 } else { 1 };
        toks.push(Tok {
            kind: TokKind::Punct,
            text: String::from_utf8_lossy(&b[i..i + len]).into_owned(),
            line: tline,
            col: tcol,
        });
        code_on_line = true;
        advance!(len);
    }

    Lexed { toks, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn merges_path_separators() {
        assert_eq!(
            texts("Instant::now()"),
            vec!["Instant", "::", "now", "(", ")"]
        );
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("a // hi\n/* b */ c");
        assert_eq!(
            l.toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, " hi");
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "Instant::now // not a comment";"#);
        assert!(l.comments.is_empty());
        assert!(l.toks.iter().all(|t| t.text != "Instant"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex(r###"let s = r#"quote " inside"#; after"###);
        assert_eq!(l.toks.last().unwrap().text, "after");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let l = lex("a\nb\n  c");
        assert_eq!(l.toks[2].line, 3);
        assert_eq!(l.toks[2].col, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("before /* outer /* inner */ still */ after");
        assert_eq!(
            l.toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["before", "after"]
        );
    }

    #[test]
    fn ranges_stay_separate_tokens() {
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
        assert_eq!(texts("1.5e3"), vec!["1.5e3"]);
    }
}
