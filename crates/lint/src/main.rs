//! CLI for the repo-invariant linter.
//!
//! ```text
//! cargo run -p treeemb-lint                # lint the workspace, exit 1 on any deny
//! cargo run -p treeemb-lint -- --list-rules
//! cargo run -p treeemb-lint -- path/to/ws  # explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use treeemb_lint::{lint_workspace, RULES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for r in RULES {
                    println!("{:16} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: treeemb-lint [--list-rules] [workspace-root]");
                println!();
                println!("Denies violations of the repo invariants (determinism, centralized");
                println!("threading/config/env handling). Audited exceptions are annotated in");
                println!("place: // lint:allow(<rule>): <reason>");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from, so
    // `cargo run -p treeemb-lint` works from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("treeemb-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        println!("treeemb-lint: clean ({} rules enforced)", RULES.len());
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        eprintln!("{d}");
    }
    eprintln!();
    eprintln!(
        "treeemb-lint: {} deny diagnostic(s). Audited exceptions use \
         `// lint:allow(<rule>): <reason>` on or above the offending line.",
        diags.len()
    );
    ExitCode::FAILURE
}
