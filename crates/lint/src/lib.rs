//! `treeemb-lint` — repo-invariant linter for the treeemb workspace.
//!
//! The workspace's correctness story rests on invariants that `rustc`
//! and `clippy` cannot see: MPC rounds must be deterministic functions
//! of their inputs and seeds, all threading is owned by `mpc::exec`,
//! configs are constructed through builders, and every `TREEEMB_*`
//! environment variable is parsed in exactly one place. This crate
//! enforces those invariants as **deny-by-default** diagnostics over
//! the source tree (`cargo run -p treeemb-lint` — CI gates on its exit
//! code).
//!
//! # Rules
//!
//! | id | scope | denies |
//! |----|-------|--------|
//! | `wall-clock` | deterministic core, non-test | `Instant::now`, `SystemTime::now`, `SystemTime::UNIX_EPOCH` |
//! | `ambient-rand` | deterministic core, non-test | `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `rand::random` |
//! | `hash-iter` | deterministic core, non-test | iterating a `HashMap`/`HashSet` (`for .. in map`, `.iter()`, `.keys()`, `.values()`, `.drain()`, …) |
//! | `thread-spawn` | everywhere, non-test | `thread::spawn` / `thread::Builder` (the pool in `mpc::exec` carries the one audited allow) |
//! | `deprecated-shim` | everywhere | `Runtime::new`, `set_fault_plan`, `clear_fault_plan` (deleted shims must not return) |
//! | `config-literal` | everywhere | `MpcConfig { .. }` / `PipelineConfig { .. }` struct literals outside their defining modules — construct through the builders |
//! | `env-read` | everywhere | `env::var("TREEEMB_…")` outside `treeemb_mpc::config::from_env` |
//!
//! The *deterministic core* is every workspace crate except the audited
//! observability/benchmark/tooling crates (`obs`, `bench`, `lint`),
//! which may read clocks by design. Test code (`tests/`, `benches/`,
//! `examples/`, `#[cfg(test)]` modules) is exempt from the determinism
//! rules but not from the architectural ones.
//!
//! # Escape hatch
//!
//! A violation that is audited and safe is annotated in place:
//!
//! ```text
//! // lint:allow(wall-clock): metering only; round outputs never see this value.
//! let start = Instant::now();
//! ```
//!
//! The directive covers its own line (when trailing) or the next code
//! line (when leading), must name a known rule, must give a non-empty
//! reason, and must actually suppress something — unknown rules and
//! unused allows are themselves deny diagnostics, so stale annotations
//! rot loudly, not silently.

mod lexer;
mod rules;

pub use rules::{lint_source, RULES};

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One deny diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule id (`wall-clock`, …, or the meta rules `unknown-rule` /
    /// `unused-allow`).
    pub rule: &'static str,
    /// Human-readable explanation with the expected remedy.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: deny({}): {}",
            self.path, self.line, self.col, self.rule, self.msg
        )
    }
}

/// Directories never scanned, at any depth: build output, VCS metadata,
/// vendored shims for external crates (not this repo's code), the
/// excluded fuzz package, experiment outputs, and the linter's own
/// deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "shims",
    "fuzz",
    "results",
    "results_full",
    "fixtures",
];

/// Lints every `.rs` file under `root` (the workspace root), returning
/// all diagnostics sorted by path and position.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        out.extend(lint_source(&rel_str, &src));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            // The linter's own sources necessarily spell out directive
            // and rule patterns (docs, fixtures, pattern tables); it
            // does not lint itself.
            if path
                .strip_prefix(root)
                .is_ok_and(|r| r == Path::new("crates/lint"))
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
