//! The rule engine: path-based scoping, token-pattern rules, and the
//! `lint:allow` escape hatch with unused-allow tracking.

use std::collections::HashSet;

use crate::lexer::{lex, LineComment, Tok, TokKind};
use crate::Diagnostic;

/// Static description of one rule, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Rule id as used in diagnostics and `lint:allow(...)`.
    pub id: &'static str,
    /// One-line summary of what the rule denies and where.
    pub summary: &'static str,
}

/// Every enforced rule (the meta rules `unknown-rule` / `unused-allow`
/// guard the escape hatch itself and cannot be allowed away).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "Instant::now / SystemTime reads in the deterministic core (non-test code)",
    },
    RuleInfo {
        id: "ambient-rand",
        summary: "ambient randomness (thread_rng, from_entropy, OsRng, rand::random) in the deterministic core",
    },
    RuleInfo {
        id: "hash-iter",
        summary: "iteration over HashMap/HashSet in the deterministic core (order is unspecified; sort or use BTreeMap)",
    },
    RuleInfo {
        id: "thread-spawn",
        summary: "thread::spawn / thread::Builder outside the mpc::exec worker pool",
    },
    RuleInfo {
        id: "deprecated-shim",
        summary: "resurrecting deleted deprecated APIs (Runtime::new, set_fault_plan, clear_fault_plan)",
    },
    RuleInfo {
        id: "config-literal",
        summary: "MpcConfig / PipelineConfig struct literals outside their defining modules (use the builders)",
    },
    RuleInfo {
        id: "env-read",
        summary: "env::var(\"TREEEMB_*\") outside treeemb_mpc::config::from_env",
    },
];

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// How the rules apply to one file, derived from its workspace-relative
/// path.
struct FileScope {
    /// Determinism rules (`wall-clock`, `ambient-rand`, `hash-iter`)
    /// apply. False for the audited crates: `obs` (its whole purpose is
    /// timestamping), `bench` (harness timing), and this linter.
    det_core: bool,
    /// Whole file is test/bench/example code (integration tests,
    /// benches, examples, build scripts).
    test_code: bool,
    /// Defining module of `MpcConfig` / `PipelineConfig`; struct
    /// literals are legitimate here (the builders themselves).
    config_def: bool,
    /// The sanctioned `TREEEMB_*` parse site
    /// (`treeemb_mpc::config::from_env`).
    env_site: bool,
}

fn classify(path: &str) -> FileScope {
    let audited = path.starts_with("crates/obs/")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/lint/");
    let parts: Vec<&str> = path.split('/').collect();
    let test_code = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        || path.ends_with("build.rs");
    FileScope {
        det_core: !audited,
        test_code,
        config_def: path == "crates/mpc/src/config.rs" || path == "crates/core/src/pipeline.rs",
        env_site: path == "crates/mpc/src/config.rs",
    }
}

/// A parsed `lint:allow(rule): reason` directive and the source lines
/// it covers.
struct Allow {
    rule: String,
    /// Line of the directive comment (for unused-allow reporting).
    at_line: usize,
    /// Code line this directive suppresses diagnostics on.
    covers_line: usize,
    used: bool,
    /// Empty reason — rejected outright.
    missing_reason: bool,
}

/// Extracts allow directives from line comments. A trailing comment
/// covers its own line; a leading comment covers the first code line
/// after its (possibly multi-line) comment block.
fn parse_allows(comments: &[LineComment], toks: &[Tok]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    // Lines on which any significant token appears, for finding "the
    // next code line" after a leading comment.
    let code_lines: Vec<usize> = {
        let mut v: Vec<usize> = toks.iter().map(|t| t.line).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for c in comments {
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let covers_line = if c.trailing {
            c.line
        } else {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        if !known_rule(&rule) {
            diags.push(Diagnostic {
                path: String::new(), // filled by caller
                line: c.line,
                col: 1,
                rule: "unknown-rule",
                msg: format!(
                    "lint:allow names unknown rule `{rule}` (run `treeemb-lint --list-rules`)"
                ),
            });
            continue;
        }
        allows.push(Allow {
            rule,
            at_line: c.line,
            covers_line,
            used: false,
            missing_reason: reason.is_empty(),
        });
    }
    (allows, diags)
}

/// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` blocks, found
/// by token-pattern + brace matching.
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let t = |i: usize| -> &str { toks.get(i).map_or("", |t| t.text.as_str()) };
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "cfg"
            && t(i + 3) == "("
            && t(i + 4) == "test"
            && t(i + 5) == ")"
            && t(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `mod` within the next few tokens (other attributes or
        // visibility may intervene); bail out if it gates an item other
        // than a module.
        let mut j = i + 7;
        let mut found_mod = None;
        while j < toks.len() && j < i + 20 {
            if t(j) == "mod" {
                found_mod = Some(j);
                break;
            }
            if matches!(t(j), "fn" | "struct" | "impl" | "use" | "static" | "const") {
                break;
            }
            j += 1;
        }
        let Some(m) = found_mod else {
            i += 1;
            continue;
        };
        // Opening brace after `mod name`.
        let mut k = m + 1;
        while k < toks.len() && t(k) != "{" && t(k) != ";" {
            k += 1;
        }
        if k >= toks.len() || t(k) == ";" {
            i = m + 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut depth = 0usize;
        let mut end_line = toks[toks.len() - 1].line;
        let mut e = k;
        while e < toks.len() {
            match t(e) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[e].line;
                        break;
                    }
                }
                _ => {}
            }
            e += 1;
        }
        ranges.push((start_line, end_line));
        i = e.max(i + 1);
    }
    ranges
}

/// Identifiers bound to `HashMap`/`HashSet` in this file, from `name:
/// [&][mut] HashMap<…>` type ascriptions (lets, params, struct fields)
/// and `name = HashMap::new()/with_capacity()` initializations.
fn hash_bound_names(toks: &[Tok]) -> HashSet<String> {
    let mut names = HashSet::new();
    let t = |i: usize| -> &str { toks.get(i).map_or("", |t| t.text.as_str()) };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if t(i + 1) == ":" {
            // Lookahead through `&`, `'a`, `mut` to a container name.
            let mut j = i + 2;
            let mut steps = 0;
            while j < toks.len() && steps < 4 {
                match t(j) {
                    "&" | "mut" => j += 1,
                    _ if toks[j].kind == TokKind::Lifetime => j += 1,
                    _ => break,
                }
                steps += 1;
            }
            if matches!(t(j), "HashMap" | "HashSet") {
                names.insert(toks[i].text.clone());
            }
        }
        if t(i + 1) == "=" && matches!(t(i + 2), "HashMap" | "HashSet") {
            names.insert(toks[i].text.clone());
        }
    }
    names
}

/// Iteration methods whose order is the map's unspecified bucket order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Tokens that put a following `Name { … }` in expression (not
/// declaration/pattern) position.
const EXPR_INTRODUCERS: &[&str] = &[
    "=", "(", ",", "[", ";", "{", "return", "else", "=>", "box", "in",
];

/// Lints one file's source. `path` is the workspace-relative path with
/// forward slashes; it selects which rules apply (see the crate docs).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let scope = classify(path);
    let lexed = lex(src);
    let toks = &lexed.toks;
    let (mut allows, mut meta_diags) = parse_allows(&lexed.comments, toks);
    for d in &mut meta_diags {
        d.path = path.to_string();
    }
    let test_ranges = if scope.test_code {
        Vec::new()
    } else {
        cfg_test_ranges(toks)
    };
    let in_test =
        |line: usize| scope.test_code || test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let t = |i: usize| -> &str { toks.get(i).map_or("", |t| t.text.as_str()) };
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |tok: &Tok, rule: &'static str, msg: String| {
        raw.push(Diagnostic {
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            msg,
        });
    };

    let hash_names = if scope.det_core && !scope.test_code {
        hash_bound_names(toks)
    } else {
        HashSet::new()
    };

    for i in 0..toks.len() {
        let tok = &toks[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let det_here = scope.det_core && !in_test(tok.line);

        // wall-clock
        if det_here
            && matches!(tok.text.as_str(), "Instant" | "SystemTime")
            && t(i + 1) == "::"
            && matches!(t(i + 2), "now" | "UNIX_EPOCH")
        {
            push(
                tok,
                "wall-clock",
                format!(
                    "`{}::{}` in the deterministic core: round outputs must not depend on \
                     wall-clock time (route timing through treeemb-obs, or annotate \
                     `// lint:allow(wall-clock): <why outputs are unaffected>`)",
                    tok.text,
                    t(i + 2)
                ),
            );
        }

        // ambient-rand
        if det_here {
            if matches!(
                tok.text.as_str(),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
            ) {
                push(
                    tok,
                    "ambient-rand",
                    format!(
                        "`{}` draws ambient entropy: all randomness in the deterministic core \
                         must derive from the run seed (SeedableRng::seed_from_u64 or a mixed \
                         per-machine seed)",
                        tok.text
                    ),
                );
            }
            if tok.text == "rand" && t(i + 1) == "::" && t(i + 2) == "random" {
                push(
                    tok,
                    "ambient-rand",
                    "`rand::random` draws from the thread-local generator: seed explicitly \
                     from the run seed instead"
                        .to_string(),
                );
            }
        }

        // hash-iter: iteration methods on known HashMap/HashSet
        // bindings, and `for … in [&][mut] map {`.
        if det_here && hash_names.contains(&tok.text) {
            if t(i + 1) == "." && HASH_ITER_METHODS.contains(&t(i + 2)) {
                push(
                    tok,
                    "hash-iter",
                    format!(
                        "iterating `{}` (a HashMap/HashSet) — bucket order is unspecified and \
                         varies across platforms; collect-and-sort, use BTreeMap, or annotate \
                         `// lint:allow(hash-iter): <why order cannot affect outputs>`",
                        tok.text
                    ),
                );
            }
            let prev = if i > 0 { t(i - 1) } else { "" };
            let prev2 = if i > 1 { t(i - 2) } else { "" };
            let for_in =
                (prev == "in" || (prev == "&" && prev2 == "in") || (prev == "mut" && prev2 == "&"))
                    && t(i + 1) == "{";
            if for_in {
                push(
                    tok,
                    "hash-iter",
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in unspecified bucket order; \
                         collect-and-sort or use BTreeMap",
                        tok.text
                    ),
                );
            }
        }

        // thread-spawn (architectural: applies to audited crates too,
        // but not to test code).
        if !in_test(tok.line)
            && tok.text == "thread"
            && t(i + 1) == "::"
            && matches!(t(i + 2), "spawn" | "Builder")
        {
            push(
                tok,
                "thread-spawn",
                format!(
                    "`thread::{}` outside the mpc::exec worker pool: all parallelism goes \
                     through treeemb_mpc::exec so determinism and panic handling stay \
                     centralized",
                    t(i + 2)
                ),
            );
        }

        // deprecated-shim (everywhere, including tests).
        if matches!(tok.text.as_str(), "set_fault_plan" | "clear_fault_plan") {
            push(
                tok,
                "deprecated-shim",
                format!(
                    "`{}` was removed: attach fault plans at construction via \
                     Runtime::builder().fault_plan(plan)",
                    tok.text
                ),
            );
        }
        if tok.text == "Runtime" && t(i + 1) == "::" && t(i + 2) == "new" {
            push(
                tok,
                "deprecated-shim",
                "`Runtime::new` was removed: construct through Runtime::builder() \
                 (optionally .config(cfg))"
                    .to_string(),
            );
        }

        // config-literal (everywhere except the defining modules).
        if !scope.config_def
            && matches!(tok.text.as_str(), "MpcConfig" | "PipelineConfig")
            && t(i + 1) == "{"
        {
            let prev = if i > 0 { t(i - 1) } else { "" };
            if EXPR_INTRODUCERS.contains(&prev) {
                push(
                    tok,
                    "config-literal",
                    format!(
                        "`{} {{ … }}` literal bypasses the builder's validation and defaults; \
                         construct through {}::builder()",
                        tok.text, tok.text
                    ),
                );
            }
        }

        // env-read (everywhere except from_env's module).
        if !scope.env_site
            && tok.text == "env"
            && t(i + 1) == "::"
            && matches!(t(i + 2), "var" | "var_os")
            && t(i + 3) == "("
        {
            if let Some(lit) = toks.get(i + 4) {
                if lit.kind == TokKind::Str
                    && lit
                        .text
                        .trim_start_matches(['b', 'r', '#'])
                        .starts_with("\"TREEEMB_")
                {
                    push(
                        tok,
                        "env-read",
                        format!(
                            "{} read outside treeemb_mpc::config::from_env: every TREEEMB_* \
                             variable is parsed exactly once there so overrides stay \
                             discoverable and deterministic",
                            lit.text
                        ),
                    );
                }
            }
        }
    }

    // Apply allows; surviving diagnostics + meta diagnostics.
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == d.rule && a.covers_line == d.line {
                a.used = true;
                suppressed = !a.missing_reason;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for a in &allows {
        if a.missing_reason && a.used {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.at_line,
                col: 1,
                rule: "unused-allow",
                msg: format!(
                    "lint:allow({}) has no reason: write `// lint:allow({}): <why this is safe>`",
                    a.rule, a.rule
                ),
            });
        } else if !a.used {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.at_line,
                col: 1,
                rule: "unused-allow",
                msg: format!(
                    "lint:allow({}) suppresses nothing on line {}: remove the stale annotation",
                    a.rule, a.covers_line
                ),
            });
        }
    }
    out.extend(meta_diags);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET: &str = "crates/partition/src/x.rs";
    const AUDITED: &str = "crates/obs/src/x.rs";

    fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn wall_clock_denied_in_core_allowed_in_obs() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_at(DET, src), vec!["wall-clock"]);
        assert!(rules_at(AUDITED, src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n    // lint:allow(wall-clock): metering only.\n    let t = Instant::now();\n}";
        assert!(rules_at(DET, src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_own_line() {
        let src = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock): metering.";
        assert!(rules_at(DET, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "fn f() {\n    // lint:allow(wall-clock)\n    let t = Instant::now();\n}";
        let rules = rules_at(DET, src);
        assert!(rules.contains(&"wall-clock"), "{rules:?}");
    }

    #[test]
    fn unused_allow_is_a_diagnostic() {
        let src = "// lint:allow(wall-clock): nothing here.\nfn f() {}";
        assert_eq!(rules_at(DET, src), vec!["unused-allow"]);
    }

    #[test]
    fn unknown_rule_is_a_diagnostic() {
        let src = "// lint:allow(no-such-rule): whatever.\nfn f() {}";
        assert_eq!(rules_at(DET, src), vec!["unknown-rule"]);
    }

    #[test]
    fn cfg_test_module_is_exempt_from_determinism_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}";
        assert!(rules_at(DET, src).is_empty());
    }

    #[test]
    fn tests_dir_exempt_from_determinism_not_architecture() {
        let path = "crates/partition/tests/t.rs";
        assert!(rules_at(path, "fn f() { let t = Instant::now(); }").is_empty());
        assert_eq!(
            rules_at(path, "fn f() { rt.set_fault_plan(p); }"),
            vec!["deprecated-shim"]
        );
    }

    #[test]
    fn hash_iteration_detected_through_bindings() {
        let src = "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { use_(k); } }";
        assert_eq!(rules_at(DET, src), vec!["hash-iter"]);
        let src2 = "fn f() { let mut s: HashSet<u32> = HashSet::new(); for x in &s { g(x); } }";
        assert_eq!(rules_at(DET, src2), vec!["hash-iter"]);
        // Lookups are fine; BTreeMap iteration is fine.
        assert!(rules_at(DET, "fn f(m: &HashMap<u32,u32>) { m.get(&1); m.entry(2); }").is_empty());
        assert!(rules_at(DET, "fn f(m: &BTreeMap<u32,u32>) { for k in m.keys() {} }").is_empty());
    }

    #[test]
    fn spawn_denied_everywhere_outside_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_at(DET, src), vec!["thread-spawn"]);
        assert_eq!(rules_at(AUDITED, src), vec!["thread-spawn"]);
    }

    #[test]
    fn config_literal_denied_outside_defining_module() {
        let src = "fn f() { let c = MpcConfig { input_words: 1 }; }";
        assert_eq!(rules_at(DET, src), vec!["config-literal"]);
        assert!(rules_at("crates/mpc/src/config.rs", src).is_empty());
        // Declaration/impl positions don't trip the heuristic.
        assert!(rules_at(DET, "impl MpcConfig { fn g() {} }").is_empty());
        assert!(rules_at(DET, "pub struct PipelineConfig { pub xi: f64 }").is_empty());
    }

    #[test]
    fn env_read_denied_for_treeemb_vars_only() {
        let src = "fn f() { let v = std::env::var(\"TREEEMB_THREADS\"); }";
        assert_eq!(rules_at(DET, src), vec!["env-read"]);
        assert!(rules_at(DET, "fn f() { let v = std::env::var(\"PATH\"); }").is_empty());
        assert!(rules_at("crates/mpc/src/config.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"Instant::now()\"; } // Instant::now() in prose";
        assert!(rules_at(DET, src).is_empty());
    }
}
