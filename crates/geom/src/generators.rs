//! Seeded synthetic workload generators.
//!
//! Every generator is deterministic given its seed, emits points in the
//! paper's convention (coordinates in `[Δ]^d` ⊆ Z when a `delta` is
//! given), and is documented with the experiment(s) it feeds.

use crate::{sphere, PointSet};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Uniform integer points in `{1, ..., delta}^d` (the paper's baseline
/// input model, §1.3). Duplicates are allowed; aspect ratio is `O(Δ√d)`.
pub fn uniform_cube(n: usize, d: usize, delta: u64, seed: u64) -> PointSet {
    assert!(delta >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = PointSet::with_capacity(d, n);
    let mut buf = vec![0.0; d];
    for _ in 0..n {
        for x in &mut buf {
            *x = rng.gen_range(1..=delta) as f64;
        }
        ps.push(&buf);
    }
    ps
}

/// Mixture of `k` spherical Gaussian clusters with integer-rounded
/// coordinates clamped to `[1, delta]`. Feeds the MST / densest-ball
/// experiments (E7, E8): cluster structure is what tree embeddings are
/// good at preserving.
pub fn gaussian_clusters(
    n: usize,
    d: usize,
    k: usize,
    sigma: f64,
    delta: u64,
    seed: u64,
) -> PointSet {
    assert!(k >= 1 && delta >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers = Vec::with_capacity(k);
    for _ in 0..k {
        let c: Vec<f64> = (0..d).map(|_| rng.gen_range(1..=delta) as f64).collect();
        centers.push(c);
    }
    let mut normal = sphere::Normal::new();
    let mut ps = PointSet::with_capacity(d, n);
    let mut buf = vec![0.0; d];
    for i in 0..n {
        let c = &centers[i % k];
        for (x, &cj) in buf.iter_mut().zip(c) {
            let v = cj + sigma * normal.sample(&mut rng);
            *x = v.round().clamp(1.0, delta as f64);
        }
        ps.push(&buf);
    }
    ps
}

/// A planted dense ball: `dense` points inside a ball of diameter
/// `target_diameter` around a random center, plus `n - dense` uniform
/// noise points. Ground truth for the densest-ball experiment (E7).
pub struct PlantedBall {
    /// The generated point set (dense points first).
    pub points: PointSet,
    /// Ids `0..dense` of the planted points.
    pub planted: Vec<usize>,
    /// The planted ball's center.
    pub center: Vec<f64>,
}

/// Generates a [`PlantedBall`] instance.
pub fn planted_ball(
    n: usize,
    d: usize,
    dense: usize,
    target_diameter: f64,
    delta: u64,
    seed: u64,
) -> PlantedBall {
    assert!(dense <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let margin = target_diameter.ceil() as u64 + 1;
    let lo = margin.min(delta);
    let hi = delta.saturating_sub(margin).max(lo);
    let center: Vec<f64> = (0..d).map(|_| rng.gen_range(lo..=hi) as f64).collect();
    let mut ps = PointSet::with_capacity(d, n);
    let radius = target_diameter / 2.0;
    // Planted points: center + radius-bounded offsets, rounded.
    for _ in 0..dense {
        let dir = sphere::unit_ball(&mut rng, d);
        let p: Vec<f64> = center
            .iter()
            .zip(&dir)
            // Divide by sqrt(d): rounding moves a point by up to sqrt(d)/2,
            // so shrink the continuous radius to keep the rounded diameter
            // within target.
            .map(|(c, u)| (c + u * (radius - (d as f64).sqrt() / 2.0).max(0.0)).round())
            .map(|x| x.clamp(1.0, delta as f64))
            .collect();
        ps.push(&p);
    }
    let mut buf = vec![0.0; d];
    for _ in dense..n {
        for x in &mut buf {
            *x = rng.gen_range(1..=delta) as f64;
        }
        ps.push(&buf);
    }
    PlantedBall {
        points: ps,
        planted: (0..dense).collect(),
        center,
    }
}

/// Points on a random 1-D line segment embedded in `R^d` with additive
/// jitter — a low-doubling-dimension manifold workload. High ambient `d`,
/// low intrinsic dimension: the regime where JL preprocessing matters
/// (experiment E11).
pub fn noisy_line(n: usize, d: usize, delta: u64, jitter: f64, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..d).map(|_| rng.gen_range(1..=delta) as f64).collect();
    let b: Vec<f64> = (0..d).map(|_| rng.gen_range(1..=delta) as f64).collect();
    let mut normal = sphere::Normal::new();
    let mut ps = PointSet::with_capacity(d, n);
    let mut buf = vec![0.0; d];
    for i in 0..n {
        let t = i as f64 / (n.max(2) - 1) as f64;
        for j in 0..d {
            let v = a[j] + t * (b[j] - a[j]) + jitter * normal.sample(&mut rng);
            buf[j] = v.round().clamp(1.0, delta as f64);
        }
        ps.push(&buf);
    }
    ps
}

/// `n` corners of the `{0, s}^d` hypercube (s = `delta`), sampled without
/// repetition when `n ≤ 2^d`. All pairwise distances are `s·√h` for
/// Hamming distances `h` — a worst-case-ish high-dimensional workload
/// with tightly clustered distance scales.
pub fn hypercube_corners(n: usize, d: usize, delta: u64, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut ps = PointSet::with_capacity(d, n);
    let mut buf = vec![0.0; d];
    let cap = if d < 60 { 1u64 << d } else { u64::MAX };
    while ps.len() < n {
        let mask: u64 = rng.gen();
        let key = if d < 64 {
            mask & ((1u64 << d) - 1).max(1)
        } else {
            mask
        };
        if (ps.len() as u64) < cap && !seen.insert(key) {
            continue;
        }
        for (j, x) in buf.iter_mut().enumerate() {
            *x = if (key >> (j % 64)) & 1 == 1 {
                delta as f64
            } else {
                1.0
            };
        }
        ps.push(&buf);
    }
    ps
}

/// Exponentially spread scales: pairs of points at distances
/// `2^0, 2^1, ..., 2^(k-1)` along one axis. Exercises every level of the
/// hierarchy; the distortion audit uses it to probe all scales (E1, E10).
pub fn exponential_scales(k: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = PointSet::with_capacity(d, 2 * k);
    let mut base = vec![0.0; d];
    for s in 0..k {
        let offset = (1u64 << s) as f64;
        for x in &mut base {
            // Spread pair groups far apart so scales do not interact.
            *x = (rng.gen_range(0..(1u64 << (k + 2))) as f64).floor();
        }
        let mut q = base.clone();
        q[0] += offset;
        ps.push(&base);
        ps.push(&q);
    }
    // Shift into the positive orthant per the [Δ]^d convention.
    ps.affine(1.0, 1.0);
    ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn uniform_cube_respects_bounds() {
        let ps = uniform_cube(100, 4, 16, 7);
        assert_eq!(ps.len(), 100);
        for p in ps.iter() {
            for &x in p {
                assert!((1.0..=16.0).contains(&x));
                assert_eq!(x.fract(), 0.0, "coordinates must be integral");
            }
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(uniform_cube(20, 3, 8, 5), uniform_cube(20, 3, 8, 5));
        assert_ne!(uniform_cube(20, 3, 8, 5), uniform_cube(20, 3, 8, 6));
    }

    #[test]
    fn gaussian_clusters_stay_in_range() {
        let ps = gaussian_clusters(60, 5, 3, 2.0, 64, 11);
        assert_eq!(ps.len(), 60);
        for p in ps.iter() {
            for &x in p {
                assert!((1.0..=64.0).contains(&x));
            }
        }
    }

    #[test]
    fn planted_ball_has_bounded_diameter() {
        let inst = planted_ball(80, 6, 30, 12.0, 1024, 3);
        let dense = inst.points.select(&inst.planted);
        let diam = metrics::diameter(&dense);
        assert!(
            diam <= 12.0 + 1e-9,
            "planted diameter {diam} exceeds target"
        );
    }

    #[test]
    fn hypercube_corners_binary_coordinates() {
        let ps = hypercube_corners(10, 8, 32, 9);
        for p in ps.iter() {
            for &x in p {
                assert!(x == 1.0 || x == 32.0);
            }
        }
    }

    #[test]
    fn exponential_scales_has_planted_distances() {
        let ps = exponential_scales(5, 3, 1);
        for s in 0..5 {
            let d = metrics::dist(ps.point(2 * s), ps.point(2 * s + 1));
            assert!((d - (1u64 << s) as f64).abs() < 1e-9, "scale {s}: {d}");
        }
    }

    #[test]
    fn noisy_line_is_roughly_monotone() {
        let ps = noisy_line(50, 10, 4096, 0.5, 2);
        assert_eq!(ps.len(), 50);
        let endpoints = metrics::dist(ps.point(0), ps.point(49));
        let mid = metrics::dist(ps.point(0), ps.point(25));
        assert!(endpoints > mid * 1.2, "line structure missing");
    }
}
