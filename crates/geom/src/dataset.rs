//! Flat row-major point container.

/// A set of `n` points in `R^d`, stored row-major in one contiguous
/// allocation. Row-major layout keeps a single point's coordinates
/// adjacent, which is the access pattern of every partitioning and
/// transform step in this workspace.
///
/// ```
/// use treeemb_geom::PointSet;
/// let mut ps = PointSet::new(2);
/// ps.push(&[1.0, 2.0]);
/// ps.push(&[4.0, 6.0]);
/// assert_eq!(ps.len(), 2);
/// assert_eq!(ps.point(1), &[4.0, 6.0]);
/// assert_eq!(treeemb_geom::metrics::dist(ps.point(0), ps.point(1)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    data: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty point set with capacity for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a point set from a flat row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer length must be a multiple of dim"
        );
        Self { dim, data }
    }

    /// Builds a point set from per-point rows.
    ///
    /// # Panics
    /// Panics if rows disagree on length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(dim * rows.len());
        for r in rows {
            assert_eq!(r.len(), dim, "all rows must share a dimension");
            data.extend_from_slice(r);
        }
        Self { dim, data }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i` as a coordinate slice.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow point `i`.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dim()`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        self.data.extend_from_slice(p);
    }

    /// The raw flat buffer (row-major).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw flat buffer (row-major).
    #[inline]
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over points as coordinate slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Restriction of every point to the coordinate range
    /// `[lo, hi)` — the bucket projection `p^{(j)}` of Definition 3.
    pub fn project(&self, lo: usize, hi: usize) -> PointSet {
        assert!(lo < hi && hi <= self.dim, "invalid projection range");
        let sub = hi - lo;
        let mut data = Vec::with_capacity(sub * self.len());
        for p in self.iter() {
            data.extend_from_slice(&p[lo..hi]);
        }
        PointSet { dim: sub, data }
    }

    /// New point set containing the selected rows, in order.
    pub fn select(&self, ids: &[usize]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, ids.len());
        for &i in ids {
            out.push(self.point(i));
        }
        out
    }

    /// Pads every point with zero coordinates up to dimension `new_dim`.
    /// Used to make `d` divisible by the bucket count `r` (paper
    /// footnote 3) and to pad to a power of two for the WHT.
    pub fn zero_pad(&self, new_dim: usize) -> PointSet {
        assert!(new_dim >= self.dim, "zero_pad cannot shrink dimension");
        if new_dim == self.dim {
            return self.clone();
        }
        let mut data = Vec::with_capacity(new_dim * self.len());
        for p in self.iter() {
            data.extend_from_slice(p);
            data.extend(std::iter::repeat_n(0.0, new_dim - self.dim));
        }
        PointSet { dim: new_dim, data }
    }

    /// Scales and translates every coordinate: `x ← (x + shift) * scale`.
    pub fn affine(&mut self, shift: f64, scale: f64) {
        for x in &mut self.data {
            *x = (*x + shift) * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_round_trip() {
        let mut ps = PointSet::new(3);
        ps.push(&[1.0, 2.0, 3.0]);
        ps.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn project_extracts_bucket() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]);
        let head = ps.project(0, 2);
        let tail = ps.project(2, 4);
        assert_eq!(head.point(1), &[5.0, 6.0]);
        assert_eq!(tail.point(0), &[3.0, 4.0]);
    }

    #[test]
    fn zero_pad_appends_zeros() {
        let ps = PointSet::from_rows(&[vec![1.0], vec![2.0]]);
        let padded = ps.zero_pad(3);
        assert_eq!(padded.point(0), &[1.0, 0.0, 0.0]);
        assert_eq!(padded.point(1), &[2.0, 0.0, 0.0]);
    }

    #[test]
    fn select_reorders() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let sub = ps.select(&[2, 0]);
        assert_eq!(sub.point(0), &[2.0]);
        assert_eq!(sub.point(1), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "point dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0]);
    }

    #[test]
    fn iter_yields_all_points() {
        let ps = PointSet::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let rows: Vec<_> = ps.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[0.0, 1.0]);
    }

    #[test]
    fn affine_transforms_in_place() {
        let mut ps = PointSet::from_rows(&[vec![1.0, 3.0]]);
        ps.affine(1.0, 0.5);
        assert_eq!(ps.point(0), &[1.0, 2.0]);
    }
}
