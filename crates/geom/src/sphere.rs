//! Uniform sampling from unit spheres and balls.
//!
//! Used by the Lemma 4/5 experiments ("a random vector is unlikely to lie
//! near the equator") and by the Gaussian-cluster workload generators.

use rand::Rng;
use rand_distr_normal::StandardNormalBoxMuller;

/// A minimal Box–Muller standard normal sampler so we depend only on the
/// `rand` core crate (the `rand_distr` companion crate is outside the
/// allowed dependency set).
mod rand_distr_normal {
    use rand::Rng;

    /// Draws standard normal variates via the Box–Muller transform,
    /// caching the second variate of each pair.
    #[derive(Debug, Default, Clone)]
    pub struct StandardNormalBoxMuller {
        cached: Option<f64>,
    }

    impl StandardNormalBoxMuller {
        /// Creates a sampler with an empty cache.
        pub fn new() -> Self {
            Self::default()
        }

        /// Next standard normal variate.
        pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
            if let Some(z) = self.cached.take() {
                return z;
            }
            // u1 in (0, 1] to keep ln(u1) finite.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.cached = Some(r * theta.sin());
            r * theta.cos()
        }
    }
}

/// Fills `out` with independent standard normal variates.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut normal = StandardNormalBoxMuller::new();
    for x in out.iter_mut() {
        *x = normal.sample(rng);
    }
}

/// Samples a point uniformly from the surface of the unit sphere in `R^d`
/// (normalize a standard Gaussian vector).
pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Vec<f64> {
    assert!(d >= 1);
    let mut v = vec![0.0; d];
    loop {
        gaussian_vector(rng, &mut v);
        let n = crate::metrics::norm(&v);
        if n > 1e-12 {
            for x in &mut v {
                *x /= n;
            }
            return v;
        }
    }
}

/// Samples a point uniformly from the volume of the unit ball in `R^d`
/// (sphere direction scaled by `U^{1/d}`).
pub fn unit_ball<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Vec<f64> {
    let mut v = unit_sphere(rng, d);
    let radius = rng.gen::<f64>().powf(1.0 / d as f64);
    for x in &mut v {
        *x *= radius;
    }
    v
}

/// A reusable standard normal sampler (exposed for generator hot loops).
pub type Normal = StandardNormalBoxMuller;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::norm;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sphere_samples_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = unit_sphere(&mut rng, 8);
            assert!((norm(&v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ball_samples_lie_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = unit_ball(&mut rng, 5);
            assert!(norm(&v) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = vec![0.0; 20_000];
        gaussian_vector(&mut rng, &mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sphere_coordinates_are_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pos = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            if unit_sphere(&mut rng, 3)[0] > 0.0 {
                pos += 1;
            }
        }
        let frac = pos as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }
}
