//! Axis-aligned bounding boxes.

use crate::PointSet;

/// An axis-aligned bounding box in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoundingBox {
    /// The tightest box containing every point of `ps`.
    ///
    /// # Panics
    /// Panics if `ps` is empty.
    pub fn of(ps: &PointSet) -> Self {
        assert!(!ps.is_empty(), "bounding box of an empty set");
        let d = ps.dim();
        let mut lo = ps.point(0).to_vec();
        let mut hi = ps.point(0).to_vec();
        for p in ps.iter().skip(1) {
            for j in 0..d {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
        Self { lo, hi }
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Dimension of the box.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Maximum side length over all axes (the "width" of the box).
    pub fn width(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(a, b)| b - a)
            .fold(0.0, f64::max)
    }

    /// Euclidean length of the box diagonal — an upper bound on the
    /// diameter of any contained point set.
    pub fn diagonal(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(a, b)| (b - a) * (b - a))
            .sum::<f64>()
            .sqrt()
    }

    /// True if `p` lies inside the closed box.
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(x, (a, b))| *a <= *x && *x <= *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        PointSet::from_rows(&[vec![0.0, 5.0], vec![2.0, 1.0], vec![1.0, 3.0]])
    }

    #[test]
    fn corners_are_componentwise_extremes() {
        let b = BoundingBox::of(&sample());
        assert_eq!(b.lo(), &[0.0, 1.0]);
        assert_eq!(b.hi(), &[2.0, 5.0]);
    }

    #[test]
    fn width_is_max_side() {
        let b = BoundingBox::of(&sample());
        assert_eq!(b.width(), 4.0);
    }

    #[test]
    fn diagonal_dominates_diameter() {
        let ps = sample();
        let b = BoundingBox::of(&ps);
        assert!(b.diagonal() >= crate::metrics::diameter(&ps));
    }

    #[test]
    fn contains_boundary_points() {
        let b = BoundingBox::of(&sample());
        assert!(b.contains(&[0.0, 1.0]));
        assert!(b.contains(&[1.0, 2.0]));
        assert!(!b.contains(&[3.0, 3.0]));
    }
}
