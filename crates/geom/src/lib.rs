//! Geometric substrate for the tree-embedding reproduction.
//!
//! This crate provides the data layer every other crate builds on:
//!
//! * [`PointSet`] — a flat, row-major, cache-friendly container of
//!   `n` points in `d`-dimensional Euclidean space;
//! * [`metrics`] — Euclidean distances, pairwise extremes, aspect ratio;
//! * [`generators`] — seeded synthetic workloads (uniform cubes, Gaussian
//!   mixtures, planted clusters, hypercube corners, low-dimensional
//!   manifolds embedded in high dimension);
//! * [`bbox`] — axis-aligned bounding boxes;
//! * [`sphere`] — uniform sampling from unit spheres/balls (used by the
//!   Lemma 4/5 experiments).
//!
//! The paper (SPAA'23) assumes integer coordinates in `[Δ]^d`; generators
//! that honour that convention take an explicit `delta` and emit integral
//! coordinates stored as `f64` (exact for `Δ ≤ 2^53`).

pub mod bbox;
pub mod dataset;
pub mod generators;
pub mod metrics;
pub mod sphere;

pub use bbox::BoundingBox;
pub use dataset::PointSet;

/// Index of a point within a [`PointSet`].
pub type PointId = usize;
