//! Euclidean metric helpers: distances, pairwise extremes, aspect ratio.

use crate::PointSet;

/// Squared Euclidean distance between two coordinate slices.
///
/// # Panics
/// Panics (in debug builds) if the slices disagree on length.
#[inline]
pub fn sq_dist(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(p: &[f64], q: &[f64]) -> f64 {
    sq_dist(p, q).sqrt()
}

/// Euclidean norm of a vector.
#[inline]
pub fn norm(p: &[f64]) -> f64 {
    p.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Minimum and maximum pairwise distance over a point set, ignoring
/// coincident pairs for the minimum. `O(n^2 d)` — intended for audits and
/// experiment harnesses, not the embedding hot path.
///
/// Returns `None` if the set has fewer than two points or all points
/// coincide.
pub fn pairwise_extremes(ps: &PointSet) -> Option<(f64, f64)> {
    let n = ps.len();
    if n < 2 {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(ps.point(i), ps.point(j));
            if d > 0.0 && d < min {
                min = d;
            }
            if d > max {
                max = d;
            }
        }
    }
    if min.is_finite() {
        Some((min, max))
    } else {
        None
    }
}

/// The aspect ratio `Δ` of a point set: the ratio between the largest and
/// the smallest non-zero interpoint distance (paper §1, footnote 1).
///
/// Returns `None` when fewer than two distinct points exist.
pub fn aspect_ratio(ps: &PointSet) -> Option<f64> {
    pairwise_extremes(ps).map(|(min, max)| max / min)
}

/// Diameter (maximum pairwise distance) of a point set; zero for sets
/// with fewer than two points.
pub fn diameter(ps: &PointSet) -> f64 {
    pairwise_extremes(ps).map(|(_, max)| max).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_hand_computation() {
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn norm_of_unit_axis() {
        assert!((norm(&[0.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extremes_on_collinear_points() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![4.0]]);
        let (min, max) = pairwise_extremes(&ps).unwrap();
        assert_eq!(min, 1.0);
        assert_eq!(max, 4.0);
    }

    #[test]
    fn aspect_ratio_ignores_duplicates() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.0], vec![2.0], vec![3.0]]);
        // min non-zero distance 1, max 3.
        assert_eq!(aspect_ratio(&ps).unwrap(), 3.0);
    }

    #[test]
    fn degenerate_sets_have_no_aspect_ratio() {
        let ps = PointSet::from_rows(&[vec![1.0], vec![1.0]]);
        assert!(aspect_ratio(&ps).is_none());
        let single = PointSet::from_rows(&[vec![1.0]]);
        assert!(aspect_ratio(&single).is_none());
    }

    #[test]
    fn diameter_zero_for_singleton() {
        let ps = PointSet::from_rows(&[vec![7.0, 7.0]]);
        assert_eq!(diameter(&ps), 0.0);
    }
}
