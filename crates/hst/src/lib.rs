//! Hierarchically well-separated tree (HST) substrate.
//!
//! The output of every embedding pipeline in this workspace is a
//! weighted rooted tree whose leaves are the input points; the *tree
//! metric* `dist_T(p, q)` — the total weight of the tree path between
//! the leaves of `p` and `q` — is the embedded metric (paper §1.2).
//!
//! * [`tree`] — arena-allocated tree with parent pointers, levels, and a
//!   leaf-per-point map;
//! * [`builder`] — incremental construction + validation, including
//!   assembly from the distributed edge lists Algorithm 2 emits;
//! * [`metric`] — `dist_T`, LCA, path lengths;
//! * [`aggregate`] — subtree folds (point counts, weighted mass) used by
//!   the EMD / densest-ball / MST applications;
//! * [`export`] — DOT and ASCII renderings;
//! * [`persist`] — JSON save/load of trees (edge-list documents);
//! * [`oracle`] — O(1)-query distance oracle (Euler tour + sparse RMQ);
//! * [`compress`] — unary-chain compression (metric-preserving).

pub mod aggregate;
pub mod builder;
pub mod compress;
pub mod export;
pub mod metric;
pub mod oracle;
pub mod persist;
pub mod tree;

pub use builder::{EdgeRec, HstBuilder, HstError};
pub use oracle::DistanceOracle;
pub use tree::{Hst, NodeId};
