//! The tree metric: `dist_T`, LCA, and pairwise audits.

use crate::tree::{Hst, NodeId, PointId};

impl Hst {
    /// Lowest common ancestor of two nodes (walk-up by depth; paths in
    /// our hierarchies have length `O(logΔ + log d)`, so this is cheap
    /// and needs no preprocessing).
    pub fn lca(&self, mut a: NodeId, mut b: NodeId) -> NodeId {
        while self.nodes[a].depth > self.nodes[b].depth {
            a = self.nodes[a].parent.expect("deeper node must have parent");
        }
        while self.nodes[b].depth > self.nodes[a].depth {
            b = self.nodes[b].parent.expect("deeper node must have parent");
        }
        while a != b {
            a = self.nodes[a].parent.expect("nodes share a root");
            b = self.nodes[b].parent.expect("nodes share a root");
        }
        a
    }

    /// Weight of the tree path between two nodes.
    pub fn node_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let l = self.lca(a, b);
        let up = |mut x: NodeId| {
            let mut w = 0.0;
            while x != l {
                w += self.nodes[x].weight_to_parent;
                x = self.nodes[x].parent.expect("path to lca exists");
            }
            w
        };
        up(a) + up(b)
    }

    /// The tree metric between two input points:
    /// `dist_T(p, q) = node_distance(leaf(p), leaf(q))`.
    pub fn distance(&self, p: PointId, q: PointId) -> f64 {
        if p == q {
            return 0.0;
        }
        self.node_distance(self.leaf_of(p), self.leaf_of(q))
    }

    /// Full pairwise tree-distance matrix (for audits; `O(n² · height)`).
    #[allow(clippy::needless_range_loop)] // p/q index both points and the matrix
    pub fn distance_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_points();
        let mut m = vec![vec![0.0; n]; n];
        for p in 0..n {
            for q in (p + 1)..n {
                let d = self.distance(p, q);
                m[p][q] = d;
                m[q][p] = d;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HstBuilder;
    use crate::Hst;

    fn fixture() -> Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 4.0, None);
        let bb = b.add_child(root, 4.0, None);
        b.add_child(a, 1.0, Some(0));
        b.add_child(a, 1.0, Some(1));
        b.add_child(bb, 1.0, Some(2));
        b.finish().unwrap()
    }

    #[test]
    fn sibling_leaves_meet_at_parent() {
        let t = fixture();
        assert_eq!(t.distance(0, 1), 2.0);
    }

    #[test]
    fn cross_subtree_path_passes_root() {
        let t = fixture();
        assert_eq!(t.distance(0, 2), 1.0 + 4.0 + 4.0 + 1.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let t = fixture();
        assert_eq!(t.distance(1, 1), 0.0);
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let t = fixture();
        let l = t.lca(t.leaf_of(0), t.leaf_of(1));
        assert_eq!(Some(l), t.parent(t.leaf_of(0)));
    }

    #[test]
    fn lca_with_ancestor_is_ancestor() {
        let t = fixture();
        let a = t.parent(t.leaf_of(0)).unwrap();
        assert_eq!(t.lca(t.leaf_of(0), a), a);
        assert_eq!(t.lca(t.root(), t.leaf_of(2)), t.root());
    }

    #[test]
    fn metric_axioms_on_fixture() {
        let t = fixture();
        let m = t.distance_matrix();
        let n = t.num_points();
        for i in 0..n {
            assert_eq!(m[i][i], 0.0);
            for j in 0..n {
                assert_eq!(m[i][j], m[j][i], "symmetry");
                for k in 0..n {
                    assert!(m[i][k] <= m[i][j] + m[j][k] + 1e-12, "triangle inequality");
                }
            }
        }
    }
}
