//! Arena-allocated weighted rooted tree.

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// Index of an input point (leaf identity).
pub type PointId = usize;

/// A node of the tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Weight of the edge to the parent; `0.0` for the root.
    pub weight_to_parent: f64,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
    /// The input point this leaf represents, if a leaf.
    pub point: Option<PointId>,
    /// Depth (root = 0).
    pub depth: u32,
}

/// A weighted rooted tree whose leaves carry input points.
#[derive(Debug, Clone)]
pub struct Hst {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// `leaf_of[p]` = arena id of point `p`'s leaf.
    pub(crate) leaf_of: Vec<NodeId>,
}

impl Hst {
    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input points (leaves with point ids).
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.leaf_of.len()
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The leaf node holding point `p`.
    #[must_use]
    pub fn leaf_of(&self, p: PointId) -> NodeId {
        self.leaf_of[p]
    }

    /// Parent of `id`, if any.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id].parent
    }

    /// Children of `id`.
    #[must_use]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].children
    }

    /// Iterator over all node ids, root first (ids are assigned in
    /// topological order by the builder).
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        0..self.nodes.len()
    }

    /// Sum of all edge weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight_to_parent).sum()
    }

    /// Maximum leaf depth.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Sum of edge weights from `id` up to the root.
    #[must_use]
    pub fn weight_to_root(&self, mut id: NodeId) -> f64 {
        let mut total = 0.0;
        while let Some(p) = self.nodes[id].parent {
            total += self.nodes[id].weight_to_parent;
            id = p;
        }
        total
    }

    /// Post-order traversal of node ids (children before parents) —
    /// the order subtree folds consume.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id].children {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// The point ids in the subtree rooted at `id`.
    pub fn subtree_points(&self, id: NodeId) -> Vec<PointId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let Some(p) = self.nodes[n].point {
                out.push(p);
            }
            stack.extend(self.nodes[n].children.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HstBuilder;

    /// Builds the small fixture tree used across this crate's tests:
    ///
    /// ```text
    ///        root
    ///       /    \  (w=4)
    ///      a      b
    ///    /  \      \   (w=1)
    ///   p0   p1     p2
    /// ```
    pub(crate) fn fixture() -> crate::Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 4.0, None);
        let bb = b.add_child(root, 4.0, None);
        b.add_child(a, 1.0, Some(0));
        b.add_child(a, 1.0, Some(1));
        b.add_child(bb, 1.0, Some(2));
        b.finish().unwrap()
    }

    #[test]
    fn structure_counters() {
        let t = fixture();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_points(), 3);
        assert_eq!(t.height(), 2);
        assert_eq!(t.total_weight(), 4.0 + 4.0 + 1.0 + 1.0 + 1.0);
    }

    #[test]
    fn weight_to_root_walks_up() {
        let t = fixture();
        assert_eq!(t.weight_to_root(t.leaf_of(0)), 5.0);
        assert_eq!(t.weight_to_root(t.root()), 0.0);
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = fixture();
        let order = t.post_order();
        assert_eq!(order.len(), t.num_nodes());
        assert_eq!(*order.last().unwrap(), t.root());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in t.node_ids() {
            if let Some(p) = t.parent(id) {
                assert!(pos[&id] < pos[&p], "child after parent");
            }
        }
    }

    #[test]
    fn subtree_points_collects_leaves() {
        let t = fixture();
        let mut all = t.subtree_points(t.root());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        let a = t.parent(t.leaf_of(0)).unwrap();
        let mut under_a = t.subtree_points(a);
        under_a.sort_unstable();
        assert_eq!(under_a, vec![0, 1]);
    }

    #[test]
    fn depths_increase_from_root() {
        let t = fixture();
        assert_eq!(t.node(t.root()).depth, 0);
        assert_eq!(t.node(t.leaf_of(2)).depth, 2);
    }
}
