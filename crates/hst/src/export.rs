//! Human-readable renderings of trees (debugging, Figure-1-style
//! inspection, and documentation examples).

use crate::tree::Hst;
use std::fmt::Write;

impl Hst {
    /// Graphviz DOT rendering. Leaves are labeled with their point ids,
    /// edges with their weights.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph hst {\n  rankdir=TB;\n");
        for id in self.node_ids() {
            let node = self.node(id);
            match node.point {
                Some(p) => {
                    let _ = writeln!(s, "  n{id} [label=\"p{p}\", shape=box];");
                }
                None => {
                    let _ = writeln!(s, "  n{id} [label=\"\", shape=circle];");
                }
            }
            if let Some(parent) = node.parent {
                let _ = writeln!(
                    s,
                    "  n{parent} -> n{id} [label=\"{:.3}\"];",
                    node.weight_to_parent
                );
            }
        }
        s.push_str("}\n");
        s
    }

    /// Indented ASCII rendering, one node per line.
    pub fn to_ascii(&self) -> String {
        let mut s = String::new();
        let mut stack = vec![(self.root(), 0usize)];
        while let Some((id, indent)) = stack.pop() {
            let node = self.node(id);
            let pad = "  ".repeat(indent);
            match node.point {
                Some(p) => {
                    let _ = writeln!(s, "{pad}p{p} (w={:.3})", node.weight_to_parent);
                }
                None if node.parent.is_some() => {
                    let _ = writeln!(s, "{pad}* (w={:.3})", node.weight_to_parent);
                }
                None => {
                    let _ = writeln!(s, "{pad}root");
                }
            }
            // Reverse for natural top-down order when popping.
            for &c in node.children.iter().rev() {
                stack.push((c, indent + 1));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HstBuilder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        let c = b.add_child(r, 2.5, None);
        b.add_child(c, 1.0, Some(0));
        let t = b.finish().unwrap();
        let dot = t.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("p0"));
        assert!(dot.contains("2.500"));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn ascii_indents_by_depth() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        let c = b.add_child(r, 2.0, None);
        b.add_child(c, 1.0, Some(0));
        let t = b.finish().unwrap();
        let art = t.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("root"));
        assert!(lines[2].starts_with("    p0"));
    }
}
