//! Unary-chain compression.
//!
//! Algorithm 2's trees carry every level of every point's path, so long
//! unary chains (clusters that do not split for many levels) are
//! common — the sequential builder truncates them, the MPC tree does
//! not. [`Hst::compress`] collapses every maximal unary chain into a
//! single edge carrying the chain's total weight: the tree metric is
//! *exactly* preserved (path sums are unchanged) while node counts drop
//! to `O(n)`.

use crate::builder::HstBuilder;
use crate::tree::{Hst, NodeId};

impl Hst {
    /// Returns an equivalent tree with every unary chain collapsed.
    ///
    /// A node is kept iff it is the root, has ≥ 2 children, or is a
    /// leaf; edges to kept nodes accumulate the weights of the removed
    /// chain nodes. `dist_T` is identical on all point pairs.
    pub fn compress(&self) -> Hst {
        let mut b = HstBuilder::new();
        let new_root = b.add_root();
        // DFS from the root; for each kept node, walk each child chain
        // down to the next kept node, summing weights.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(self.root, new_root)];
        while let Some((old, new_parent)) = stack.pop() {
            for &child in self.children(old) {
                // Walk the unary chain starting at `child`.
                let mut cur = child;
                let mut weight = self.node(cur).weight_to_parent;
                while self.children(cur).len() == 1 && self.node(cur).point.is_none() {
                    let next = self.children(cur)[0];
                    weight += self.node(next).weight_to_parent;
                    cur = next;
                }
                let id = b.add_child(new_parent, weight, self.node(cur).point);
                stack.push((cur, id));
            }
        }
        b.finish().expect("compression preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root -> a -> b -> c(point 0); root -> d(point 1).
    fn chainy() -> Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 1.0, None);
        let bb = b.add_child(a, 2.0, None);
        b.add_child(bb, 4.0, Some(0));
        b.add_child(root, 3.0, Some(1));
        b.finish().unwrap()
    }

    #[test]
    fn chains_collapse_and_metric_survives() {
        let t = chainy();
        let c = t.compress();
        assert_eq!(c.num_nodes(), 3, "root + two leaves");
        assert_eq!(c.num_points(), 2);
        assert_eq!(c.distance(0, 1), t.distance(0, 1));
        assert_eq!(c.weight_to_root(c.leaf_of(0)), 7.0);
    }

    #[test]
    fn branching_nodes_are_kept() {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let mid = b.add_child(root, 1.0, None); // unary from root...
        let split = b.add_child(mid, 1.0, None); // ...until here (2 kids)
        b.add_child(split, 1.0, Some(0));
        b.add_child(split, 1.0, Some(1));
        let t = b.finish().unwrap();
        let c = t.compress();
        // root, split, 2 leaves.
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.distance(0, 1), t.distance(0, 1));
    }

    #[test]
    fn compressing_a_compact_tree_is_identity_shaped() {
        let t = chainy().compress();
        let again = t.compress();
        assert_eq!(again.num_nodes(), t.num_nodes());
        assert_eq!(again.distance(0, 1), t.distance(0, 1));
    }

    #[test]
    fn leaf_carrying_chain_nodes_are_kept() {
        // A point on an internal chain node must not be collapsed away.
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 1.0, Some(0)); // leafish but has a child
        b.add_child(a, 2.0, Some(1));
        let t = b.finish().unwrap();
        let c = t.compress();
        assert_eq!(c.num_points(), 2);
        assert_eq!(c.distance(0, 1), 2.0);
    }
}
