//! Constant-time distance oracle over a tree.
//!
//! [`Hst::distance`] walks to the LCA (`O(height)` per query), which is
//! fine for audits but not for query-heavy applications (nearest-median
//! assignment, all-pairs sketches). [`DistanceOracle`] preprocesses the
//! tree in `O(n log n)` — Euler tour + sparse-table range-minimum for
//! LCA, plus root-weight prefix sums — and then answers
//! `dist_T(p, q) = w(p) + w(q) − 2·w(lca)` in O(1).

use crate::tree::{Hst, NodeId, PointId};

/// Preprocessed O(1)-query tree-distance oracle.
///
/// ```
/// use treeemb_hst::{DistanceOracle, HstBuilder};
/// let mut b = HstBuilder::new();
/// let root = b.add_root();
/// let a = b.add_child(root, 2.0, None);
/// b.add_child(a, 1.0, Some(0));
/// b.add_child(root, 4.0, Some(1));
/// let tree = b.finish().unwrap();
/// let oracle = DistanceOracle::new(&tree);
/// assert_eq!(oracle.distance(0, 1), tree.distance(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    /// Euler tour of node ids (2n−1 entries).
    tour: Vec<NodeId>,
    /// Depth of each tour entry (for the RMQ).
    tour_depth: Vec<u32>,
    /// First tour position of each node.
    first_pos: Vec<usize>,
    /// Sparse table over tour positions: `table[k][i]` = position of the
    /// minimum-depth entry in `tour[i..i+2^k]`.
    table: Vec<Vec<u32>>,
    /// Sum of edge weights from each node up to the root.
    weight_to_root: Vec<f64>,
    /// Leaf node of each point.
    leaf_of: Vec<NodeId>,
}

impl DistanceOracle {
    /// Builds the oracle for a tree.
    pub fn new(t: &Hst) -> Self {
        let n = t.num_nodes();
        // Iterative Euler tour.
        let mut tour = Vec::with_capacity(2 * n);
        let mut tour_depth = Vec::with_capacity(2 * n);
        let mut first_pos = vec![usize::MAX; n];
        let mut weight_to_root = vec![0.0; n];
        // Stack frames: (node, next child index).
        let mut stack: Vec<(NodeId, usize)> = vec![(t.root(), 0)];
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if *next == 0 {
                if first_pos[id] == usize::MAX {
                    first_pos[id] = tour.len();
                }
                tour.push(id);
                tour_depth.push(t.node(id).depth);
                if let Some(parent) = t.parent(id) {
                    weight_to_root[id] = weight_to_root[parent] + t.node(id).weight_to_parent;
                }
            }
            let children = t.children(id);
            if *next < children.len() {
                let c = children[*next];
                *next += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(pid, _)) = stack.last() {
                    tour.push(pid);
                    tour_depth.push(t.node(pid).depth);
                }
            }
        }

        // Sparse table (positions as u32 — tours beyond 4G entries are
        // out of scope).
        let m = tour.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize;
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut k = 1usize;
        while (1 << k) <= m {
            let prev = &table[k - 1];
            let half = 1usize << (k - 1);
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if tour_depth[a as usize] <= tour_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }

        Self {
            tour,
            tour_depth,
            first_pos,
            table,
            weight_to_root,
            leaf_of: (0..t.num_points()).map(|p| t.leaf_of(p)).collect(),
        }
    }

    /// LCA of two nodes in O(1).
    #[must_use]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut i, mut j) = (self.first_pos[a], self.first_pos[b]);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let len = j - i + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.table[k][i];
        let y = self.table[k][j + 1 - (1 << k)];
        let pos = if self.tour_depth[x as usize] <= self.tour_depth[y as usize] {
            x
        } else {
            y
        };
        self.tour[pos as usize]
    }

    /// Tree distance between two nodes in O(1).
    #[must_use]
    pub fn node_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let l = self.lca(a, b);
        self.weight_to_root[a] + self.weight_to_root[b] - 2.0 * self.weight_to_root[l]
    }

    /// Tree distance between two points in O(1).
    #[must_use]
    pub fn distance(&self, p: PointId, q: PointId) -> f64 {
        if p == q {
            return 0.0;
        }
        self.node_distance(self.leaf_of[p], self.leaf_of[q])
    }

    /// Number of points indexed.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.leaf_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HstBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_tree(seed: u64, internal: usize) -> Hst {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let mut nodes = vec![root];
        let mut has_children = vec![false; 1];
        for _ in 0..internal {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let id = b.add_child(parent, rng.gen_range(0.1..10.0), None);
            has_children[parent] = true;
            nodes.push(id);
            has_children.push(false);
        }
        let mut point = 0usize;
        for i in 0..nodes.len() {
            if !has_children[i] {
                b.add_child(nodes[i], rng.gen_range(0.1..2.0), Some(point));
                point += 1;
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn oracle_matches_walkup_distance_on_random_trees() {
        for seed in 0..10u64 {
            let t = random_tree(seed, 30);
            let oracle = DistanceOracle::new(&t);
            let n = t.num_points();
            for p in 0..n {
                for q in 0..n {
                    let a = t.distance(p, q);
                    let b = oracle.distance(p, q);
                    assert!(
                        (a - b).abs() < 1e-12 * (1.0 + a),
                        "seed {seed} ({p},{q}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_lca_matches_walkup_lca() {
        let t = random_tree(3, 40);
        let oracle = DistanceOracle::new(&t);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(oracle.lca(a, b), t.lca(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn singleton_tree() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        b.add_child(r, 1.0, Some(0));
        let t = b.finish().unwrap();
        let oracle = DistanceOracle::new(&t);
        assert_eq!(oracle.distance(0, 0), 0.0);
        assert_eq!(oracle.num_points(), 1);
    }

    #[test]
    fn path_tree_distances() {
        // Chain: root -> a -> b(point 0); root -> c(point 1).
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 2.0, None);
        b.add_child(a, 3.0, Some(0));
        b.add_child(root, 5.0, Some(1));
        let t = b.finish().unwrap();
        let oracle = DistanceOracle::new(&t);
        assert_eq!(oracle.distance(0, 1), 3.0 + 2.0 + 5.0);
    }
}
