//! Saving and loading trees.
//!
//! An embedding is the *product* of the pipeline — downstream
//! applications (EMD queries, clustering services) want to compute it
//! once and reuse it. The portable format is the deduplicated edge list
//! Algorithm 2 itself produces: `(node, parent, weight, point?)` rows.

use crate::builder::{from_edge_list, EdgeRec, HstError};
use crate::tree::Hst;

/// One serialized tree row: `(node key, parent key, weight, point)`.
/// The root has `parent == node`; internal nodes carry `point == None`.
pub type EdgeRow = (u64, u64, f64, Option<usize>);

/// Serializable form of a tree: the edge list plus the point count.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDocument {
    /// Number of input points (leaf ids are `0..n_points`).
    pub n_points: usize,
    /// One row per node; see [`EdgeRow`].
    pub edges: Vec<EdgeRow>,
}

impl Hst {
    /// Exports the tree as a [`TreeDocument`] (stable node keys are the
    /// arena indices, which is fine for persistence — structural hashes
    /// only matter *during* distributed construction).
    pub fn to_document(&self) -> TreeDocument {
        let mut edges = Vec::with_capacity(self.num_nodes());
        for id in self.node_ids() {
            let node = self.node(id);
            let parent = node.parent.unwrap_or(id);
            edges.push((id as u64, parent as u64, node.weight_to_parent, node.point));
        }
        TreeDocument {
            n_points: self.num_points(),
            edges,
        }
    }

    /// Reconstructs a tree from a document, revalidating every
    /// structural invariant (single root, connectivity, dense points,
    /// finite non-negative weights).
    pub fn from_document(doc: &TreeDocument) -> Result<Hst, HstError> {
        let recs: Vec<EdgeRec> = doc
            .edges
            .iter()
            .map(|&(node, parent, weight, point)| EdgeRec {
                node,
                parent,
                weight,
                point,
            })
            .collect();
        from_edge_list(&recs, doc.n_points)
    }

    /// JSON serialization of [`Hst::to_document`].
    pub fn to_json(&self) -> String {
        self.to_document().to_json()
    }

    /// Parses and validates a JSON tree document.
    pub fn from_json(s: &str) -> Result<Hst, HstError> {
        let doc = TreeDocument::from_json(s).map_err(HstError::NotATreeMsg)?;
        Hst::from_document(&doc)
    }
}

// Hand-rolled JSON codec. The workspace builds offline (no serde), and
// the document grammar is tiny: the writer/parser below emit and accept
// the exact shape serde_json used before —
// `{"n_points":N,"edges":[[node,parent,weight,point-or-null],...]}` —
// so previously saved trees keep loading.
impl TreeDocument {
    /// Serializes the document as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(32 + self.edges.len() * 32);
        s.push_str("{\"n_points\":");
        s.push_str(&self.n_points.to_string());
        s.push_str(",\"edges\":[");
        for (i, &(node, parent, weight, point)) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            s.push_str(&node.to_string());
            s.push(',');
            s.push_str(&parent.to_string());
            s.push(',');
            // Rust's shortest round-trip float formatting, with a `.0`
            // forced onto integral values so the token stays a JSON float.
            let w = format!("{weight}");
            s.push_str(&w);
            if !w.contains(['.', 'e', 'E']) {
                s.push_str(".0");
            }
            s.push(',');
            match point {
                Some(p) => s.push_str(&p.to_string()),
                None => s.push_str("null"),
            }
            s.push(']');
        }
        s.push_str("]}");
        s
    }

    /// Parses a document from JSON. Accepts arbitrary whitespace and any
    /// object-key order; rejects unknown keys, duplicates, and trailing
    /// input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let mut p = JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let doc = p.document()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(doc)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid tree JSON at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", want as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// A JSON string restricted to the plain-identifier keys this format
    /// uses (no escapes).
    fn key(&mut self) -> Result<&str, String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let k = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-UTF-8 key"))?;
                self.pos += 1;
                return Ok(k);
            }
            if b == b'\\' {
                return Err(self.err("escapes are not used in tree documents"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    /// The span of one JSON number token.
    fn number_token(&mut self) -> Result<&str, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let pos = self.pos;
        let tok = self.number_token()?.to_owned();
        tok.parse::<u64>()
            .map_err(|e| format!("invalid tree JSON at byte {pos}: {e}"))
    }

    fn usize_val(&mut self) -> Result<usize, String> {
        let pos = self.pos;
        let tok = self.number_token()?.to_owned();
        tok.parse::<usize>()
            .map_err(|e| format!("invalid tree JSON at byte {pos}: {e}"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let pos = self.pos;
        let tok = self.number_token()?.to_owned();
        tok.parse::<f64>()
            .map_err(|e| format!("invalid tree JSON at byte {pos}: {e}"))
    }

    fn edge(&mut self) -> Result<EdgeRow, String> {
        self.eat(b'[')?;
        let node = self.u64()?;
        self.eat(b',')?;
        let parent = self.u64()?;
        self.eat(b',')?;
        let weight = self.f64()?;
        self.eat(b',')?;
        let point = if self.peek() == Some(b'n') {
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                None
            } else {
                return Err(self.err("expected null or a point id"));
            }
        } else {
            Some(self.usize_val()?)
        };
        self.eat(b']')?;
        Ok((node, parent, weight, point))
    }

    fn edges(&mut self) -> Result<Vec<EdgeRow>, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.edge()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in edge list")),
            }
        }
    }

    fn document(&mut self) -> Result<TreeDocument, String> {
        self.eat(b'{')?;
        let mut n_points: Option<usize> = None;
        let mut edges: Option<Vec<EdgeRow>> = None;
        loop {
            match self.key()? {
                "n_points" if n_points.is_none() => {
                    self.eat(b':')?;
                    n_points = Some(self.usize_val()?);
                }
                "edges" if edges.is_none() => {
                    self.eat(b':')?;
                    edges = Some(self.edges()?);
                }
                k => {
                    let msg = format!("unexpected or duplicate key {k:?}");
                    return Err(self.err(&msg));
                }
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in document")),
            }
        }
        match (n_points, edges) {
            (Some(n_points), Some(edges)) => Ok(TreeDocument { n_points, edges }),
            _ => Err(self.err("document must contain n_points and edges")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HstBuilder;

    fn fixture() -> Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 4.0, None);
        let bb = b.add_child(root, 4.0, None);
        b.add_child(a, 1.0, Some(0));
        b.add_child(a, 1.5, Some(1));
        b.add_child(bb, 1.0, Some(2));
        b.finish().unwrap()
    }

    #[test]
    fn document_round_trip_preserves_metric() {
        let t = fixture();
        let doc = t.to_document();
        let t2 = Hst::from_document(&doc).unwrap();
        assert_eq!(t2.num_points(), t.num_points());
        for p in 0..3 {
            for q in 0..3 {
                assert_eq!(t.distance(p, q), t2.distance(p, q), "({p},{q})");
            }
        }
    }

    #[test]
    fn json_round_trip() {
        let t = fixture();
        let json = t.to_json();
        let t2 = Hst::from_json(&json).unwrap();
        assert_eq!(t.distance(0, 2), t2.distance(0, 2));
        assert_eq!(t2.num_nodes(), t.num_nodes());
    }

    #[test]
    fn parser_accepts_whitespace_and_key_order() {
        let t = fixture();
        let doc = t.to_document();
        let mut rows = String::new();
        for (i, &(n, p, w, pt)) in doc.edges.iter().enumerate() {
            if i > 0 {
                rows.push_str(" ,\n");
            }
            let pt = pt.map_or("null".to_string(), |v| v.to_string());
            rows.push_str(&format!("[ {n}, {p} , {w:.3}, {pt} ]"));
        }
        let pretty = format!(
            "{{ \"edges\" : [\n{rows}\n] ,\n  \"n_points\" : {} }}",
            doc.n_points
        );
        let t2 = Hst::from_json(&pretty).unwrap();
        assert_eq!(t2.num_nodes(), t.num_nodes());
        assert_eq!(t2.distance(0, 2), t.distance(0, 2));
    }

    #[test]
    fn parser_rejects_trailing_and_unknown_keys() {
        let t = fixture();
        let json = t.to_json();
        assert!(Hst::from_json(&format!("{json} extra")).is_err());
        assert!(Hst::from_json("{\"n_points\":0,\"bogus\":[]}").is_err());
        assert!(TreeDocument::from_json("{\"n_points\":0}").is_err());
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(Hst::from_json("{not json").is_err());
        // Structurally invalid: two roots.
        let doc = TreeDocument {
            n_points: 0,
            edges: vec![(1, 1, 0.0, None), (2, 2, 0.0, None)],
        };
        assert!(Hst::from_document(&doc).is_err());
    }

    #[test]
    fn tampered_weight_is_rejected() {
        let t = fixture();
        let mut doc = t.to_document();
        doc.edges[1].2 = -5.0;
        assert!(Hst::from_document(&doc).is_err());
    }
}
