//! Saving and loading trees.
//!
//! An embedding is the *product* of the pipeline — downstream
//! applications (EMD queries, clustering services) want to compute it
//! once and reuse it. The portable format is the deduplicated edge list
//! Algorithm 2 itself produces: `(node, parent, weight, point?)` rows.

use crate::builder::{from_edge_list, EdgeRec, HstError};
use crate::tree::Hst;
use serde::{Deserialize, Serialize};

/// Serializable form of a tree: the edge list plus the point count.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TreeDocument {
    /// Number of input points (leaf ids are `0..n_points`).
    pub n_points: usize,
    /// One row per node: `(node key, parent key, weight, point)`. The
    /// root has `parent == node`.
    pub edges: Vec<(u64, u64, f64, Option<usize>)>,
}

impl Hst {
    /// Exports the tree as a [`TreeDocument`] (stable node keys are the
    /// arena indices, which is fine for persistence — structural hashes
    /// only matter *during* distributed construction).
    pub fn to_document(&self) -> TreeDocument {
        let mut edges = Vec::with_capacity(self.num_nodes());
        for id in self.node_ids() {
            let node = self.node(id);
            let parent = node.parent.unwrap_or(id);
            edges.push((id as u64, parent as u64, node.weight_to_parent, node.point));
        }
        TreeDocument {
            n_points: self.num_points(),
            edges,
        }
    }

    /// Reconstructs a tree from a document, revalidating every
    /// structural invariant (single root, connectivity, dense points,
    /// finite non-negative weights).
    pub fn from_document(doc: &TreeDocument) -> Result<Hst, HstError> {
        let recs: Vec<EdgeRec> = doc
            .edges
            .iter()
            .map(|&(node, parent, weight, point)| EdgeRec {
                node,
                parent,
                weight,
                point,
            })
            .collect();
        from_edge_list(&recs, doc.n_points)
    }

    /// JSON serialization of [`Hst::to_document`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_document()).expect("tree document serializes")
    }

    /// Parses and validates a JSON tree document.
    pub fn from_json(s: &str) -> Result<Hst, HstError> {
        let doc: TreeDocument =
            serde_json::from_str(s).map_err(|e| HstError::NotATreeMsg(e.to_string()))?;
        Hst::from_document(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HstBuilder;

    fn fixture() -> Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 4.0, None);
        let bb = b.add_child(root, 4.0, None);
        b.add_child(a, 1.0, Some(0));
        b.add_child(a, 1.5, Some(1));
        b.add_child(bb, 1.0, Some(2));
        b.finish().unwrap()
    }

    #[test]
    fn document_round_trip_preserves_metric() {
        let t = fixture();
        let doc = t.to_document();
        let t2 = Hst::from_document(&doc).unwrap();
        assert_eq!(t2.num_points(), t.num_points());
        for p in 0..3 {
            for q in 0..3 {
                assert_eq!(t.distance(p, q), t2.distance(p, q), "({p},{q})");
            }
        }
    }

    #[test]
    fn json_round_trip() {
        let t = fixture();
        let json = t.to_json();
        let t2 = Hst::from_json(&json).unwrap();
        assert_eq!(t.distance(0, 2), t2.distance(0, 2));
        assert_eq!(t2.num_nodes(), t.num_nodes());
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(Hst::from_json("{not json").is_err());
        // Structurally invalid: two roots.
        let doc = TreeDocument {
            n_points: 0,
            edges: vec![(1, 1, 0.0, None), (2, 2, 0.0, None)],
        };
        assert!(Hst::from_document(&doc).is_err());
    }

    #[test]
    fn tampered_weight_is_rejected() {
        let t = fixture();
        let mut doc = t.to_document();
        doc.edges[1].2 = -5.0;
        assert!(Hst::from_document(&doc).is_err());
    }
}
