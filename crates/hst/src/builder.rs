//! Incremental and edge-list construction of [`Hst`]s, with validation.

use crate::tree::{Hst, Node, NodeId, PointId};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while assembling a tree.
#[derive(Debug, Clone, PartialEq)]
pub enum HstError {
    /// No root was declared / found.
    NoRoot,
    /// More than one root candidate in an edge list.
    MultipleRoots(u64, u64),
    /// A point id appears on two different leaves.
    DuplicatePoint(PointId),
    /// An edge references a parent key that never appears as a node.
    MissingParent(u64),
    /// Point ids must be dense `0..n`; this one is out of range.
    SparsePointIds(PointId, usize),
    /// A cycle or disconnected component was detected.
    NotATree,
    /// Free-form structural failure (e.g. a parse error while loading).
    NotATreeMsg(String),
    /// An edge weight is not a finite non-negative number.
    BadWeight(f64),
}

impl fmt::Display for HstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HstError::NoRoot => write!(f, "tree has no root"),
            HstError::MultipleRoots(a, b) => write!(f, "multiple roots: {a:#x} and {b:#x}"),
            HstError::DuplicatePoint(p) => write!(f, "point {p} appears on two leaves"),
            HstError::MissingParent(k) => write!(f, "edge references unknown parent {k:#x}"),
            HstError::SparsePointIds(p, n) => {
                write!(
                    f,
                    "point id {p} out of range for {n} points (ids must be dense)"
                )
            }
            HstError::NotATree => write!(f, "edge list does not form a single tree"),
            HstError::NotATreeMsg(msg) => write!(f, "invalid tree document: {msg}"),
            HstError::BadWeight(w) => write!(f, "bad edge weight {w}"),
        }
    }
}

impl std::error::Error for HstError {}

/// Incremental builder: add the root, then children in any order.
#[derive(Debug, Default)]
pub struct HstBuilder {
    nodes: Vec<Node>,
    root: Option<NodeId>,
    points: Vec<(PointId, NodeId)>,
}

impl HstBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the root node. Must be called exactly once, first.
    ///
    /// # Panics
    /// Panics if a root already exists.
    pub fn add_root(&mut self) -> NodeId {
        assert!(self.root.is_none(), "root already added");
        self.nodes.push(Node {
            parent: None,
            weight_to_parent: 0.0,
            children: Vec::new(),
            point: None,
            depth: 0,
        });
        self.root = Some(0);
        0
    }

    /// Adds a child of `parent` with the given edge weight; `point`
    /// marks the node as the leaf of that input point.
    ///
    /// # Panics
    /// Panics on an unknown parent id.
    pub fn add_child(&mut self, parent: NodeId, weight: f64, point: Option<PointId>) -> NodeId {
        assert!(parent < self.nodes.len(), "unknown parent");
        let id = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(Node {
            parent: Some(parent),
            weight_to_parent: weight,
            children: Vec::new(),
            point: None,
            depth,
        });
        self.nodes[parent].children.push(id);
        if let Some(p) = point {
            self.nodes[id].point = Some(p);
            self.points.push((p, id));
        }
        id
    }

    /// Validates and produces the tree.
    pub fn finish(mut self) -> Result<Hst, HstError> {
        let root = self.root.ok_or(HstError::NoRoot)?;
        for n in &self.nodes {
            if !n.weight_to_parent.is_finite() || n.weight_to_parent < 0.0 {
                return Err(HstError::BadWeight(n.weight_to_parent));
            }
        }
        let n_points = self.points.len();
        let mut leaf_of = vec![usize::MAX; n_points];
        for (p, id) in self.points.drain(..) {
            if p >= n_points {
                return Err(HstError::SparsePointIds(p, n_points));
            }
            if leaf_of[p] != usize::MAX {
                return Err(HstError::DuplicatePoint(p));
            }
            leaf_of[p] = id;
        }
        Ok(Hst {
            nodes: self.nodes,
            root,
            leaf_of,
        })
    }
}

/// One edge of a distributed tree description: Algorithm 2's machines
/// emit these for every node on every point's root-to-leaf path (after
/// deduplication, each node appears once).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRec {
    /// Structural key of the node.
    pub node: u64,
    /// Structural key of the parent (equal to `node` for the root).
    pub parent: u64,
    /// Weight of the edge to the parent (ignored for the root).
    pub weight: f64,
    /// Leaf payload: the point this node represents, if any.
    pub point: Option<PointId>,
}

/// Assembles a tree from a deduplicated edge list.
///
/// `n_points` fixes the leaf-map size; every point in `0..n_points` must
/// appear exactly once.
pub fn from_edge_list(edges: &[EdgeRec], n_points: usize) -> Result<Hst, HstError> {
    // Locate the root (parent == node).
    let mut root_key: Option<u64> = None;
    for e in edges {
        if e.parent == e.node {
            match root_key {
                None => root_key = Some(e.node),
                Some(r) if r != e.node => return Err(HstError::MultipleRoots(r, e.node)),
                _ => {}
            }
        }
    }
    let root_key = root_key.ok_or(HstError::NoRoot)?;

    // Group children under parents.
    let mut children: HashMap<u64, Vec<&EdgeRec>> = HashMap::new();
    let mut known: HashMap<u64, &EdgeRec> = HashMap::new();
    for e in edges {
        if known.insert(e.node, e).is_some() {
            // Duplicate node keys are tolerated only if identical (the
            // dedup step upstream should have removed them).
            continue;
        }
        if e.parent != e.node {
            children.entry(e.parent).or_default().push(e);
        }
    }
    for e in edges {
        if e.parent != e.node && !known.contains_key(&e.parent) {
            return Err(HstError::MissingParent(e.parent));
        }
    }

    // BFS from the root, building the arena.
    let mut b = HstBuilder::new();
    let root_id = b.add_root();
    let mut queue: std::collections::VecDeque<(u64, NodeId)> = std::collections::VecDeque::new();
    queue.push_back((root_key, root_id));
    let mut placed = 1usize;
    while let Some((key, arena)) = queue.pop_front() {
        if let Some(kids) = children.get(&key) {
            // Deterministic order regardless of edge-list order.
            let mut kids: Vec<&&EdgeRec> = kids.iter().collect();
            kids.sort_by_key(|e| e.node);
            for e in kids {
                let id = b.add_child(arena, e.weight, e.point);
                placed += 1;
                queue.push_back((e.node, id));
            }
        }
    }
    if placed != known.len() {
        return Err(HstError::NotATree);
    }
    let t = b.finish()?;
    if t.num_points() != n_points {
        return Err(HstError::SparsePointIds(t.num_points(), n_points));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(node: u64, parent: u64, weight: f64, point: Option<usize>) -> EdgeRec {
        EdgeRec {
            node,
            parent,
            weight,
            point,
        }
    }

    #[test]
    fn builder_produces_valid_tree() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        let c = b.add_child(r, 2.0, None);
        b.add_child(c, 1.0, Some(0));
        let t = b.finish().unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_points(), 1);
        assert_eq!(t.node(t.leaf_of(0)).depth, 2);
    }

    #[test]
    fn duplicate_point_rejected() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        b.add_child(r, 1.0, Some(0));
        b.add_child(r, 1.0, Some(0));
        assert_eq!(b.finish().unwrap_err(), HstError::DuplicatePoint(0));
    }

    #[test]
    fn sparse_point_ids_rejected() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        b.add_child(r, 1.0, Some(5));
        assert!(matches!(
            b.finish().unwrap_err(),
            HstError::SparsePointIds(5, 1)
        ));
    }

    #[test]
    fn negative_weight_rejected() {
        let mut b = HstBuilder::new();
        let r = b.add_root();
        b.add_child(r, -1.0, Some(0));
        assert_eq!(b.finish().unwrap_err(), HstError::BadWeight(-1.0));
    }

    #[test]
    fn edge_list_round_trip() {
        let edges = vec![
            edge(10, 10, 0.0, None),
            edge(20, 10, 4.0, None),
            edge(21, 10, 4.0, None),
            edge(30, 20, 1.0, Some(0)),
            edge(31, 20, 1.0, Some(1)),
            edge(32, 21, 1.0, Some(2)),
        ];
        let t = from_edge_list(&edges, 3).unwrap();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.weight_to_root(t.leaf_of(2)), 5.0);
    }

    #[test]
    fn edge_list_order_does_not_matter() {
        let mut edges = vec![
            edge(30, 20, 1.0, Some(0)),
            edge(10, 10, 0.0, None),
            edge(20, 10, 4.0, None),
        ];
        let a = from_edge_list(&edges, 1).unwrap();
        edges.reverse();
        let b = from_edge_list(&edges, 1).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(
            a.weight_to_root(a.leaf_of(0)),
            b.weight_to_root(b.leaf_of(0))
        );
    }

    #[test]
    fn missing_parent_detected() {
        let edges = vec![edge(10, 10, 0.0, None), edge(30, 99, 1.0, Some(0))];
        assert_eq!(
            from_edge_list(&edges, 1).unwrap_err(),
            HstError::MissingParent(99)
        );
    }

    #[test]
    fn no_root_detected() {
        let edges = vec![edge(30, 20, 1.0, Some(0)), edge(20, 30, 1.0, None)];
        let err = from_edge_list(&edges, 1).unwrap_err();
        assert!(matches!(err, HstError::NoRoot | HstError::NotATree));
    }

    #[test]
    fn multiple_roots_detected() {
        let edges = vec![edge(1, 1, 0.0, None), edge(2, 2, 0.0, None)];
        assert!(matches!(
            from_edge_list(&edges, 0).unwrap_err(),
            HstError::MultipleRoots(_, _)
        ));
    }

    #[test]
    fn disconnected_component_detected() {
        let edges = vec![
            edge(1, 1, 0.0, None),
            edge(2, 1, 1.0, Some(0)),
            // Island: 5 <-> 6 cycle, unreachable from root.
            edge(5, 6, 1.0, None),
            edge(6, 5, 1.0, None),
        ];
        assert_eq!(from_edge_list(&edges, 1).unwrap_err(), HstError::NotATree);
    }
}
