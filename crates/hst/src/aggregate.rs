//! Subtree aggregates: bottom-up folds over the tree.
//!
//! The tree applications all reduce to per-node subtree statistics:
//! EMD needs `|A ∩ subtree| − |B ∩ subtree|`, densest ball needs point
//! counts per node, MST needs representatives per child cluster.

use crate::tree::{Hst, NodeId, PointId};

impl Hst {
    /// Generic bottom-up subtree fold. `leaf_value(point)` seeds leaves
    /// carrying points; `merge` folds children into parents. Every node
    /// gets a value (internal nodes with no point start from
    /// `identity`).
    pub fn subtree_fold<A: Clone>(
        &self,
        identity: A,
        leaf_value: impl Fn(PointId) -> A,
        merge: impl Fn(&A, &A) -> A,
    ) -> Vec<A> {
        let mut acc: Vec<A> = vec![identity; self.num_nodes()];
        for id in self.post_order() {
            if let Some(p) = self.node(id).point {
                acc[id] = merge(&acc[id], &leaf_value(p));
            }
            if let Some(parent) = self.parent(id) {
                acc[parent] = merge(&acc[parent], &acc[id]);
            }
        }
        acc
    }

    /// Number of input points in each node's subtree.
    pub fn subtree_counts(&self) -> Vec<usize> {
        self.subtree_fold(0usize, |_| 1usize, |a, b| a + b)
    }

    /// Per-node weighted count for an arbitrary point weighting (e.g.
    /// +1 for multiset A, −1 for multiset B in the EMD flow).
    pub fn subtree_signed_counts(&self, weight_of: impl Fn(PointId) -> i64) -> Vec<i64> {
        self.subtree_fold(0i64, weight_of, |a, b| a + b)
    }

    /// One representative point per node: the smallest point id in its
    /// subtree, or `None` for empty internal nodes (cannot happen in
    /// trees built by the pipelines, where every node has a descendant
    /// leaf).
    pub fn subtree_representatives(&self) -> Vec<Option<PointId>> {
        self.subtree_fold(None, Some, |a, b| match (a, b) {
            (None, x) => *x,
            (x, None) => *x,
            (Some(x), Some(y)) => Some(*x.min(y)),
        })
    }

    /// Nodes at a given depth.
    pub fn nodes_at_depth(&self, depth: u32) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).depth == depth)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HstBuilder;
    use crate::Hst;

    fn fixture() -> Hst {
        let mut b = HstBuilder::new();
        let root = b.add_root();
        let a = b.add_child(root, 4.0, None);
        let bb = b.add_child(root, 4.0, None);
        b.add_child(a, 1.0, Some(0));
        b.add_child(a, 1.0, Some(1));
        b.add_child(bb, 1.0, Some(2));
        b.finish().unwrap()
    }

    #[test]
    fn counts_sum_to_n_at_root() {
        let t = fixture();
        let counts = t.subtree_counts();
        assert_eq!(counts[t.root()], 3);
        let a = t.parent(t.leaf_of(0)).unwrap();
        assert_eq!(counts[a], 2);
        assert_eq!(counts[t.leaf_of(2)], 1);
    }

    #[test]
    fn signed_counts_cancel() {
        let t = fixture();
        // A = {0}, B = {1}: the shared parent nets to zero.
        let signed = t.subtree_signed_counts(|p| match p {
            0 => 1,
            1 => -1,
            _ => 0,
        });
        let a = t.parent(t.leaf_of(0)).unwrap();
        assert_eq!(signed[a], 0);
        assert_eq!(signed[t.leaf_of(0)], 1);
        assert_eq!(signed[t.root()], 0);
    }

    #[test]
    fn representatives_pick_min_point() {
        let t = fixture();
        let reps = t.subtree_representatives();
        assert_eq!(reps[t.root()], Some(0));
        let bb = t.parent(t.leaf_of(2)).unwrap();
        assert_eq!(reps[bb], Some(2));
    }

    #[test]
    fn nodes_at_depth_counts_levels() {
        let t = fixture();
        assert_eq!(t.nodes_at_depth(0), vec![t.root()]);
        assert_eq!(t.nodes_at_depth(1).len(), 2);
        assert_eq!(t.nodes_at_depth(2).len(), 3);
    }
}
