//! Property tests for the tree substrate: randomly generated trees must
//! satisfy the metric axioms and aggregate identities.

use proptest::prelude::*;
use treeemb_hst::{Hst, HstBuilder};

/// Builds a random tree: `shape[i]` attaches node i+1 under one of the
/// existing nodes; every node without children becomes a point leaf.
fn random_tree(shape: &[(usize, f64)]) -> Hst {
    let mut b = HstBuilder::new();
    let root = b.add_root();
    let mut nodes = vec![root];
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new()];
    for &(parent_pick, weight) in shape {
        let parent = nodes[parent_pick % nodes.len()];
        let id = b.add_child(parent, weight.abs() + 0.001, None);
        children_of[parent].push(id);
        nodes.push(id);
        children_of.push(Vec::new());
    }
    // Attach a point leaf under every childless node (point ids dense).
    let mut point = 0usize;
    for (&node, kids) in nodes.iter().zip(&children_of) {
        if kids.is_empty() {
            b.add_child(node, 0.5, Some(point));
            point += 1;
        }
    }
    b.finish().expect("valid random tree")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_metric_axioms(
        shape in proptest::collection::vec((0usize..50, 0f64..100.0), 0..25),
    ) {
        let t = random_tree(&shape);
        let n = t.num_points();
        for p in 0..n {
            prop_assert_eq!(t.distance(p, p), 0.0);
            for q in (p + 1)..n {
                let d = t.distance(p, q);
                prop_assert!(d > 0.0, "distinct leaves at distance zero");
                prop_assert_eq!(d, t.distance(q, p));
                for r in 0..n {
                    prop_assert!(
                        t.distance(p, r) <= d + t.distance(q, r) + 1e-9,
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn lca_properties(
        shape in proptest::collection::vec((0usize..50, 0f64..100.0), 0..25),
    ) {
        let t = random_tree(&shape);
        let n = t.num_points();
        for p in 0..n {
            for q in 0..n {
                let l = t.lca(t.leaf_of(p), t.leaf_of(q));
                // The LCA's depth is minimal along both paths.
                prop_assert!(t.node(l).depth <= t.node(t.leaf_of(p)).depth);
                // Distance decomposes through the LCA.
                let via = (t.weight_to_root(t.leaf_of(p)) - t.weight_to_root(l))
                    + (t.weight_to_root(t.leaf_of(q)) - t.weight_to_root(l));
                prop_assert!((t.distance(p, q) - via).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn subtree_counts_are_consistent(
        shape in proptest::collection::vec((0usize..50, 0f64..100.0), 0..25),
    ) {
        let t = random_tree(&shape);
        let counts = t.subtree_counts();
        prop_assert_eq!(counts[t.root()], t.num_points());
        for id in t.node_ids() {
            let from_children: usize = t.children(id).iter().map(|&c| counts[c]).sum();
            let own = usize::from(t.node(id).point.is_some());
            prop_assert_eq!(counts[id], from_children + own);
            prop_assert_eq!(counts[id], t.subtree_points(id).len());
        }
    }

    #[test]
    fn post_order_is_a_valid_topological_order(
        shape in proptest::collection::vec((0usize..50, 0f64..100.0), 0..25),
    ) {
        let t = random_tree(&shape);
        let order = t.post_order();
        prop_assert_eq!(order.len(), t.num_nodes());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        for id in t.node_ids() {
            for &c in t.children(id) {
                prop_assert!(pos[&c] < pos[&id]);
            }
        }
    }

    #[test]
    fn representatives_belong_to_their_subtrees(
        shape in proptest::collection::vec((0usize..50, 0f64..100.0), 0..25),
    ) {
        let t = random_tree(&shape);
        let reps = t.subtree_representatives();
        for id in t.node_ids() {
            let pts = t.subtree_points(id);
            match reps[id] {
                Some(r) => {
                    prop_assert!(pts.contains(&r));
                    prop_assert_eq!(r, *pts.iter().min().unwrap());
                }
                None => prop_assert!(pts.is_empty()),
            }
        }
    }
}
