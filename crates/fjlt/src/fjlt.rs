//! Sequential Fast Johnson–Lindenstrauss Transform (Ailon–Chazelle).

use treeemb_geom::PointSet;
use treeemb_linalg::random;
use treeemb_linalg::sparse::{fjlt_projection, CscMatrix};
use treeemb_linalg::wht;

/// Domain-separation tags for the two random objects derived from the
/// master seed. Shared with the MPC implementation so both compute the
/// same map.
pub const D_TAG: u64 = 0xD1A6;
/// Tag for the sparse projection `P`.
pub const P_TAG: u64 = 0x50F7;

/// Parameters of an FJLT instance, shared verbatim by the sequential and
/// MPC implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FjltParams {
    /// Original dimension.
    pub d: usize,
    /// `d` padded to a power of two (the WHT length).
    pub d_pad: usize,
    /// Target dimension `k = Θ(ξ⁻² log n)`.
    pub k: usize,
    /// Sparsity of `P`: entries are nonzero with probability `q`.
    pub q: f64,
    /// Master seed.
    pub seed: u64,
}

impl FjltParams {
    /// Derives parameters for `n` points in dimension `d` at distortion
    /// `ξ`: `k = Θ(ξ⁻² log n)`, `q = min(Θ(log² n / d), 1)` (paper §5).
    pub fn for_dataset(n: usize, d: usize, xi: f64, seed: u64) -> Self {
        assert!(n >= 1 && d >= 1);
        assert!(xi > 0.0 && xi < 1.0, "xi must lie in (0,1)");
        let d_pad = wht::next_pow2(d);
        let k = crate::dense::target_dimension(n, xi).min(d_pad);
        let ln_n = (n.max(2) as f64).ln();
        // Constant 2 keeps q-dense enough that sparse-projection noise is
        // small at the bench scales we run (Ailon-Chazelle allow any
        // Θ(log² n / d)).
        let q = (2.0 * ln_n * ln_n / d_pad as f64).min(1.0);
        Self {
            d,
            d_pad,
            k,
            q,
            seed,
        }
    }

    /// Fully explicit parameters (tests, experiments).
    pub fn explicit(d: usize, k: usize, q: f64, seed: u64) -> Self {
        let d_pad = wht::next_pow2(d);
        assert!(k >= 1 && q > 0.0 && q <= 1.0);
        Self {
            d,
            d_pad,
            k,
            q,
            seed,
        }
    }

    /// The random sign `D_{jj}` (shared derivation with MPC).
    #[inline]
    pub fn d_sign(&self, j: usize) -> f64 {
        random::sign(random::mix2(self.seed, D_TAG), j as u64)
    }

    /// The seed from which `P`'s entries are derived.
    #[inline]
    pub fn p_seed(&self) -> u64 {
        random::mix2(self.seed, P_TAG)
    }

    /// Final scale: `1/√k` for norm preservation (`E‖φx‖² = ‖x‖²`) and
    /// `1/√d_pad` normalizing the WHT.
    #[inline]
    pub fn output_scale(&self) -> f64 {
        1.0 / ((self.k as f64).sqrt() * (self.d_pad as f64).sqrt())
    }
}

/// A materialized sequential FJLT.
///
/// ```
/// use treeemb_fjlt::{Fjlt, FjltParams};
/// // 64-dimensional input, 8 output dimensions.
/// let f = Fjlt::new(FjltParams::explicit(64, 8, 0.5, 7));
/// let y = f.apply_vec(&[1.0; 64]);
/// assert_eq!(y.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Fjlt {
    params: FjltParams,
    p: CscMatrix,
}

impl Fjlt {
    /// Materializes `P` and readies the transform.
    pub fn new(params: FjltParams) -> Self {
        let p = fjlt_projection(params.k, params.d_pad, params.q, params.p_seed());
        Self { params, p }
    }

    /// The parameters in force.
    pub fn params(&self) -> &FjltParams {
        &self.params
    }

    /// Nonzero count of `P` — the Theorem-3 space term
    /// `O(ξ⁻² log³ n)`.
    pub fn projection_nnz(&self) -> usize {
        self.p.nnz()
    }

    /// Transforms one vector: `k^{-1/2}·P·H·D·x` (with `H` normalized).
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.params.d, "input dimension mismatch");
        // D then zero-pad to d_pad.
        let mut buf = vec![0.0; self.params.d_pad];
        for (j, &v) in x.iter().enumerate() {
            buf[j] = v * self.params.d_sign(j);
        }
        // Unnormalized H (normalization folded into output_scale).
        wht::wht_inplace(&mut buf);
        // Sparse P.
        let mut y = self.p.mul_vec(&buf);
        let s = self.params.output_scale();
        for v in &mut y {
            *v *= s;
        }
        y
    }

    /// Transforms a whole point set.
    pub fn apply(&self, ps: &PointSet) -> PointSet {
        let mut out = PointSet::with_capacity(self.params.k, ps.len());
        for p in ps.iter() {
            out.push(&self.apply_vec(p));
        }
        out
    }

    /// [`Self::apply`] with the per-point transforms fanned out over
    /// `threads` workers. Output is bitwise identical to the sequential
    /// apply (each point's transform is independent).
    pub fn apply_parallel(&self, ps: &PointSet, threads: usize) -> PointSet {
        let rows = treeemb_mpc::exec::par_map_indexed(
            (0..ps.len()).collect::<Vec<usize>>(),
            threads.max(1),
            |_, i| self.apply_vec(ps.point(i)),
        );
        let mut out = PointSet::with_capacity(self.params.k, ps.len());
        for row in &rows {
            out.push(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::generators;
    use treeemb_geom::metrics::{dist, norm};

    #[test]
    fn params_derivation_is_sane() {
        let p = FjltParams::for_dataset(1024, 500, 0.5, 1);
        assert_eq!(p.d_pad, 512);
        assert!(p.k >= 32);
        assert!(p.q > 0.0 && p.q <= 1.0);
    }

    #[test]
    fn output_dimension_is_k() {
        let params = FjltParams::explicit(10, 6, 0.5, 2);
        let f = Fjlt::new(params);
        let y = f.apply_vec(&[1.0; 10]);
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn transform_is_linear() {
        let params = FjltParams::explicit(8, 4, 0.6, 3);
        let f = Fjlt::new(params);
        let a = [1.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let b = [0.0, 3.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = f.apply_vec(&a);
        let fb = f.apply_vec(&b);
        let fsum = f.apply_vec(&sum);
        for i in 0..4 {
            assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_norm_is_preserved() {
        // Average ||phi(x)||^2 / ||x||^2 over many seeds -> 1.
        let x: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let nx2 = norm(&x).powi(2);
        let trials = 300;
        let mut acc = 0.0;
        for s in 0..trials {
            let f = Fjlt::new(FjltParams::explicit(64, 16, 0.5, s));
            let y = f.apply_vec(&x);
            acc += norm(&y).powi(2) / nx2;
        }
        let mean = acc / trials as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean ratio {mean}");
    }

    #[test]
    fn pairwise_distances_roughly_preserved() {
        let ps = generators::uniform_cube(24, 100, 1 << 10, 9);
        let params = FjltParams::for_dataset(24, 100, 0.45, 11);
        let f = Fjlt::new(params);
        let out = f.apply(&ps);
        let mut worst: f64 = 1.0;
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let ratio = dist(out.point(i), out.point(j)) / dist(ps.point(i), ps.point(j));
                worst = worst.max(ratio.max(1.0 / ratio));
            }
        }
        assert!(worst < 1.8, "worst pairwise distortion {worst}");
    }

    #[test]
    fn parallel_apply_is_bitwise_identical() {
        let ps = generators::uniform_cube(40, 50, 512, 6);
        let f = Fjlt::new(FjltParams::for_dataset(40, 50, 0.5, 13));
        assert_eq!(f.apply(&ps), f.apply_parallel(&ps, 8));
    }

    #[test]
    fn deterministic_in_seed() {
        let ps = generators::uniform_cube(5, 20, 256, 4);
        let params = FjltParams::for_dataset(5, 20, 0.5, 77);
        let a = Fjlt::new(params).apply(&ps);
        let b = Fjlt::new(params).apply(&ps);
        assert_eq!(a, b);
    }

    #[test]
    fn nnz_far_below_dense_for_high_dim() {
        // Theorem 3's point: |P| ~ xi^-2 log^3 n << d*k for large d.
        let params = FjltParams::for_dataset(512, 4096, 0.5, 1);
        let f = Fjlt::new(params);
        let dense_entries = params.k * params.d_pad;
        assert!(
            f.projection_nnz() * 10 < dense_entries,
            "nnz {} vs dense {dense_entries}",
            f.projection_nnz()
        );
    }
}
