//! Johnson–Lindenstrauss transforms (paper §5, Theorem 3).
//!
//! * [`dense`] — the classical dense Gaussian JL transform (baseline;
//!   `O(ndk)` work and `O(nd log n)` total space in MPC, which is what
//!   Theorem 3 improves on);
//! * [`fjlt`] — the sequential Fast Johnson–Lindenstrauss Transform of
//!   Ailon–Chazelle: `φ(x) = k^{-1/2}·P·H·D·x` with a sparse Gaussian
//!   `P`, the Walsh–Hadamard `H`, and a random-sign diagonal `D`;
//! * [`mpc`] — the paper's constant-round, sublinear-memory MPC
//!   implementation (Algorithm 3): `D` applied pointwise, `H` via a
//!   butterfly-grouped distributed WHT (`O(1/ε)` super-rounds), `P` via
//!   sparse fan-out and distributed aggregation;
//! * [`audit`] — distortion reports comparing embedded to original
//!   pairwise distances.
//!
//! Both implementations derive `D` and `P` from the same seed with the
//! same counter streams, so the MPC transform computes the *same map*
//! as the sequential one (up to float summation order) — tested.

pub mod audit;
pub mod dense;
pub mod fjlt;
pub mod mpc;

pub use fjlt::{Fjlt, FjltParams};
