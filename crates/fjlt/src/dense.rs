//! Dense Gaussian Johnson–Lindenstrauss transform (the \[46\] baseline).

use treeemb_geom::PointSet;
use treeemb_linalg::random;

/// Standard JL target dimension for distortion `(1 ± ξ)` over all pairs
/// of `n` points with high probability: `k = ⌈8·ln(max(n,2)) / ξ²⌉`.
pub fn target_dimension(n: usize, xi: f64) -> usize {
    assert!(xi > 0.0 && xi < 1.0, "xi must lie in (0,1)");
    let ln_n = (n.max(2) as f64).ln();
    ((8.0 * ln_n) / (xi * xi)).ceil() as usize
}

/// Applies the dense transform `y = k^{-1/2}·G·x` with `G` a `k × d`
/// matrix of iid standard Gaussians derived from `seed`.
pub fn gaussian_jl(ps: &PointSet, k: usize, seed: u64) -> PointSet {
    let d = ps.dim();
    let scale = 1.0 / (k as f64).sqrt();
    let mut out = PointSet::with_capacity(k, ps.len());
    let mut row = vec![0.0; k];
    for p in ps.iter() {
        for (i, r) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &x) in p.iter().enumerate() {
                if x != 0.0 {
                    acc += random::gaussian(seed, (i * d + j) as u64) * x;
                }
            }
            *r = acc * scale;
        }
        out.push(&row);
    }
    out
}

/// Work (multiply–add count) of the dense transform, for the Theorem-3
/// space/work comparison tables: `n·d·k`.
pub fn dense_work(n: usize, d: usize, k: usize) -> u64 {
    n as u64 * d as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::metrics::dist;

    #[test]
    fn target_dimension_shrinks_with_larger_xi() {
        assert!(target_dimension(1000, 0.5) < target_dimension(1000, 0.25));
        assert!(target_dimension(1_000_000, 0.5) > target_dimension(100, 0.5));
    }

    #[test]
    fn output_has_requested_dimension() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let out = gaussian_jl(&ps, 7, 1);
        assert_eq!(out.dim(), 7);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn transform_is_linear() {
        let a = PointSet::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let out = gaussian_jl(&a, 4, 3);
        // phi(e1) + phi(e2) = phi(e1 + e2).
        for j in 0..4 {
            let s = out.point(0)[j] + out.point(1)[j];
            assert!((s - out.point(2)[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn distances_are_roughly_preserved() {
        // 20 points, generous k: every pairwise distance within (1±0.5).
        let ps = treeemb_geom::generators::uniform_cube(20, 30, 1 << 12, 5);
        let k = target_dimension(20, 0.5);
        let out = gaussian_jl(&ps, k, 7);
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let orig = dist(ps.point(i), ps.point(j));
                let emb = dist(out.point(i), out.point(j));
                let ratio = emb / orig;
                assert!(
                    (0.5..=1.5).contains(&ratio),
                    "pair ({i},{j}): ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0]]);
        let a = gaussian_jl(&ps, 3, 9);
        let b = gaussian_jl(&ps, 3, 9);
        assert_eq!(a, b);
    }
}
