//! MPC implementation of the FJLT (paper Algorithm 3 / Theorem 3).
//!
//! The transform runs in four phases on coordinate records
//! `(point, index, value)`:
//!
//! 1. **D** — multiply each record by the sign `D_{jj}` (machine-local;
//!    signs derive from the broadcast seed, so no table is shipped);
//! 2. **H** — distributed Walsh–Hadamard transform: the `log₂ d`
//!    butterfly stages are grouped into super-rounds of `b` bits. Each
//!    super-round co-locates, per point, the `2^b` coordinates sharing
//!    all index bits outside the group (one shuffle round), applies the
//!    `b` stages locally, and re-emits. `⌈log₂(d)/b⌉ = O(1/ε)` rounds —
//!    the same schedule as the MPC FFT of \[45\] that the paper invokes;
//! 3. **P** — every coordinate fans out to the nonzeros of `P`'s column
//!    (regenerated locally from the seed), and contributions are summed
//!    by destination coordinate (one shuffle round + local fold);
//! 4. **gather** — output records are collected into a `k`-dimensional
//!    [`PointSet`].
//!
//! With the same [`FjltParams`], this computes the *same linear map* as
//! [`crate::fjlt::Fjlt`] (exactly for `D`/`H`; `P`'s additions may
//! reassociate, giving `≈1e-12` relative differences).

use crate::fjlt::FjltParams;
use std::collections::HashMap;
use treeemb_geom::PointSet;
use treeemb_linalg::random::mix2;
use treeemb_linalg::sparse::fjlt_projection_column;
use treeemb_mpc::{MpcError, MpcResult, Runtime, Words};

/// One coordinate of one point in transit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coord {
    /// Point id.
    pub pt: u32,
    /// Coordinate index (input: `0..d_pad`; output: `0..k`).
    pub idx: u32,
    /// Value.
    pub val: f64,
}

impl Words for Coord {
    fn words(&self) -> usize {
        2 // packed (pt, idx) + value
    }
}

/// Applies the FJLT to `ps` on the simulated cluster. Returns the
/// `k`-dimensional embedded point set.
///
/// `ps.dim()` must equal `params.d`.
pub fn fjlt_mpc(rt: &mut Runtime, ps: &PointSet, params: &FjltParams) -> MpcResult<PointSet> {
    assert_eq!(ps.dim(), params.d, "params/point-set dimension mismatch");
    let mut sp = treeemb_obs::span!("fjlt.transform", "n" = ps.len(), "d" = params.d);
    sp.arg("k", params.k as u64);
    let n = ps.len();
    if n == 0 {
        return Ok(PointSet::new(params.k.max(1)));
    }
    if n > u32::MAX as usize {
        return Err(MpcError::AlgorithmFailure(
            "too many points for u32 ids".into(),
        ));
    }
    let m = rt.num_machines();

    // Load coordinate records (zeros omitted; they are implicit).
    let load_sp = treeemb_obs::span!("fjlt.load");
    let mut records = Vec::with_capacity(n * params.d);
    for (pt, p) in ps.iter().enumerate() {
        for (j, &v) in p.iter().enumerate() {
            if v != 0.0 {
                records.push(Coord {
                    pt: pt as u32,
                    idx: j as u32,
                    val: v,
                });
            }
        }
    }
    let mut dist = rt.distribute(records)?;
    drop(load_sp);

    // Phase D: machine-local sign flips.
    let sign_sp = treeemb_obs::span!("fjlt.sign");
    let p_d = *params;
    dist = rt.map_local(dist, move |_, mut shard| {
        for r in &mut shard {
            r.val *= p_d.d_sign(r.idx as usize);
        }
        shard
    })?;
    drop(sign_sp);

    // Phase H: butterfly super-rounds.
    let wht_sp = treeemb_obs::span!("fjlt.wht");
    let total_bits = params.d_pad.trailing_zeros();
    // Group size: each class holds 2^b coords of one point; a machine
    // must fit many classes, so bound 2^b by a quarter of capacity.
    let b_max = (rt.capacity() / 8).max(2).ilog2();
    let b = b_max.min(total_bits).max(1);
    let mut lo = 0u32;
    while lo < total_bits {
        let hi = (lo + b).min(total_bits);
        let width = hi - lo;
        let blk = 1usize << width;
        let group_mask: u32 = ((blk - 1) as u32) << lo;
        let label = format!("fjlt:wht:{lo}..{hi}");
        // Route: class = (pt, idx with group bits cleared).
        let routed = rt.round(&label, dist, move |_, shard, em| {
            for r in shard {
                let class = ((r.pt as u64) << 32) | (r.idx & !group_mask) as u64;
                let dest = (mix2(class, 0x87A5) % m as u64) as usize;
                em.send(dest, r);
            }
            Vec::new()
        })?;
        // Local stages: gather each class into a dense block, butterfly.
        dist = rt.map_local(routed, move |_, shard| {
            let mut classes: std::collections::BTreeMap<(u32, u32), Vec<f64>> =
                std::collections::BTreeMap::new();
            for r in shard {
                let rest = r.idx & !group_mask;
                let slot = ((r.idx & group_mask) >> lo) as usize;
                classes
                    .entry((r.pt, rest))
                    .or_insert_with(|| vec![0.0; blk])[slot] = r.val;
            }
            let mut out = Vec::with_capacity(classes.len() * blk);
            for ((pt, rest), mut vals) in classes {
                treeemb_linalg::wht::wht_inplace(&mut vals);
                for (t, v) in vals.into_iter().enumerate() {
                    if v != 0.0 {
                        out.push(Coord {
                            pt,
                            idx: rest | ((t as u32) << lo),
                            val: v,
                        });
                    }
                }
            }
            out
        })?;
        lo = hi;
    }
    drop(wht_sp);

    // Phase P: sparse fan-out + aggregation.
    let project_sp = treeemb_obs::span!("fjlt.project");
    let p_p = *params;
    let routed = rt.round("fjlt:project", dist, move |_, shard, em| {
        // Per-machine column cache: distinct idx values repeat across
        // points on the same machine.
        let mut cache: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
        for r in shard {
            let col = cache.entry(r.idx).or_insert_with(|| {
                fjlt_projection_column(p_p.k, p_p.d_pad, p_p.q, p_p.p_seed(), r.idx as usize)
            });
            for &(i, pij) in col.iter() {
                let key = ((r.pt as u64) << 32) | i as u64;
                let dest = (mix2(key, 0x9B0B) % m as u64) as usize;
                em.send(
                    dest,
                    Coord {
                        pt: r.pt,
                        idx: i,
                        val: pij * r.val,
                    },
                );
            }
        }
        Vec::new()
    })?;
    let scale = params.output_scale();
    let summed = rt.map_local(routed, move |_, shard| {
        let mut acc: std::collections::BTreeMap<(u32, u32), f64> =
            std::collections::BTreeMap::new();
        for r in shard {
            *acc.entry((r.pt, r.idx)).or_insert(0.0) += r.val;
        }
        acc.into_iter()
            .map(|((pt, idx), val)| Coord {
                pt,
                idx,
                val: val * scale,
            })
            .collect()
    })?;

    drop(project_sp);

    // Gather into a dense k-dimensional point set.
    let _gather_sp = treeemb_obs::span!("fjlt.gather");
    let out_records = rt.gather(summed);
    let mut flat = vec![0.0; n * params.k];
    for r in out_records {
        flat[r.pt as usize * params.k + r.idx as usize] = r.val;
    }
    Ok(PointSet::from_flat(params.k, flat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fjlt::Fjlt;
    use treeemb_geom::generators;
    use treeemb_mpc::MpcConfig;

    fn runtime(cap: usize, machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 16, cap, machines).with_threads(4))
            .build()
    }

    #[test]
    fn matches_sequential_transform() {
        let ps = generators::uniform_cube(12, 24, 256, 3);
        let params = FjltParams::explicit(24, 8, 0.5, 42);
        let seq = Fjlt::new(params).apply(&ps);
        let mut rt = runtime(4096, 8);
        let par = fjlt_mpc(&mut rt, &ps, &params).unwrap();
        assert_eq!(par.len(), 12);
        assert_eq!(par.dim(), 8);
        for i in 0..ps.len() {
            for j in 0..8 {
                let (a, b) = (seq.point(i)[j], par.point(i)[j]);
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_across_machine_counts() {
        let ps = generators::uniform_cube(6, 16, 64, 5);
        let params = FjltParams::explicit(16, 4, 0.7, 9);
        let seq = Fjlt::new(params).apply(&ps);
        for machines in [1usize, 3, 16] {
            let mut rt = runtime(8192, machines);
            let par = fjlt_mpc(&mut rt, &ps, &params).unwrap();
            for i in 0..ps.len() {
                for j in 0..4 {
                    assert!(
                        (seq.point(i)[j] - par.point(i)[j]).abs() < 1e-9,
                        "machines {machines}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_count_is_constant_in_n() {
        let params = FjltParams::explicit(32, 8, 0.5, 1);
        let mut rounds = Vec::new();
        for n in [8usize, 32, 128] {
            let ps = generators::uniform_cube(n, 32, 512, 7);
            let mut rt = runtime(1 << 14, 16);
            let _ = fjlt_mpc(&mut rt, &ps, &params).unwrap();
            rounds.push(rt.metrics().rounds());
        }
        assert_eq!(rounds[0], rounds[1]);
        assert_eq!(rounds[1], rounds[2]);
    }

    #[test]
    fn wht_rounds_shrink_with_capacity() {
        let ps = generators::uniform_cube(8, 64, 128, 2);
        let params = FjltParams::explicit(64, 8, 0.5, 3);
        // Lenient: this test only cares about WHT round counts, and the
        // P fan-out legitimately overloads a 64-word machine.
        let mut small = Runtime::builder()
            .config(
                MpcConfig::explicit(1 << 16, 64, 64)
                    .with_threads(4)
                    .lenient(),
            )
            .build();
        let _ = fjlt_mpc(&mut small, &ps, &params).unwrap();
        let mut big = runtime(1 << 14, 64);
        let _ = fjlt_mpc(&mut big, &ps, &params).unwrap();
        let small_wht = small.metrics().rounds_labeled("fjlt:wht");
        let big_wht = big.metrics().rounds_labeled("fjlt:wht");
        assert!(small_wht > big_wht, "{small_wht} vs {big_wht}");
        assert_eq!(
            big_wht, 1,
            "big capacity should do the WHT in one super-round"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let ps = PointSet::new(4);
        let params = FjltParams::explicit(4, 2, 0.5, 1);
        let mut rt = runtime(1024, 4);
        let out = fjlt_mpc(&mut rt, &ps, &params).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn preserves_distances_like_sequential() {
        let ps = generators::uniform_cube(16, 48, 1024, 11);
        let params = FjltParams::for_dataset(16, 48, 0.45, 13);
        let mut rt = runtime(1 << 15, 8);
        let out = fjlt_mpc(&mut rt, &ps, &params).unwrap();
        let report = crate::audit::distortion_report(&ps, &out);
        assert!(
            report.max_expansion < 2.0 && report.max_contraction > 0.5,
            "{report:?}"
        );
    }
}
