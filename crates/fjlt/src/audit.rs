//! Distortion audits: compare embedded to original pairwise distances.

use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Summary of pairwise distortion of an embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct DistortionReport {
    /// Largest ratio `emb/orig` over all pairs (≥ 1 means expansion).
    pub max_expansion: f64,
    /// Smallest ratio `emb/orig` over all pairs (≤ 1 means contraction).
    pub max_contraction: f64,
    /// Mean ratio.
    pub mean_ratio: f64,
    /// Root-mean-square deviation of the ratio from 1.
    pub rms_deviation: f64,
    /// Number of pairs audited.
    pub pairs: usize,
}

impl DistortionReport {
    /// True when every pairwise ratio lies within `(1±xi)`.
    pub fn within(&self, xi: f64) -> bool {
        self.max_expansion <= 1.0 + xi && self.max_contraction >= 1.0 - xi
    }
}

/// Per-row partial of the pair sweep (folded in row order so the report
/// is independent of the thread count).
struct RowPartial {
    max_expansion: f64,
    max_contraction: f64,
    sum: f64,
    sum_sq_dev: f64,
    pairs: usize,
}

/// Audits all pairs (`O(n²·d)`): original vs embedded distances. Pairs
/// of coincident original points are skipped.
///
/// # Panics
/// Panics if the sets disagree on cardinality.
pub fn distortion_report(original: &PointSet, embedded: &PointSet) -> DistortionReport {
    distortion_report_parallel(original, embedded, 1)
}

/// [`distortion_report`] with the pair sweep fanned out over `threads`
/// workers, one row per work item. The report is identical for every
/// thread count (per-row partials are folded in row order).
pub fn distortion_report_parallel(
    original: &PointSet,
    embedded: &PointSet,
    threads: usize,
) -> DistortionReport {
    assert_eq!(original.len(), embedded.len(), "point count mismatch");
    let _sp = treeemb_obs::span!("audit.distortion", "n" = original.len());
    let n = original.len();
    let rows: Vec<RowPartial> = treeemb_mpc::exec::par_map_indexed(
        (0..n).collect::<Vec<usize>>(),
        threads.max(1),
        |_, i| {
            let mut row = RowPartial {
                max_expansion: f64::MIN,
                max_contraction: f64::MAX,
                sum: 0.0,
                sum_sq_dev: 0.0,
                pairs: 0,
            };
            for j in (i + 1)..n {
                let orig = dist(original.point(i), original.point(j));
                if orig == 0.0 {
                    continue;
                }
                let emb = dist(embedded.point(i), embedded.point(j));
                let ratio = emb / orig;
                row.max_expansion = row.max_expansion.max(ratio);
                row.max_contraction = row.max_contraction.min(ratio);
                row.sum += ratio;
                row.sum_sq_dev += (ratio - 1.0) * (ratio - 1.0);
                row.pairs += 1;
            }
            row
        },
    );
    let mut max_expansion = f64::MIN;
    let mut max_contraction = f64::MAX;
    let mut sum = 0.0;
    let mut sum_sq_dev = 0.0;
    let mut pairs = 0usize;
    for row in rows {
        max_expansion = max_expansion.max(row.max_expansion);
        max_contraction = max_contraction.min(row.max_contraction);
        sum += row.sum;
        sum_sq_dev += row.sum_sq_dev;
        pairs += row.pairs;
    }
    if pairs == 0 {
        return DistortionReport {
            max_expansion: 1.0,
            max_contraction: 1.0,
            mean_ratio: 1.0,
            rms_deviation: 0.0,
            pairs: 0,
        };
    }
    DistortionReport {
        max_expansion,
        max_contraction,
        mean_ratio: sum / pairs as f64,
        rms_deviation: (sum_sq_dev / pairs as f64).sqrt(),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_embedding_has_unit_ratios() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]]);
        let r = distortion_report(&ps, &ps);
        assert_eq!(r.max_expansion, 1.0);
        assert_eq!(r.max_contraction, 1.0);
        assert_eq!(r.pairs, 3);
        assert!(r.within(0.01));
    }

    #[test]
    fn doubling_map_reports_expansion_two() {
        let a = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        let b = PointSet::from_rows(&[vec![0.0], vec![2.0]]);
        let r = distortion_report(&a, &b);
        assert_eq!(r.max_expansion, 2.0);
        assert!(!r.within(0.5));
    }

    #[test]
    fn coincident_pairs_are_skipped() {
        let a = PointSet::from_rows(&[vec![0.0], vec![0.0], vec![1.0]]);
        let b = PointSet::from_rows(&[vec![5.0], vec![9.0], vec![6.0]]);
        let r = distortion_report(&a, &b);
        assert_eq!(r.pairs, 2);
    }

    #[test]
    fn parallel_report_matches_serial_bitwise() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i * 3 % 11) as f64, i as f64 * 0.5])
            .collect();
        let emb_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|x| x * 1.03 + 0.1).collect())
            .collect();
        let a = PointSet::from_rows(&rows);
        let b = PointSet::from_rows(&emb_rows);
        let serial = distortion_report(&a, &b);
        for threads in [2, 8] {
            assert_eq!(serial, distortion_report_parallel(&a, &b, threads));
        }
    }

    #[test]
    fn degenerate_sets_report_cleanly() {
        let a = PointSet::from_rows(&[vec![1.0]]);
        let r = distortion_report(&a, &a);
        assert_eq!(r.pairs, 0);
        assert!(r.within(0.0));
    }
}
