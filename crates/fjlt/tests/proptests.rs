//! Property tests for the JL layer: linearity, seed determinism, and
//! sequential/MPC agreement on arbitrary inputs.

use proptest::prelude::*;
use treeemb_fjlt::fjlt::{Fjlt, FjltParams};
use treeemb_fjlt::mpc::fjlt_mpc;
use treeemb_geom::PointSet;
use treeemb_mpc::{MpcConfig, Runtime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fjlt_is_linear(
        seed in 0u64..10_000,
        a in proptest::collection::vec(-10f64..10.0, 16),
        b in proptest::collection::vec(-10f64..10.0, 16),
        alpha in -3f64..3.0,
    ) {
        let f = Fjlt::new(FjltParams::explicit(16, 6, 0.5, seed));
        let fa = f.apply_vec(&a);
        let fb = f.apply_vec(&b);
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let fc = f.apply_vec(&combo);
        for i in 0..6 {
            let expect = alpha * fa[i] + fb[i];
            prop_assert!(
                (fc[i] - expect).abs() <= 1e-8 * (1.0 + expect.abs()),
                "coordinate {i}: {} vs {expect}", fc[i]
            );
        }
    }

    #[test]
    fn zero_maps_to_zero(seed in 0u64..10_000) {
        let f = Fjlt::new(FjltParams::explicit(8, 4, 0.5, seed));
        let y = f.apply_vec(&[0.0; 8]);
        prop_assert!(y.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn mpc_agrees_with_sequential_on_arbitrary_input(
        seed in 0u64..10_000,
        rows in proptest::collection::vec(
            proptest::collection::vec(-20f64..20.0, 8),
            1..10,
        ),
        machines in 1usize..12,
    ) {
        let ps = PointSet::from_rows(&rows);
        let params = FjltParams::explicit(8, 4, 0.6, seed);
        let seq = Fjlt::new(params).apply(&ps);
        let mut rt = Runtime::builder().config(MpcConfig::explicit(1 << 12, 1 << 12, machines).with_threads(2)).build();
        let par = fjlt_mpc(&mut rt, &ps, &params).unwrap();
        for i in 0..ps.len() {
            for j in 0..4 {
                let (a, b) = (seq.point(i)[j], par.point(i)[j]);
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn deterministic_in_seed_and_sensitive_to_it(
        seed in 0u64..10_000,
        x in proptest::collection::vec(-5f64..5.0, 32),
    ) {
        let p1 = FjltParams::explicit(32, 8, 0.4, seed);
        let f1 = Fjlt::new(p1);
        let f1b = Fjlt::new(p1);
        prop_assert_eq!(f1.apply_vec(&x), f1b.apply_vec(&x));
        // A different seed gives a different map (except on the zero
        // vector or vanishing-probability coincidences).
        if x.iter().any(|v| v.abs() > 0.5) {
            let f2 = Fjlt::new(FjltParams::explicit(32, 8, 0.4, seed ^ 0xDEAD));
            prop_assert_ne!(f1.apply_vec(&x), f2.apply_vec(&x));
        }
    }
}
