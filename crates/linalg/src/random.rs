//! Counter-based random streams.
//!
//! MPC algorithms share randomness by broadcasting a seed; every machine
//! must then be able to re-derive *the same* random objects (the
//! diagonal `D`, the sparse `P`, grid shift vectors) locally without
//! further communication. Counter-based derivation — a stateless mix of
//! `(seed, index)` — gives exactly that, with no sequential state to
//! synchronize.

use rand::{rngs::StdRng, SeedableRng};

/// SplitMix64-style finalizer over a seed/counter pair.
#[inline]
pub fn mix2(seed: u64, ctr: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .wrapping_add(ctr)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes three values (seed + two coordinates, e.g. `(level, bucket)`).
#[inline]
pub fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    mix2(mix2(seed, a), b)
}

/// Uniform `f64` in `[0, 1)` derived from a seed/counter pair.
#[inline]
pub fn unit_f64(seed: u64, ctr: u64) -> f64 {
    // 53 high-quality mantissa bits.
    (mix2(seed, ctr) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rademacher ±1 sign derived from a seed/counter pair — the diagonal
/// `D` of the FJLT is `sign(seed, i)` without materializing the matrix.
#[inline]
pub fn sign(seed: u64, ctr: u64) -> f64 {
    if mix2(seed, ctr) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Standard normal variate from a seed/counter pair (Box–Muller over two
/// derived uniforms). Used for the nonzero entries of `P`.
#[inline]
pub fn gaussian(seed: u64, ctr: u64) -> f64 {
    let u1 = 1.0 - unit_f64(seed, ctr.wrapping_mul(2));
    let u2 = unit_f64(seed, ctr.wrapping_mul(2).wrapping_add(1));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Bernoulli trial with probability `p`.
#[inline]
pub fn bernoulli(seed: u64, ctr: u64, p: f64) -> bool {
    unit_f64(seed, ctr) < p
}

/// A seeded `StdRng` derived from a seed/counter pair, for code that
/// wants a full sequential RNG per (machine, task).
pub fn derived_rng(seed: u64, ctr: u64) -> StdRng {
    StdRng::seed_from_u64(mix2(seed, ctr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix2_deterministic_and_sensitive() {
        assert_eq!(mix2(5, 9), mix2(5, 9));
        assert_ne!(mix2(5, 9), mix2(5, 10));
        assert_ne!(mix2(5, 9), mix2(6, 9));
        assert_ne!(mix2(0, 0), 0);
    }

    #[test]
    fn unit_f64_is_in_range_and_uniformish() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| unit_f64(42, i)).sum::<f64>() / n as f64;
        for i in 0..1000 {
            let u = unit_f64(7, i);
            assert!((0.0..1.0).contains(&u));
        }
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn signs_are_balanced() {
        let n = 20_000;
        let sum: f64 = (0..n).map(|i| sign(3, i)).sum();
        assert!(sum.abs() / (n as f64) < 0.03);
    }

    #[test]
    fn gaussian_moments() {
        let n = 40_000u64;
        let vals: Vec<f64> = (0..n).map(|i| gaussian(11, i)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let n = 30_000u64;
        let hits = (0..n).filter(|&i| bernoulli(99, i, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn derived_rngs_are_reproducible() {
        use rand::Rng;
        let mut a = derived_rng(1, 2);
        let mut b = derived_rng(1, 2);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn mix3_distinguishes_coordinate_order() {
        assert_ne!(mix3(1, 2, 3), mix3(1, 3, 2));
    }
}
