//! Compressed-sparse-column matrices and the FJLT's sparse Gaussian `P`.

use crate::random;

/// A sparse `rows × cols` matrix in compressed-sparse-column layout.
/// Column-major because the FJLT applies `P` to column vectors `HDx`:
/// `y += P[:, j] · x[j]` walks one column per input coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// Start offset of each column in `row_idx`/`values`; length `cols+1`.
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds from column-grouped triplets: `entries[j]` lists the
    /// `(row, value)` pairs of column `j` (rows need not be sorted).
    pub fn from_columns(rows: usize, entries: Vec<Vec<(u32, f64)>>) -> Self {
        let cols = entries.len();
        let nnz = entries.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in entries {
            for (r, v) in col {
                assert!((r as usize) < rows, "row index out of range");
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        Self {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` pairs of column `j`.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// `y = A·x` for a dense column vector `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for (r, v) in self.column(j) {
                y[r as usize] += v * xj;
            }
        }
        y
    }

    /// Dense representation (row-major), for tests and tiny matrices.
    #[allow(clippy::needless_range_loop)] // j indexes both the matrix and `out`
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for j in 0..self.cols {
            for (r, v) in self.column(j) {
                out[r as usize][j] = v;
            }
        }
        out
    }
}

/// The FJLT projection matrix `P`: a `k × d` matrix whose entries are 0
/// with probability `1 − q` and `N(0, q⁻¹)` otherwise (paper §5).
///
/// Entries are derived from `(seed, flat index)` counter streams, so any
/// machine holding the seed can regenerate any column on demand — this
/// is how the MPC implementation avoids materializing `P` globally.
pub fn fjlt_projection(k: usize, d: usize, q: f64, seed: u64) -> CscMatrix {
    let mut cols = Vec::with_capacity(d);
    for j in 0..d {
        cols.push(fjlt_projection_column(k, d, q, seed, j));
    }
    CscMatrix::from_columns(k, cols)
}

/// One column of [`fjlt_projection`], regenerable independently.
pub fn fjlt_projection_column(k: usize, d: usize, q: f64, seed: u64, j: usize) -> Vec<(u32, f64)> {
    assert!(j < d);
    let inv_sqrt_q = (1.0 / q).sqrt();
    let mut col = Vec::new();
    for i in 0..k {
        let flat = (i * d + j) as u64;
        if random::bernoulli(seed, flat, q) {
            // Distinct counter stream for the Gaussian value.
            let g = random::gaussian(seed ^ 0xA5A5_5A5A_DEAD_BEEF, flat);
            col.push((i as u32, g * inv_sqrt_q));
        }
    }
    col
}

/// Expected nonzero count of the FJLT `P` (`k·d·q`), used by space
/// audits (Theorem 3 charges `O(ξ⁻² log³ n)` words for `P`).
pub fn fjlt_expected_nnz(k: usize, d: usize, q: f64) -> f64 {
    k as f64 * d as f64 * q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_round_trip_dense() {
        let m = CscMatrix::from_columns(2, vec![vec![(0, 1.0)], vec![], vec![(1, 2.0), (0, 3.0)]]);
        assert_eq!(m.to_dense(), vec![vec![1.0, 0.0, 3.0], vec![0.0, 0.0, 2.0]]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = CscMatrix::from_columns(
            3,
            vec![vec![(0, 2.0), (2, 1.0)], vec![(1, -1.0)], vec![(0, 0.5)]],
        );
        let x = [1.0, 2.0, 4.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![2.0 + 2.0, -2.0, 1.0]);
    }

    #[test]
    fn projection_is_deterministic_per_seed() {
        let a = fjlt_projection(8, 32, 0.5, 7);
        let b = fjlt_projection(8, 32, 0.5, 7);
        let c = fjlt_projection(8, 32, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn projection_columns_regenerate_independently() {
        let m = fjlt_projection(8, 32, 0.4, 11);
        for j in [0usize, 5, 31] {
            let col: Vec<(u32, f64)> = m.column(j).collect();
            assert_eq!(col, fjlt_projection_column(8, 32, 0.4, 11, j));
        }
    }

    #[test]
    fn projection_density_tracks_q() {
        let (k, d, q) = (64, 512, 0.25);
        let m = fjlt_projection(k, d, q, 3);
        let expect = fjlt_expected_nnz(k, d, q);
        let got = m.nnz() as f64;
        assert!((got - expect).abs() < 0.1 * expect, "nnz {got} vs {expect}");
    }

    #[test]
    fn projection_entries_have_unit_second_moment() {
        // E[P_ij^2] = q * (1/q) = 1, so E||P x||^2 = k ||x||^2 for unit x.
        let (k, d, q) = (32, 256, 0.3);
        let m = fjlt_projection(k, d, q, 5);
        let sum_sq: f64 = (0..d).flat_map(|j| m.column(j).map(|(_, v)| v * v)).sum();
        let expect = (k * d) as f64; // sum over all kd entries of E[P^2] = kd
        assert!(
            (sum_sq - expect).abs() < 0.15 * expect,
            "{sum_sq} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dims() {
        let m = CscMatrix::from_columns(2, vec![vec![(0, 1.0)]]);
        let _ = m.mul_vec(&[1.0, 2.0]);
    }
}
