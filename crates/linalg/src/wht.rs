//! Fast Walsh–Hadamard transform (WHT).
//!
//! The FJLT's `H` is the normalized Walsh–Hadamard matrix
//! `H_{i,j} = d^{-1/2} · (−1)^{⟨i−1, j−1⟩}` (paper §5). The fast
//! transform is the classic in-place butterfly over `log₂ d` stages,
//! `O(d log d)` operations. The same butterfly stages, grouped into
//! `O(1/ε)` super-rounds, drive the distributed WHT in `treeemb-fjlt`.

/// Butterfly block size for cache-blocked large transforms: 2^11 f64s =
/// 16 KiB, comfortably inside L1 on every mainstream core.
const BLOCK_LOG2: u32 = 11;

/// In-place *unnormalized* Walsh–Hadamard transform.
///
/// After the call, `data[i] = Σ_j (−1)^{⟨i,j⟩} input[j]`.
///
/// For lengths above 2^11 the butterfly stages are cache-blocked: every
/// stage with span ≤ the block size runs to completion inside one block
/// before the next block is touched, so each block crosses the cache
/// once instead of `log₂ n` times. The individual butterflies — operand
/// pairs and operation order per element — are unchanged, so the result
/// is bit-identical to the straight stage-by-stage transform.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (callers zero-pad; see
/// [`next_pow2`]).
pub fn wht_inplace(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "WHT length must be a power of two, got {n}"
    );
    let total = n.trailing_zeros();
    if total <= BLOCK_LOG2 {
        wht_stages_inplace(data, 0, total);
        return;
    }
    for block in data.chunks_exact_mut(1 << BLOCK_LOG2) {
        wht_stages_inplace(block, 0, BLOCK_LOG2);
    }
    wht_stages_inplace(data, BLOCK_LOG2, total);
}

/// In-place *normalized* (orthonormal) Walsh–Hadamard transform:
/// multiplies by `H / √d`, which is an involution (applying it twice
/// returns the input).
///
/// ```
/// use treeemb_linalg::wht::wht_normalized_inplace;
/// let mut data = vec![1.0, 2.0, 3.0, 4.0];
/// wht_normalized_inplace(&mut data);
/// wht_normalized_inplace(&mut data); // involution
/// assert!((data[2] - 3.0).abs() < 1e-12);
/// ```
pub fn wht_normalized_inplace(data: &mut [f64]) {
    wht_inplace(data);
    let scale = 1.0 / (data.len() as f64).sqrt();
    for x in data {
        *x *= scale;
    }
}

/// Applies only butterfly stages `[stage_lo, stage_hi)` of the WHT
/// (stage `s` pairs indices that differ in bit `s`). The full transform
/// is the composition of all `log₂ n` stages in any order — this is what
/// lets the MPC implementation group stages into super-rounds.
pub fn wht_stages_inplace(data: &mut [f64], stage_lo: u32, stage_hi: u32) {
    let n = data.len();
    assert!(n.is_power_of_two());
    let total = n.trailing_zeros();
    assert!(
        stage_lo <= stage_hi && stage_hi <= total,
        "invalid stage range"
    );
    for s in stage_lo..stage_hi {
        let h = 1usize << s;
        for block in data.chunks_exact_mut(2 * h) {
            let (lo, hi) = block.split_at_mut(h);
            for (a, b) in lo.iter_mut().zip(hi) {
                let x = *a;
                let y = *b;
                *a = x + y;
                *b = x - y;
            }
        }
    }
}

/// Single Walsh–Hadamard matrix entry (±1, unnormalized):
/// `(−1)^{popcount(i & j)}`.
#[inline]
pub fn hadamard_entry(i: usize, j: usize) -> f64 {
    if (i & j).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn naive_wht(input: &[f64]) -> Vec<f64> {
        let n = input.len();
        (0..n)
            .map(|i| (0..n).map(|j| hadamard_entry(i, j) * input[j]).sum())
            .collect()
    }

    #[test]
    fn matches_naive_on_small_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for log_n in 0..7 {
            let n = 1usize << log_n;
            let input: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut fast = input.clone();
            wht_inplace(&mut fast);
            let naive = naive_wht(&input);
            for (a, b) in fast.iter().zip(&naive) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn normalized_transform_is_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let input: Vec<f64> = (0..256).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut data = input.clone();
        wht_normalized_inplace(&mut data);
        wht_normalized_inplace(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_transform_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let input: Vec<f64> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let before: f64 = input.iter().map(|x| x * x).sum();
        let mut data = input;
        wht_normalized_inplace(&mut data);
        let after: f64 = data.iter().map(|x| x * x).sum();
        assert!((before - after).abs() < 1e-9 * before.max(1.0));
    }

    #[test]
    fn staged_composition_equals_full_transform() {
        let mut rng = StdRng::seed_from_u64(4);
        let input: Vec<f64> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut full = input.clone();
        wht_inplace(&mut full);
        // Apply stages in three chunks: [0,2), [2,5), [5,6).
        let mut staged = input;
        wht_stages_inplace(&mut staged, 0, 2);
        wht_stages_inplace(&mut staged, 2, 5);
        wht_stages_inplace(&mut staged, 5, 6);
        for (a, b) in staged.iter().zip(&full) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn stage_order_commutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let input: Vec<f64> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut forward = input.clone();
        wht_stages_inplace(&mut forward, 0, 3);
        wht_stages_inplace(&mut forward, 3, 5);
        let mut reverse = input;
        wht_stages_inplace(&mut reverse, 3, 5);
        wht_stages_inplace(&mut reverse, 0, 3);
        for (a, b) in forward.iter().zip(&reverse) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_transform_is_bit_identical_to_staged() {
        // Lengths above the block size take the cache-blocked path; it
        // must agree bit for bit with the plain staged composition.
        let mut rng = StdRng::seed_from_u64(6);
        for log_n in [12u32, 13] {
            let n = 1usize << log_n;
            let input: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut blocked = input.clone();
            wht_inplace(&mut blocked);
            let mut staged = input;
            wht_stages_inplace(&mut staged, 0, log_n);
            assert_eq!(blocked, staged, "n={n}");
        }
    }

    #[test]
    fn impulse_spreads_uniformly() {
        // WHT of a delta at 0 is the all-ones vector.
        let mut data = vec![0.0; 16];
        data[0] = 1.0;
        wht_inplace(&mut data);
        assert!(data.iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![0.0; 3];
        wht_inplace(&mut data);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
    }

    #[test]
    fn hadamard_entry_symmetry() {
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(hadamard_entry(i, j), hadamard_entry(j, i));
            }
        }
    }
}
