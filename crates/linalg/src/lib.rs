//! Linear-algebra substrate for the FJLT and the embedding pipelines.
//!
//! * [`wht`] — the in-place fast Walsh–Hadamard transform (`H` in the
//!   FJLT is exactly the normalized Walsh–Hadamard matrix);
//! * [`sparse`] — a compressed-sparse-column matrix with seeded random
//!   construction (the FJLT's sparse Gaussian `P`);
//! * [`random`] — counter-based random streams so `D`, `P` and grid
//!   shifts can be re-derived anywhere in the cluster from one shared
//!   seed.

pub mod random;
pub mod sparse;
pub mod wht;
