//! Error type shared by the embedding pipelines.

use std::fmt;
use treeemb_mpc::MpcError;

/// Failures of the embedding algorithms. Theorem 1's algorithm "reports
/// failure" (with probability `1/poly(n)`) rather than producing a bad
/// tree; this type is that report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmbedError {
    /// A ball-partitioning grid sequence failed to cover a point within
    /// its `U` budget (Lemma 7's low-probability event).
    CoverageFailure {
        /// Level at which coverage failed.
        level: usize,
        /// Bucket within the level.
        bucket: usize,
        /// Point left uncovered.
        point: usize,
    },
    /// Input had no points.
    EmptyInput,
    /// The `min_sep` floor was not positive, so no level schedule exists.
    BadSeparation(f64),
    /// The input contains non-finite coordinates.
    NonFiniteInput {
        /// Offending point.
        point: usize,
    },
    /// An MPC-layer failure (capacity, routing, …).
    Mpc(MpcError),
    /// Tree assembly from the distributed edge list failed (should be
    /// unreachable; indicates a structural-hash collision).
    TreeAssembly(String),
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::CoverageFailure { level, bucket, point } => write!(
                f,
                "ball partitioning failed to cover point {point} (level {level}, bucket {bucket}); increase the grid budget U"
            ),
            EmbedError::EmptyInput => write!(f, "cannot embed an empty point set"),
            EmbedError::BadSeparation(s) => write!(f, "minimum separation {s} must be positive"),
            EmbedError::NonFiniteInput { point } => {
                write!(f, "point {point} has a non-finite coordinate")
            }
            EmbedError::Mpc(e) => write!(f, "MPC failure: {e}"),
            EmbedError::TreeAssembly(msg) => write!(f, "tree assembly failed: {msg}"),
        }
    }
}

impl EmbedError {
    /// Whether a fresh attempt of the whole pipeline could plausibly
    /// succeed. Delegates to [`MpcError::is_retryable`] for MPC-layer
    /// failures (exchange-retry or crash-recovery exhaustion under
    /// fault injection); every algorithm-level failure is deterministic
    /// for a fixed input/seed and will recur. This is the predicate
    /// [`crate::pipeline::run_faulted`] gates its attempt loop on.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EmbedError::Mpc(e) if e.is_retryable())
    }
}

impl std::error::Error for EmbedError {}

impl From<MpcError> for EmbedError {
    fn from(e: MpcError) -> Self {
        EmbedError::Mpc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EmbedError::CoverageFailure {
            level: 3,
            bucket: 1,
            point: 42,
        };
        let s = e.to_string();
        assert!(s.contains("point 42") && s.contains("level 3"));
    }

    #[test]
    fn mpc_errors_convert() {
        let e: EmbedError = MpcError::AlgorithmFailure("x".into()).into();
        assert!(matches!(e, EmbedError::Mpc(_)));
    }

    #[test]
    fn retryability_follows_the_mpc_layer() {
        let transient: EmbedError = MpcError::RetriesExhausted {
            round: 0,
            label: "x".into(),
            attempts: 2,
        }
        .into();
        assert!(transient.is_retryable());
        let crashed: EmbedError = MpcError::RecoveryExhausted {
            round: 0,
            label: "x".into(),
            machine: 1,
            attempts: 3,
        }
        .into();
        assert!(crashed.is_retryable());
        let algo: EmbedError = MpcError::AlgorithmFailure("x".into()).into();
        assert!(!algo.is_retryable());
        assert!(!EmbedError::EmptyInput.is_retryable());
    }
}
