//! Sequential tree embeddings: Algorithm 1 (hybrid partitioning,
//! Theorem 2) and the Arora grid-partitioning baseline it generalizes.
//!
//! Both embedders share a hierarchy driver: partition the point set at
//! the top scale, recurse into every part at half the scale, stop at
//! singletons (attaching the geometric-tail edge weight so the truncated
//! tree's metric equals the untruncated one), and attach surviving
//! duplicate groups as zero-weight sibling leaves after the last level.

use crate::error::EmbedError;
use crate::params::{GridParams, HybridParams};
use std::collections::HashMap;
use std::collections::VecDeque;
use treeemb_geom::PointSet;
use treeemb_hst::{Hst, HstBuilder};
use treeemb_linalg::random::mix3;
use treeemb_partition::{grid::ShiftedGrid, HybridLevel, LevelAssignment, PackedLevelKey};

/// Domain tag for hybrid-level seeds (shared with the MPC embedder so
/// both derive identical grids).
pub const HYBRID_LEVEL_TAG: u64 = 0x48594252; // "HYBR"
/// Domain tag for grid-level seeds.
pub const GRID_LEVEL_TAG: u64 = 0x47524944; // "GRID"

/// Per-level seed of the hybrid hierarchy.
#[inline]
pub fn hybrid_level_seed(seed: u64, level: usize) -> u64 {
    mix3(seed, HYBRID_LEVEL_TAG, level as u64)
}

/// A finished tree embedding.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The weighted tree; leaves carry the input point ids.
    pub tree: Hst,
    /// Which algorithm produced it.
    pub method: &'static str,
    /// Seed the randomness derived from.
    pub seed: u64,
}

impl Embedding {
    /// Tree-metric distance between two input points.
    pub fn tree_distance(&self, p: usize, q: usize) -> f64 {
        self.tree.distance(p, q)
    }
}

/// Builds a hierarchy from per-level assignment closures.
///
/// `assign(level, point)` returns the point's partition key at that
/// level (points with equal keys stay together), or `Err` on coverage
/// failure. `edge_weight(level)` / `tail_weight(level)` follow the
/// schedule semantics of [`HybridParams`].
pub(crate) fn build_hierarchy<K, F>(
    n: usize,
    num_levels: usize,
    assign: F,
    edge_weight: impl Fn(usize) -> f64,
    tail_weight: impl Fn(usize) -> f64,
) -> Result<Hst, EmbedError>
where
    K: Eq + std::hash::Hash,
    F: Fn(usize, usize) -> Result<K, EmbedError>,
{
    if n == 0 {
        return Err(EmbedError::EmptyInput);
    }
    let mut b = HstBuilder::new();
    let root = b.add_root();
    let mut queue: VecDeque<(usize, Vec<usize>, usize)> = VecDeque::new();
    queue.push_back((root, (0..n).collect(), 0));
    while let Some((parent, members, level)) = queue.pop_front() {
        if level == num_levels {
            // Only exact duplicates survive every level (the bottom
            // scale separates any pair at distance >= min_sep).
            for p in members {
                b.add_child(parent, 0.0, Some(p));
            }
            continue;
        }
        // Group members by their level key, preserving first-seen order
        // for determinism.
        let mut index: HashMap<K, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for p in members {
            let key = assign(level, p)?;
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(p),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push(vec![p]);
                }
            }
        }
        for group in groups {
            if group.len() == 1 {
                // Singleton: truncate the chain, attach the leaf with the
                // geometric tail weight.
                b.add_child(parent, tail_weight(level), Some(group[0]));
            } else {
                let node = b.add_child(parent, edge_weight(level), None);
                queue.push_back((node, group, level + 1));
            }
        }
    }
    b.finish()
        .map_err(|e| EmbedError::TreeAssembly(e.to_string()))
}

/// Algorithm 1: the sequential hybrid-partitioning embedder.
#[derive(Debug, Clone)]
pub struct SeqEmbedder {
    params: HybridParams,
}

impl SeqEmbedder {
    /// Creates an embedder for a fixed parameter schedule.
    pub fn new(params: HybridParams) -> Self {
        Self { params }
    }

    /// The schedule in force.
    pub fn params(&self) -> &HybridParams {
        &self.params
    }

    /// Materializes the per-level hybrid partitionings for `seed`
    /// (shared with the MPC embedder — identical derivation).
    pub fn build_levels(&self, seed: u64) -> Vec<HybridLevel> {
        self.params
            .levels
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                HybridLevel::new(
                    self.params.dim,
                    self.params.r,
                    w,
                    self.params.grids_per_bucket,
                    hybrid_level_seed(seed, i),
                )
            })
            .collect()
    }

    /// Embeds `ps` into a tree (Theorem 2 guarantees: domination always;
    /// expected distortion `O(√(d·r)·logΔ)`). Single-threaded; see
    /// [`Self::embed_parallel`].
    pub fn embed(&self, ps: &PointSet, seed: u64) -> Result<Embedding, EmbedError> {
        self.embed_with_threads(ps, seed, 1)
    }

    /// [`Self::embed`] with all point assignments computed concurrently
    /// on `threads` workers. The tree is identical to the sequential
    /// result (assignments are pure functions; grouping order is fixed
    /// by point id).
    pub fn embed_parallel(
        &self,
        ps: &PointSet,
        seed: u64,
        threads: usize,
    ) -> Result<Embedding, EmbedError> {
        self.embed_with_threads(ps, seed, threads.max(1))
    }

    fn embed_with_threads(
        &self,
        ps: &PointSet,
        seed: u64,
        threads: usize,
    ) -> Result<Embedding, EmbedError> {
        if exact_keys_requested() {
            return self.embed_exact_keys(ps, seed, threads);
        }
        let padded = ps.zero_pad(self.params.dim);
        let levels = self.build_levels(seed);
        let tree = self.packed_hierarchy(&padded, &levels, threads)?;
        Ok(Embedding {
            tree,
            method: "hybrid",
            seed,
        })
    }

    /// [`Self::embed`] via the exact-key verification path: partitions
    /// are grouped by the materialized per-bucket lattice cells instead
    /// of packed 128-bit hashes. Produces the identical tree (unless a
    /// ~2⁻¹²⁸-probability hash collision separates the paths); kept
    /// callable for verification and for the kernel snapshot bench.
    /// Setting `TREEEMB_EXACT_KEYS=1` routes [`Self::embed`] here too.
    pub fn embed_exact_keys(
        &self,
        ps: &PointSet,
        seed: u64,
        threads: usize,
    ) -> Result<Embedding, EmbedError> {
        let padded = ps.zero_pad(self.params.dim);
        let levels = self.build_levels(seed);
        let tree = self.exact_hierarchy(&padded, &levels, threads)?;
        Ok(Embedding {
            tree,
            method: "hybrid",
            seed,
        })
    }

    /// The default hot path: every (point, level) assignment is hashed
    /// into a copyable 128-bit [`PackedLevelKey`] in parallel, so
    /// grouping never clones per-bucket lattice cells. The resulting
    /// tree equals the exact path's whp (packed keys collide with
    /// probability ~2^-128 per pair; see the partition proptests).
    fn packed_hierarchy(
        &self,
        padded: &PointSet,
        levels: &[HybridLevel],
        threads: usize,
    ) -> Result<treeemb_hst::Hst, EmbedError> {
        let per_point: Vec<Result<Vec<PackedLevelKey>, EmbedError>> =
            treeemb_mpc::exec::par_map_indexed(
                (0..padded.len()).collect::<Vec<usize>>(),
                threads,
                |_, p| {
                    levels
                        .iter()
                        .enumerate()
                        .map(|(level, lvl)| {
                            lvl.assign_packed(padded.point(p)).ok_or_else(|| {
                                let bucket = failing_bucket(lvl, padded.point(p));
                                EmbedError::CoverageFailure {
                                    level,
                                    bucket,
                                    point: p,
                                }
                            })
                        })
                        .collect()
                },
            );
        let mut keys = Vec::with_capacity(per_point.len());
        for r in per_point {
            keys.push(r?);
        }
        build_hierarchy(
            padded.len(),
            levels.len(),
            |level, p| Ok(keys[p][level]),
            |level| self.params.edge_weight(level),
            |level| self.params.tail_weight(level),
        )
    }

    /// The exact-key verification path (`TREEEMB_EXACT_KEYS=1`): groups
    /// by the materialized per-bucket lattice cells instead of packed
    /// hashes. Kept for debugging hash-collision suspicions; the
    /// `exact_and_packed_paths_build_identical_trees` test pins the two
    /// paths together.
    fn exact_hierarchy(
        &self,
        padded: &PointSet,
        levels: &[HybridLevel],
        threads: usize,
    ) -> Result<treeemb_hst::Hst, EmbedError> {
        let per_point: Vec<Result<Vec<LevelAssignment>, EmbedError>> =
            treeemb_mpc::exec::par_map_indexed(
                (0..padded.len()).collect::<Vec<usize>>(),
                threads,
                |_, p| {
                    levels
                        .iter()
                        .enumerate()
                        .map(|(level, lvl)| {
                            lvl.assign(padded.point(p)).ok_or_else(|| {
                                let bucket = failing_bucket(lvl, padded.point(p));
                                EmbedError::CoverageFailure {
                                    level,
                                    bucket,
                                    point: p,
                                }
                            })
                        })
                        .collect()
                },
            );
        let mut assignments = Vec::with_capacity(per_point.len());
        for r in per_point {
            assignments.push(r?);
        }
        build_hierarchy(
            padded.len(),
            levels.len(),
            |level, p| Ok(assignments[p][level].clone()),
            |level| self.params.edge_weight(level),
            |level| self.params.tail_weight(level),
        )
    }
}

/// True when `TREEEMB_EXACT_KEYS` selects the exact-key verification
/// path (any value other than `0`; parsed through the single
/// [`treeemb_mpc::config::from_env`] override layer).
fn exact_keys_requested() -> bool {
    treeemb_mpc::config::from_env().exact_keys.unwrap_or(false)
}

/// Which bucket failed to cover `p` (diagnostic for coverage errors).
fn failing_bucket(level: &HybridLevel, p: &[f64]) -> usize {
    let m = level.bucket_dim();
    for (j, seq) in level.sequences().iter().enumerate() {
        if seq.first_covering(&p[j * m..(j + 1) * m]).is_none() {
            return j;
        }
    }
    0
}

/// The Arora random-shifted-grid embedder (the `O(log² n)`-distortion
/// baseline; E1/E8/E10 compare against it).
#[derive(Debug, Clone)]
pub struct GridEmbedder {
    params: GridParams,
}

impl GridEmbedder {
    /// Creates an embedder for a fixed grid schedule.
    pub fn new(params: GridParams) -> Self {
        Self { params }
    }

    /// The schedule in force.
    pub fn params(&self) -> &GridParams {
        &self.params
    }

    /// Embeds `ps` into a tree via hierarchical random shifted grids.
    /// Grid partitioning always covers, so this cannot fail on coverage.
    pub fn embed(&self, ps: &PointSet, seed: u64) -> Result<Embedding, EmbedError> {
        let grids: Vec<ShiftedGrid> = self
            .params
            .levels
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                ShiftedGrid::from_seed(ps.dim(), w, mix3(seed, GRID_LEVEL_TAG, i as u64))
            })
            .collect();
        let tree = build_hierarchy(
            ps.len(),
            grids.len(),
            |level, p| Ok(grids[level].cell_of(ps.point(p))),
            |level| self.params.edge_weight(level),
            |level| self.params.tail_weight(level),
        )?;
        Ok(Embedding {
            tree,
            method: "grid",
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::{generators, metrics};

    fn small_set() -> PointSet {
        generators::uniform_cube(40, 8, 256, 11)
    }

    #[test]
    fn hybrid_embedding_builds_and_dominates() {
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 3).unwrap();
        assert_eq!(emb.tree.num_points(), ps.len());
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = metrics::dist(ps.point(i), ps.point(j));
                let t = emb.tree_distance(i, j);
                assert!(
                    t >= e * (1.0 - 1e-9),
                    "pair ({i},{j}): tree {t} < euclid {e}"
                );
            }
        }
    }

    #[test]
    fn grid_embedding_builds_and_dominates() {
        let ps = small_set();
        let params = GridParams::for_dataset(&ps).unwrap();
        let emb = GridEmbedder::new(params).embed(&ps, 5).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = metrics::dist(ps.point(i), ps.point(j));
                let t = emb.tree_distance(i, j);
                assert!(
                    t >= e * (1.0 - 1e-9),
                    "pair ({i},{j}): tree {t} < euclid {e}"
                );
            }
        }
    }

    #[test]
    fn embedding_is_deterministic_in_seed() {
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let e = SeqEmbedder::new(params.clone());
        let a = e.embed(&ps, 7).unwrap();
        let b = e.embed(&ps, 7).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.tree_distance(i, j), b.tree_distance(i, j));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let e = SeqEmbedder::new(params);
        let a = e.embed(&ps, 1).unwrap();
        let b = e.embed(&ps, 2).unwrap();
        let mut differs = false;
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                if (a.tree_distance(i, j) - b.tree_distance(i, j)).abs() > 1e-12 {
                    differs = true;
                }
            }
        }
        assert!(differs, "independent draws should differ somewhere");
    }

    #[test]
    fn parallel_embedding_is_identical_to_sequential() {
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let e = SeqEmbedder::new(params);
        let seq = e.embed(&ps, 21).unwrap();
        let par = e.embed_parallel(&ps, 21, 8).unwrap();
        assert_eq!(seq.tree.num_nodes(), par.tree.num_nodes());
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert_eq!(
                    seq.tree_distance(i, j),
                    par.tree_distance(i, j),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn exact_and_packed_paths_build_identical_trees() {
        // The packed 128-bit keys must induce the same grouping as the
        // materialized per-bucket cells, hence bit-identical trees.
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let e = SeqEmbedder::new(params);
        for seed in [1u64, 7, 42] {
            let padded = ps.zero_pad(e.params.dim);
            let levels = e.build_levels(seed);
            let packed = e.packed_hierarchy(&padded, &levels, 1).unwrap();
            let exact = e.exact_hierarchy(&padded, &levels, 1).unwrap();
            assert_eq!(packed.num_nodes(), exact.num_nodes(), "seed {seed}");
            for i in 0..ps.len() {
                for j in (i + 1)..ps.len() {
                    assert_eq!(packed.distance(i, j), exact.distance(i, j), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn duplicates_land_at_distance_zero() {
        let mut rows = vec![vec![5.0, 5.0], vec![5.0, 5.0]];
        rows.push(vec![200.0, 200.0]);
        let ps = PointSet::from_rows(&rows);
        let params = HybridParams::for_dataset(&ps, 2).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 9).unwrap();
        assert_eq!(emb.tree_distance(0, 1), 0.0);
        assert!(emb.tree_distance(0, 2) > 0.0);
    }

    #[test]
    fn singleton_input_embeds_to_single_leaf() {
        let ps = PointSet::from_rows(&[vec![3.0, 4.0]]);
        let params = HybridParams::for_dataset(&ps, 2).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 1).unwrap();
        assert_eq!(emb.tree.num_points(), 1);
        assert_eq!(emb.tree_distance(0, 0), 0.0);
    }

    #[test]
    fn tree_distance_bounded_by_diameter_scale() {
        // dist_T <= 2 * tail(0) = 4 sqrt(r) w_0 for every pair.
        let ps = small_set();
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let cap = 2.0 * params.tail_weight(0);
        let emb = SeqEmbedder::new(params).embed(&ps, 13).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert!(emb.tree_distance(i, j) <= cap * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn expected_distortion_is_moderate_on_small_sets() {
        // Average over seeds: E[dist_T]/dist should be far below the
        // deterministic worst case.
        let ps = generators::uniform_cube(16, 8, 128, 3);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let e = SeqEmbedder::new(params);
        let trees: Vec<_> = (0..12).map(|s| e.embed(&ps, s).unwrap()).collect();
        let mut worst: f64 = 0.0;
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let euclid = metrics::dist(ps.point(i), ps.point(j));
                let mean_t: f64 =
                    trees.iter().map(|t| t.tree_distance(i, j)).sum::<f64>() / trees.len() as f64;
                worst = worst.max(mean_t / euclid);
            }
        }
        // d = 8, r = 4, logΔ ~ 12: the Theorem-2 bound ~ sqrt(32)*12 ~ 68;
        // empirically far smaller. Guard loosely against regressions.
        assert!(worst < 60.0, "expected distortion {worst}");
    }
}
