//! The full Theorem-1 pipeline: MPC FJLT → MPC hybrid partitioning.
//!
//! Given `n` points in `[Δ]^d`, the pipeline (paper §4, steps 1–4):
//!
//! 1. reduces the dimension to `k = Θ(ξ⁻² log n)` with the MPC FJLT
//!    (skipped when `d` is already that small);
//! 2. chooses `r = Θ(log log n)` buckets and the level schedule;
//! 3. runs the MPC hybrid-partitioning embedding;
//! 4. reports the tree together with the metered MPC costs, so the
//!    Theorem-1 claims (O(1) rounds, `O((nd)^ε)` local space, near-linear
//!    total space) are checkable numbers.

use crate::error::EmbedError;
use crate::mpc_embed::embed_mpc;
use crate::params::HybridParams;
use crate::seq::Embedding;
use treeemb_fjlt::fjlt::FjltParams;
use treeemb_fjlt::mpc::fjlt_mpc;
use treeemb_geom::PointSet;
use treeemb_mpc::fault::{FaultEvent, FaultPlan};
use treeemb_mpc::metrics::Metrics;
use treeemb_mpc::{CheckpointPolicy, MpcConfig, Runtime};

/// Pipeline configuration.
///
/// Construct through [`PipelineConfig::builder`] /
/// [`PipelineBuilder`]; the struct is `#[non_exhaustive]`, so new knobs
/// can be added without breaking downstream code (fields stay readable
/// and individually assignable).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// JL distortion parameter `ξ` (the paper uses a constant).
    pub xi: f64,
    /// Bucket count override; `None` = `Θ(log log n)` per the paper.
    pub r: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Minimum pairwise distance of distinct input points (1 for `[Δ]^d`).
    pub min_sep: f64,
    /// Coverage failure probability budget.
    pub fail_prob: f64,
    /// Scalability exponent `ε` used when `capacity` is not given.
    pub epsilon: f64,
    /// Explicit per-machine capacity override (words).
    pub capacity: Option<usize>,
    /// Explicit machine count override.
    pub machines: Option<usize>,
    /// Executor threads.
    pub threads: usize,
    /// Skip the FJLT even for high-dimensional input (ablation runs).
    pub skip_jl: bool,
    /// Deterministic fault plan injected into the MPC runtime (chaos
    /// testing); `None` disables injection entirely.
    pub faults: Option<FaultPlan>,
    /// Whole-pipeline attempts when a run dies of *retryable* transient
    /// faults (see [`EmbedError::is_retryable`]); attempt `a`
    /// runs under `faults.for_attempt(a)`. Non-retryable errors
    /// (capacity, coverage) return immediately. Clamped to at least 1.
    pub fault_attempts: u32,
    /// Round-checkpoint policy for crash recovery, forwarded to the MPC
    /// runtime (see [`CheckpointPolicy`]).
    pub checkpoint: CheckpointPolicy,
    /// Heterogeneous per-machine capacity overrides `(machine, words)`,
    /// forwarded to the MPC runtime on top of the sized configuration.
    pub machine_capacities: Vec<(usize, usize)>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            xi: 0.45,
            r: None,
            seed: 0x7EED,
            min_sep: 1.0,
            fail_prob: 1e-3,
            epsilon: 0.6,
            capacity: None,
            machines: None,
            threads: 4,
            skip_jl: false,
            faults: None,
            fault_attempts: 1,
            checkpoint: CheckpointPolicy::default(),
            machine_capacities: Vec::new(),
        }
    }
}

impl PipelineConfig {
    /// Starts building a pipeline configuration — the one supported
    /// construction path.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }
}

/// Builder for [`PipelineConfig`], mirroring
/// [`treeemb_mpc::RuntimeBuilder`] for the pipeline-level knobs.
///
/// ```
/// use treeemb_core::pipeline::PipelineConfig;
///
/// let cfg = PipelineConfig::builder()
///     .capacity_words(1 << 15)
///     .machines(8)
///     .r(4)
///     .threads(2)
///     .build();
/// assert_eq!(cfg.capacity, Some(1 << 15));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    cfg: PipelineConfig,
}

impl PipelineBuilder {
    /// JL distortion parameter `ξ`.
    pub fn xi(mut self, xi: f64) -> Self {
        self.cfg.xi = xi;
        self
    }

    /// Bucket count override (`Θ(log log n)` when unset).
    pub fn r(mut self, r: usize) -> Self {
        self.cfg.r = Some(r);
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Minimum pairwise distance of distinct input points.
    pub fn min_sep(mut self, min_sep: f64) -> Self {
        self.cfg.min_sep = min_sep;
        self
    }

    /// Coverage failure probability budget.
    pub fn fail_prob(mut self, fail_prob: f64) -> Self {
        self.cfg.fail_prob = fail_prob;
        self
    }

    /// Scalability exponent `ε` used when no explicit capacity is given.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// Explicit per-machine capacity in words.
    pub fn capacity_words(mut self, words: usize) -> Self {
        self.cfg.capacity = Some(words);
        self
    }

    /// Explicit machine count.
    pub fn machines(mut self, machines: usize) -> Self {
        self.cfg.machines = Some(machines);
        self
    }

    /// Heterogeneous capacity override for one machine.
    pub fn machine_capacity(mut self, machine: usize, words: usize) -> Self {
        self.cfg.machine_capacities.push((machine, words));
        self
    }

    /// Executor threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Skip the FJLT even for high-dimensional input (ablations).
    pub fn skip_jl(mut self, skip: bool) -> Self {
        self.cfg.skip_jl = skip;
        self
    }

    /// Deterministic fault plan injected into the MPC runtime.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Whole-pipeline attempts on retryable transient-fault failures.
    pub fn fault_attempts(mut self, attempts: u32) -> Self {
        self.cfg.fault_attempts = attempts;
        self
    }

    /// Round-checkpoint policy for crash recovery.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.cfg.checkpoint = policy;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> PipelineConfig {
        self.cfg
    }
}

/// Per-stage resource breakdown of one pipeline run: wall time plus the
/// MPC rounds and communication attributable to the stage (metered as
/// deltas of the runtime's [`Metrics`] around the stage).
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage name (`"fjlt"`, `"schedule"`, `"embed"`).
    pub name: &'static str,
    /// Wall-clock time spent in the stage, nanoseconds.
    pub wall_ns: u64,
    /// Communication rounds the stage consumed.
    pub rounds: usize,
    /// Words sent across machines during the stage.
    pub sent_words: usize,
}

/// Everything the pipeline produced and measured.
#[derive(Debug)]
pub struct PipelineReport {
    /// The tree embedding of the input points.
    pub embedding: Embedding,
    /// Hybrid schedule used.
    pub params: HybridParams,
    /// FJLT parameters, when dimension reduction ran.
    pub fjlt: Option<FjltParams>,
    /// Whether the JL step ran.
    pub jl_applied: bool,
    /// Communication rounds consumed (total).
    pub rounds: usize,
    /// Rounds spent in the FJLT phase.
    pub fjlt_rounds: usize,
    /// Peak resident words on any machine.
    pub peak_machine_words: usize,
    /// Peak cluster-wide resident words ("total space").
    pub peak_total_words: usize,
    /// Per-machine capacity the run was configured with.
    pub capacity_words: usize,
    /// Machine count.
    pub machines: usize,
    /// Per-stage wall/round/word breakdown, in execution order.
    pub stages: Vec<StageStats>,
    /// Full round-by-round meter log of the run (timestamps, labels,
    /// per-round word counts) — everything `summary()`/`by_label()`
    /// offer, not just the scalar peaks above.
    pub metrics: Metrics,
}

/// Runs the full Theorem-1 pipeline.
///
/// With `TREEEMB_TRACE=path` set (or [`treeemb_obs::set_trace_path`]
/// called), the run also writes a Chrome-trace file on completion, with
/// one span per stage nesting every MPC round underneath.
pub fn run(ps: &PointSet, cfg: &PipelineConfig) -> Result<PipelineReport, EmbedError> {
    run_faulted(ps, cfg).0
}

/// Like [`run`], but also returns every fault the MPC runtime injected
/// across all attempts — the raw material chaos tooling shrinks a
/// failing seeded run from. With `cfg.faults` unset, the event list is
/// always empty and the result matches [`run`] exactly.
pub fn run_faulted(
    ps: &PointSet,
    cfg: &PipelineConfig,
) -> (Result<PipelineReport, EmbedError>, Vec<FaultEvent>) {
    if ps.is_empty() {
        return (Err(EmbedError::EmptyInput), Vec::new());
    }
    let mpc_cfg = size_mpc_config(ps, cfg);
    let attempts = cfg.fault_attempts.max(1);
    let mut events: Vec<FaultEvent> = Vec::new();
    for attempt in 0..attempts {
        let mut builder = Runtime::builder()
            .config(mpc_cfg.clone())
            .checkpoint(cfg.checkpoint);
        if let Some(plan) = &cfg.faults {
            builder = builder.fault_plan(plan.for_attempt(attempt));
        }
        let mut rt = builder.build();
        let result = run_attempt(ps, cfg, &mut rt);
        events.extend(rt.take_fault_log());
        match result {
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                treeemb_obs::mark(
                    "pipeline.retry",
                    &[("attempt", attempt as u64 + 1), ("of", attempts as u64)],
                );
            }
            other => return (other, events),
        }
    }
    unreachable!("the last attempt always returns");
}

/// Pre-sizes the MPC configuration for `ps`: machines must hold the
/// broadcast grids (Lemma 8). At asymptotic n the fully scalable `N^ε`
/// dominates the grid payload; at bench scales the payload's log
/// factors win, so we take the max of the two (with 4x slack for the
/// estimate).
fn size_mpc_config(ps: &PointSet, cfg: &PipelineConfig) -> MpcConfig {
    let n = ps.len();
    let d = ps.dim();
    let input_words = n * (d + 1);
    let k_target = treeemb_fjlt::dense::target_dimension(n, cfg.xi);
    let jl_planned = d > k_target && !cfg.skip_jl;
    let working_dim_est = if jl_planned { k_target } else { d };
    let r_est = cfg
        .r
        .unwrap_or_else(|| crate::params::pipeline_r(n, working_dim_est));
    let diag_est = treeemb_geom::BoundingBox::of(ps).diagonal() * (1.0 + cfg.xi);
    let grid_words_est = crate::params::estimate_grid_words(
        n,
        working_dim_est,
        r_est,
        diag_est,
        cfg.min_sep * (1.0 - cfg.xi),
        cfg.fail_prob,
    );
    let mut mpc_cfg = if let Some(cap) = cfg.capacity {
        MpcConfig::explicit(input_words, cap, cfg.machines.unwrap_or(8))
    } else {
        let scalable = MpcConfig::fully_scalable(input_words, cfg.epsilon);
        let cap = scalable
            .capacity_words
            .max(grid_words_est.saturating_mul(4));
        scalable.with_capacity(cap)
    };
    if let (Some(m), None) = (cfg.machines, cfg.capacity) {
        mpc_cfg = mpc_cfg.with_machines(m);
    }
    mpc_cfg = mpc_cfg.with_threads(cfg.threads);
    for &(machine, words) in &cfg.machine_capacities {
        mpc_cfg = mpc_cfg.with_machine_capacity(machine, words);
    }
    mpc_cfg
}

/// One attempt of the pipeline on a fresh runtime.
fn run_attempt(
    ps: &PointSet,
    cfg: &PipelineConfig,
    rt: &mut Runtime,
) -> Result<PipelineReport, EmbedError> {
    let run_sp = treeemb_obs::span!("pipeline.run", "n" = ps.len(), "d" = ps.dim());
    let n = ps.len();
    let d = ps.dim();
    let k_target = treeemb_fjlt::dense::target_dimension(n, cfg.xi);
    let jl_planned = d > k_target && !cfg.skip_jl;
    let mut stages: Vec<StageStats> = Vec::with_capacity(3);
    // Meters a stage as the (wall, rounds, sent-words) delta around `f`,
    // under a `pipeline.<name>` span so the MPC rounds inside nest.
    let staged = |name: &'static str,
                  rt: &mut Runtime,
                  stages: &mut Vec<StageStats>,
                  f: &mut dyn FnMut(&mut Runtime) -> Result<(), EmbedError>|
     -> Result<(), EmbedError> {
        let rounds0 = rt.metrics().rounds();
        let words0 = rt.metrics().total_sent_words();
        let t0 = treeemb_obs::now_ns();
        let sp = treeemb_obs::Span::enter_with(|| format!("pipeline.{name}"));
        let result = f(rt);
        drop(sp);
        stages.push(StageStats {
            name,
            wall_ns: treeemb_obs::now_ns().saturating_sub(t0),
            rounds: rt.metrics().rounds() - rounds0,
            sent_words: rt.metrics().total_sent_words() - words0,
        });
        result
    };

    // Step 1: dimension reduction, when it helps (d above the JL target).
    let (working, fjlt_params, min_sep, fjlt_rounds) = if jl_planned {
        let params = FjltParams::for_dataset(n, d, cfg.xi, cfg.seed ^ 0xF17);
        let mut projected = None;
        staged("fjlt", rt, &mut stages, &mut |rt| {
            projected = Some(fjlt_mpc(rt, ps, &params)?);
            Ok(())
        })?;
        let rounds = rt.metrics().rounds();
        // JL contracts distances by at most (1 - ξ) w.h.p.
        (
            projected.expect("fjlt stage ran"),
            Some(params),
            cfg.min_sep * (1.0 - cfg.xi),
            rounds,
        )
    } else {
        (ps.clone(), None, cfg.min_sep, 0)
    };

    // Step 2: schedule. The default r keeps bucket dimensions practical
    // (see params::pipeline_r). Machine-local: no rounds, only wall time.
    let mut params_slot = None;
    staged("schedule", rt, &mut stages, &mut |_| {
        let r = cfg
            .r
            .unwrap_or_else(|| crate::params::pipeline_r(n, working.dim()));
        params_slot = Some(HybridParams::for_dataset_with_sep(
            &working,
            r,
            min_sep,
            cfg.fail_prob,
        )?);
        Ok(())
    })?;
    let params = params_slot.expect("schedule stage ran");

    // Steps 3–4: embed and report.
    let mut embedding_slot = None;
    staged("embed", rt, &mut stages, &mut |rt| {
        embedding_slot = Some(embed_mpc(rt, &working, &params, cfg.seed)?);
        Ok(())
    })?;
    let embedding = embedding_slot.expect("embed stage ran");
    let metrics = rt.metrics().clone();
    drop(run_sp);
    // With TREEEMB_TRACE (or set_trace_path) configured, persist the
    // trace; a no-op returning None otherwise.
    let _ = treeemb_obs::flush_trace();
    Ok(PipelineReport {
        rounds: metrics.rounds(),
        peak_machine_words: metrics.peak_machine_words(),
        peak_total_words: metrics.peak_total_words(),
        embedding,
        params,
        fjlt: fjlt_params,
        jl_applied: fjlt_rounds > 0,
        fjlt_rounds,
        capacity_words: rt.capacity(),
        machines: rt.num_machines(),
        stages,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::{generators, metrics};

    fn quick_cfg() -> PipelineConfig {
        PipelineConfig::builder()
            .capacity_words(1 << 15)
            .machines(8)
            .r(4)
            .build()
    }

    #[test]
    fn low_dimensional_input_skips_jl() {
        let ps = generators::uniform_cube(32, 8, 256, 1);
        let report = run(&ps, &quick_cfg()).unwrap();
        assert!(!report.jl_applied);
        assert!(report.fjlt.is_none());
        assert_eq!(report.embedding.tree.num_points(), 32);
    }

    #[test]
    fn high_dimensional_input_takes_jl_path() {
        let ps = generators::noisy_line(24, 200, 1 << 12, 1.0, 2);
        let mut cfg = quick_cfg();
        cfg.xi = 0.45;
        cfg.r = None; // let the pipeline size r for the post-JL dimension
        cfg.capacity = None; // auto-size for the grid payload
        let report = run(&ps, &cfg).unwrap();
        assert!(report.jl_applied);
        let fp = report.fjlt.unwrap();
        assert!(
            fp.k < 200,
            "target dimension {} not smaller than input",
            fp.k
        );
    }

    #[test]
    fn skip_jl_forces_the_direct_path() {
        let ps = generators::noisy_line(24, 200, 1 << 12, 1.0, 2);
        let mut cfg = quick_cfg();
        cfg.r = None;
        cfg.capacity = None;
        cfg.skip_jl = true;
        let report = run(&ps, &cfg).unwrap();
        assert!(!report.jl_applied, "skip_jl must suppress the FJLT");
        assert!(report.fjlt.is_none());
        // The hybrid schedule then runs on the raw 200-dim data, so the
        // bucket count scales with d, not k.
        assert!(report.params.r >= 200usize.div_ceil(5));
        // And full domination holds (no JL contraction slack needed).
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = metrics::dist(ps.point(i), ps.point(j));
                assert!(report.embedding.tree_distance(i, j) >= e * (1.0 - 1e-9));
            }
        }
    }

    #[test]
    fn pipeline_tree_dominates_within_jl_slack() {
        // After JL, domination holds w.r.t. the *projected* metric, which
        // is within (1±ξ) of the original: tree >= (1-ξ)·euclid.
        let ps = generators::uniform_cube(20, 128, 1 << 10, 3);
        let mut cfg = quick_cfg();
        cfg.xi = 0.4;
        cfg.r = None;
        cfg.capacity = None;
        let report = run(&ps, &cfg).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = metrics::dist(ps.point(i), ps.point(j));
                let t = report.embedding.tree_distance(i, j);
                assert!(
                    t >= (1.0 - cfg.xi) * e * (1.0 - 1e-9),
                    "({i},{j}): {t} vs {e}"
                );
            }
        }
    }

    #[test]
    fn rounds_do_not_grow_with_n() {
        let mut rounds = Vec::new();
        for n in [16usize, 48] {
            let ps = generators::uniform_cube(n, 8, 256, 7);
            let report = run(&ps, &quick_cfg()).unwrap();
            rounds.push(report.rounds);
        }
        assert_eq!(rounds[0], rounds[1]);
    }

    #[test]
    fn report_carries_meters() {
        let ps = generators::uniform_cube(32, 8, 256, 9);
        let report = run(&ps, &quick_cfg()).unwrap();
        assert!(report.rounds > 0);
        assert!(report.peak_machine_words > 0);
        assert!(report.peak_total_words >= report.peak_machine_words);
        assert_eq!(report.machines, 8);
    }

    #[test]
    fn report_stage_breakdown_accounts_for_all_rounds() {
        let ps = generators::uniform_cube(32, 8, 256, 9);
        let report = run(&ps, &quick_cfg()).unwrap();
        // No JL on 8-dim input: stages are schedule + embed.
        let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["schedule", "embed"]);
        let stage_rounds: usize = report.stages.iter().map(|s| s.rounds).sum();
        assert_eq!(
            stage_rounds, report.rounds,
            "every round belongs to a stage"
        );
        let stage_words: usize = report.stages.iter().map(|s| s.sent_words).sum();
        assert_eq!(stage_words, report.metrics.total_sent_words());
        let embed = report.stages.iter().find(|s| s.name == "embed").unwrap();
        assert!(embed.rounds > 0 && embed.wall_ns > 0);
    }

    #[test]
    fn report_jl_run_leads_with_fjlt_stage() {
        let ps = generators::noisy_line(24, 200, 1 << 12, 1.0, 2);
        let mut cfg = quick_cfg();
        cfg.r = None;
        cfg.capacity = None;
        let report = run(&ps, &cfg).unwrap();
        assert!(report.jl_applied);
        let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["fjlt", "schedule", "embed"]);
        assert_eq!(report.stages[0].rounds, report.fjlt_rounds);
        assert_eq!(report.stages[1].rounds, 0, "scheduling is machine-local");
    }

    #[test]
    fn report_metrics_clone_matches_scalar_summaries() {
        let ps = generators::uniform_cube(32, 8, 256, 9);
        let report = run(&ps, &quick_cfg()).unwrap();
        assert_eq!(report.metrics.rounds(), report.rounds);
        assert_eq!(
            report.metrics.peak_machine_words(),
            report.peak_machine_words
        );
        assert_eq!(report.metrics.peak_total_words(), report.peak_total_words);
        assert_eq!(report.metrics.round_stats().len(), report.rounds);
        assert_eq!(report.metrics.violations(), 0);
    }
}
