//! The paper's tree-embedding algorithms, end to end.
//!
//! * [`params`] — scale schedules, bucket counts, grid budgets
//!   (instantiating Lemmas 7/8 concretely);
//! * [`seq`] — **Algorithm 1**: sequential hybrid-partitioning tree
//!   embedding (Theorem 2), plus the Arora grid-partitioning embedder as
//!   the baseline it generalizes;
//! * [`mpc_embed`] — **Algorithm 2**: the fully scalable MPC embedding —
//!   grids generated once and broadcast, per-machine path construction,
//!   distributed node deduplication (Theorem 1's second half);
//! * [`pipeline`] — **Theorem 1**: MPC FJLT (Theorem 3) →
//!   `r = Θ(log log n)` hybrid partitioning, with metered rounds/space;
//! * [`audit`] — domination and expected-distortion measurements
//!   (Theorem 2's two guarantees, checked empirically);
//! * [`mpc_tree`] — pointer-doubling tree operations on distributed
//!   edge lists (`O(log depth)` rounds; the §1.3.3 direction).
//!
//! The sequential and MPC embedders derive identical randomness from the
//! same seed and produce *identical tree metrics* (tested in
//! `mpc_embed::tests` and experiment E12).

pub mod audit;
pub mod error;
pub mod mpc_embed;
pub mod mpc_tree;
pub mod params;
pub mod pipeline;
pub mod seq;

pub use error::EmbedError;
pub use params::HybridParams;
pub use seq::{Embedding, GridEmbedder, SeqEmbedder};
