//! Embedding audits: the two Theorem-2 guarantees, measured.
//!
//! 1. **Domination** — `dist_T(p,q) ≥ ‖p−q‖₂` for every pair, for every
//!    tree (deterministic in our construction; see DESIGN.md note 1);
//! 2. **Expected distortion** — `E_T[dist_T(p,q)] ≤ α·‖p−q‖₂`. The
//!    expectation is over trees, so the estimator averages `dist_T` over
//!    independently seeded embeddings before taking the worst pair.

use crate::error::EmbedError;
use crate::seq::Embedding;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Result of a domination check.
#[derive(Debug, Clone, PartialEq)]
pub struct DominationReport {
    /// True when every pair satisfies `dist_T ≥ (1−tol)·euclid`.
    pub ok: bool,
    /// Minimum of `dist_T / euclid` over all distinct pairs.
    pub worst_ratio: f64,
    /// Pairs checked.
    pub pairs: usize,
}

/// Checks domination of the tree metric over the Euclidean metric.
pub fn check_domination(emb: &Embedding, ps: &PointSet) -> DominationReport {
    let n = ps.len();
    let mut worst = f64::INFINITY;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let e = dist(ps.point(i), ps.point(j));
            if e == 0.0 {
                continue;
            }
            let t = emb.tree_distance(i, j);
            worst = worst.min(t / e);
            pairs += 1;
        }
    }
    if pairs == 0 {
        return DominationReport {
            ok: true,
            worst_ratio: 1.0,
            pairs: 0,
        };
    }
    DominationReport {
        ok: worst >= 1.0 - 1e-9,
        worst_ratio: worst,
        pairs,
    }
}

/// Empirical expected-distortion estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DistortionEstimate {
    /// `max_pairs mean_T[dist_T]/euclid` — the empirical expected
    /// distortion (the `α` of Theorem 2).
    pub expected_distortion: f64,
    /// Mean over pairs of `mean_T[dist_T]/euclid`.
    pub mean_ratio: f64,
    /// Worst single-tree ratio observed (no averaging) — bounds the
    /// tail, not the expectation.
    pub worst_single_tree: f64,
    /// Number of trees averaged.
    pub trees: usize,
    /// Pairs audited.
    pub pairs: usize,
}

/// Estimates the expected distortion of a randomized embedder by
/// averaging `trials` independently seeded trees.
///
/// `build(seed)` runs the embedder (sequential or MPC) for one seed.
pub fn estimate_expected_distortion(
    ps: &PointSet,
    trials: usize,
    mut build: impl FnMut(u64) -> Result<Embedding, EmbedError>,
) -> Result<DistortionEstimate, EmbedError> {
    assert!(trials >= 1);
    let n = ps.len();
    let mut sums = vec![0.0f64; n * n];
    let mut worst_single: f64 = 0.0;
    for t in 0..trials {
        let emb = build(t as u64)?;
        for i in 0..n {
            for j in (i + 1)..n {
                let td = emb.tree_distance(i, j);
                sums[i * n + j] += td;
                let e = dist(ps.point(i), ps.point(j));
                if e > 0.0 {
                    worst_single = worst_single.max(td / e);
                }
            }
        }
    }
    let mut max_ratio: f64 = 0.0;
    let mut sum_ratio = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let e = dist(ps.point(i), ps.point(j));
            if e == 0.0 {
                continue;
            }
            let mean_t = sums[i * n + j] / trials as f64;
            let ratio = mean_t / e;
            max_ratio = max_ratio.max(ratio);
            sum_ratio += ratio;
            pairs += 1;
        }
    }
    Ok(DistortionEstimate {
        expected_distortion: max_ratio,
        mean_ratio: if pairs > 0 {
            sum_ratio / pairs as f64
        } else {
            1.0
        },
        worst_single_tree: worst_single,
        trees: trials,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GridParams, HybridParams};
    use crate::seq::{GridEmbedder, SeqEmbedder};
    use treeemb_geom::generators;

    #[test]
    fn domination_report_on_hybrid() {
        let ps = generators::uniform_cube(24, 8, 256, 1);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 2).unwrap();
        let rep = check_domination(&emb, &ps);
        assert!(rep.ok, "worst ratio {}", rep.worst_ratio);
        assert_eq!(rep.pairs, 24 * 23 / 2);
    }

    #[test]
    fn expected_distortion_estimator_runs() {
        let ps = generators::uniform_cube(12, 8, 128, 3);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params);
        let est = estimate_expected_distortion(&ps, 6, |seed| emb.embed(&ps, seed)).unwrap();
        assert!(
            est.expected_distortion >= 1.0,
            "domination implies ratio >= 1"
        );
        assert!(est.expected_distortion <= est.worst_single_tree + 1e-9);
        assert_eq!(est.trees, 6);
    }

    #[test]
    fn averaging_tightens_the_estimate() {
        // E[dist_T]/dist <= worst single tree ratio, usually strictly.
        let ps = generators::uniform_cube(14, 8, 256, 5);
        let params = GridParams::for_dataset(&ps).unwrap();
        let emb = GridEmbedder::new(params);
        let est = estimate_expected_distortion(&ps, 8, |seed| emb.embed(&ps, seed)).unwrap();
        assert!(est.mean_ratio <= est.expected_distortion);
        assert!(est.expected_distortion < est.worst_single_tree * (1.0 + 1e-9));
    }

    #[test]
    fn duplicate_only_sets_have_no_pairs() {
        let ps = PointSet::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let params = HybridParams::for_dataset(&ps, 2).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 1).unwrap();
        let rep = check_domination(&emb, &ps);
        assert!(rep.ok);
        assert_eq!(rep.pairs, 0);
    }
}
