//! Embedding audits: the two Theorem-2 guarantees, measured.
//!
//! 1. **Domination** — `dist_T(p,q) ≥ ‖p−q‖₂` for every pair, for every
//!    tree (deterministic in our construction; see DESIGN.md note 1);
//! 2. **Expected distortion** — `E_T[dist_T(p,q)] ≤ α·‖p−q‖₂`. The
//!    expectation is over trees, so the estimator averages `dist_T` over
//!    independently seeded embeddings before taking the worst pair.

use crate::error::EmbedError;
use crate::seq::Embedding;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Result of a domination check.
#[derive(Debug, Clone, PartialEq)]
pub struct DominationReport {
    /// True when every pair satisfies `dist_T ≥ (1−tol)·euclid`.
    pub ok: bool,
    /// Minimum of `dist_T / euclid` over all distinct pairs.
    pub worst_ratio: f64,
    /// Pairs checked.
    pub pairs: usize,
}

/// Checks domination of the tree metric over the Euclidean metric.
pub fn check_domination(emb: &Embedding, ps: &PointSet) -> DominationReport {
    check_domination_parallel(emb, ps, 1)
}

/// [`check_domination`] with the `O(n²)` pair sweep fanned out over
/// `threads` workers, one row per work item. Partial results are folded
/// in row order, so the report is independent of the thread count.
pub fn check_domination_parallel(
    emb: &Embedding,
    ps: &PointSet,
    threads: usize,
) -> DominationReport {
    let _sp = treeemb_obs::span!("audit.domination", "n" = ps.len());
    let n = ps.len();
    let rows: Vec<(f64, usize)> = treeemb_mpc::exec::par_map_indexed(
        (0..n).collect::<Vec<usize>>(),
        threads.max(1),
        |_, i| {
            let mut worst = f64::INFINITY;
            let mut pairs = 0usize;
            for j in (i + 1)..n {
                let e = dist(ps.point(i), ps.point(j));
                if e == 0.0 {
                    continue;
                }
                let t = emb.tree_distance(i, j);
                worst = worst.min(t / e);
                pairs += 1;
            }
            (worst, pairs)
        },
    );
    let mut worst = f64::INFINITY;
    let mut pairs = 0usize;
    for (row_worst, row_pairs) in rows {
        worst = worst.min(row_worst);
        pairs += row_pairs;
    }
    if pairs == 0 {
        return DominationReport {
            ok: true,
            worst_ratio: 1.0,
            pairs: 0,
        };
    }
    DominationReport {
        ok: worst >= 1.0 - 1e-9,
        worst_ratio: worst,
        pairs,
    }
}

/// Empirical expected-distortion estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DistortionEstimate {
    /// `max_pairs mean_T[dist_T]/euclid` — the empirical expected
    /// distortion (the `α` of Theorem 2).
    pub expected_distortion: f64,
    /// Mean over pairs of `mean_T[dist_T]/euclid`.
    pub mean_ratio: f64,
    /// Worst single-tree ratio observed (no averaging) — bounds the
    /// tail, not the expectation.
    pub worst_single_tree: f64,
    /// Number of trees averaged.
    pub trees: usize,
    /// Pairs audited.
    pub pairs: usize,
}

/// Estimates the expected distortion of a randomized embedder by
/// averaging `trials` independently seeded trees.
///
/// `build(seed)` runs the embedder (sequential or MPC) for one seed.
pub fn estimate_expected_distortion(
    ps: &PointSet,
    trials: usize,
    build: impl FnMut(u64) -> Result<Embedding, EmbedError>,
) -> Result<DistortionEstimate, EmbedError> {
    estimate_expected_distortion_threads(ps, trials, 1, build)
}

/// [`estimate_expected_distortion`] with each tree's `O(n²)` distance
/// sweep fanned out over `threads` workers (one row per work item;
/// accumulation stays in row order, so the estimate is independent of
/// the thread count). Trees are still built serially — `build` may be
/// stateful.
pub fn estimate_expected_distortion_threads(
    ps: &PointSet,
    trials: usize,
    threads: usize,
    mut build: impl FnMut(u64) -> Result<Embedding, EmbedError>,
) -> Result<DistortionEstimate, EmbedError> {
    let _sp = treeemb_obs::span!("audit.expected_distortion", "trials" = trials);
    assert!(trials >= 1);
    let n = ps.len();
    let mut sums = vec![0.0f64; n * n];
    let mut worst_single: f64 = 0.0;
    for t in 0..trials {
        let emb = build(t as u64)?;
        let rows: Vec<(Vec<f64>, f64)> = treeemb_mpc::exec::par_map_indexed(
            (0..n).collect::<Vec<usize>>(),
            threads.max(1),
            |_, i| {
                let mut tds = Vec::with_capacity(n - i - 1);
                let mut row_worst: f64 = 0.0;
                for j in (i + 1)..n {
                    let td = emb.tree_distance(i, j);
                    tds.push(td);
                    let e = dist(ps.point(i), ps.point(j));
                    if e > 0.0 {
                        row_worst = row_worst.max(td / e);
                    }
                }
                (tds, row_worst)
            },
        );
        for (i, (tds, row_worst)) in rows.into_iter().enumerate() {
            for (k, td) in tds.into_iter().enumerate() {
                sums[i * n + (i + 1 + k)] += td;
            }
            worst_single = worst_single.max(row_worst);
        }
    }
    let mut max_ratio: f64 = 0.0;
    let mut sum_ratio = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let e = dist(ps.point(i), ps.point(j));
            if e == 0.0 {
                continue;
            }
            let mean_t = sums[i * n + j] / trials as f64;
            let ratio = mean_t / e;
            max_ratio = max_ratio.max(ratio);
            sum_ratio += ratio;
            pairs += 1;
        }
    }
    Ok(DistortionEstimate {
        expected_distortion: max_ratio,
        mean_ratio: if pairs > 0 {
            sum_ratio / pairs as f64
        } else {
            1.0
        },
        worst_single_tree: worst_single,
        trees: trials,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GridParams, HybridParams};
    use crate::seq::{GridEmbedder, SeqEmbedder};
    use treeemb_geom::generators;

    #[test]
    fn domination_report_on_hybrid() {
        let ps = generators::uniform_cube(24, 8, 256, 1);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 2).unwrap();
        let rep = check_domination(&emb, &ps);
        assert!(rep.ok, "worst ratio {}", rep.worst_ratio);
        assert_eq!(rep.pairs, 24 * 23 / 2);
    }

    #[test]
    fn expected_distortion_estimator_runs() {
        let ps = generators::uniform_cube(12, 8, 128, 3);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params);
        let est = estimate_expected_distortion(&ps, 6, |seed| emb.embed(&ps, seed)).unwrap();
        assert!(
            est.expected_distortion >= 1.0,
            "domination implies ratio >= 1"
        );
        assert!(est.expected_distortion <= est.worst_single_tree + 1e-9);
        assert_eq!(est.trees, 6);
    }

    #[test]
    fn averaging_tightens_the_estimate() {
        // E[dist_T]/dist <= worst single tree ratio, usually strictly.
        let ps = generators::uniform_cube(14, 8, 256, 5);
        let params = GridParams::for_dataset(&ps).unwrap();
        let emb = GridEmbedder::new(params);
        let est = estimate_expected_distortion(&ps, 8, |seed| emb.embed(&ps, seed)).unwrap();
        assert!(est.mean_ratio <= est.expected_distortion);
        assert!(est.expected_distortion < est.worst_single_tree * (1.0 + 1e-9));
    }

    #[test]
    fn parallel_audits_match_serial_bitwise() {
        let ps = generators::uniform_cube(18, 8, 256, 13);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let embedder = SeqEmbedder::new(params);
        let emb = embedder.embed(&ps, 6).unwrap();
        let serial = check_domination(&emb, &ps);
        for threads in [2, 8] {
            assert_eq!(serial, check_domination_parallel(&emb, &ps, threads));
        }
        let est1 =
            estimate_expected_distortion_threads(&ps, 4, 1, |s| embedder.embed(&ps, s)).unwrap();
        let est8 =
            estimate_expected_distortion_threads(&ps, 4, 8, |s| embedder.embed(&ps, s)).unwrap();
        assert_eq!(est1, est8, "estimate must not depend on thread count");
    }

    #[test]
    fn duplicate_only_sets_have_no_pairs() {
        let ps = PointSet::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let params = HybridParams::for_dataset(&ps, 2).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 1).unwrap();
        let rep = check_domination(&emb, &ps);
        assert!(rep.ok);
        assert_eq!(rep.pairs, 0);
    }
}
