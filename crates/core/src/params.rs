//! Parameter schedules for the hierarchical embeddings.

use crate::error::EmbedError;
use treeemb_geom::{metrics, BoundingBox, PointSet};
use treeemb_partition::coverage;

/// Parameters of a hybrid-partitioning hierarchy (Algorithm 1 / 2).
#[derive(Debug, Clone, PartialEq)]
pub struct HybridParams {
    /// Working dimension (original dimension padded so `r` divides it).
    pub dim: usize,
    /// Original dimension before padding.
    pub orig_dim: usize,
    /// Bucket count `r`.
    pub r: usize,
    /// Scale `w_i` per level, strictly halving.
    pub levels: Vec<f64>,
    /// Grid budget `U` per (level, bucket) — Lemma 7's count.
    pub grids_per_bucket: usize,
    /// Coverage failure probability the budget was sized for.
    pub fail_prob: f64,
}

/// Hard cap on the grid budget: beyond this, the bucket dimension is too
/// large for ball partitioning to be practical (the regime Lemma 6 rules
/// out and the FJLT + bucketing exist to avoid).
pub const MAX_GRID_BUDGET: usize = 2_000_000;

/// Practical bucket dimension target: per-grid cover probability in
/// `m = 5` dimensions is `V₅/4⁵ ≈ 0.51%`, i.e. ≈200 grid probes per
/// point per bucket-level — the sweet spot between distortion (`√r`
/// grows as buckets shrink) and the `2^{Θ(m log m)}` grid budget.
/// Matches the paper's asymptotics: with `k = O(log n)` and
/// `r = Θ(log log n)`, `m = k/r = Θ(log n / log log n)` sits in single
/// digits at realistic `n`.
pub const MAX_PRACTICAL_BUCKET_DIM: usize = 5;

/// The bucket count the pipeline uses for a working dimension `dim` at
/// `n` points: at least `Θ(log log n)` (the paper's choice) and large
/// enough that buckets have at most [`MAX_PRACTICAL_BUCKET_DIM`]
/// dimensions.
pub fn pipeline_r(n: usize, dim: usize) -> usize {
    HybridParams::recommended_r(n)
        .max(dim.div_ceil(MAX_PRACTICAL_BUCKET_DIM))
        .min(dim.max(1))
}

impl HybridParams {
    /// Derives a schedule for a dataset, following the paper's
    /// parametrization: the top scale is `w₀ = Θ(diag)` **independently
    /// of `r`** (the paper starts at `w = Δ/2`), and levels halve down
    /// to the largest `w` with `2√r·w < min_sep` (distinct points are
    /// then deterministically separated; only exact duplicates remain
    /// together).
    ///
    /// Keeping `w₀` r-independent is what makes Theorem 2's `√r` factor
    /// real: edge weights are `√r·w_i` at a scale schedule shared by all
    /// `r`. (An adaptive `w₀ ∝ 1/√r` would silently renormalize the
    /// factor away; domination only needs `w₀ ≥ diag/(4√r)`, which
    /// `diag/2` satisfies for every `r ≥ 1` — DESIGN.md note 1.)
    ///
    /// `min_sep` is a lower bound on the minimum pairwise distance of
    /// *distinct* points — `1.0` for the paper's `[Δ]^d` integer inputs.
    pub fn for_dataset_with_sep(
        ps: &PointSet,
        r: usize,
        min_sep: f64,
        fail_prob: f64,
    ) -> Result<Self, EmbedError> {
        if ps.is_empty() {
            return Err(EmbedError::EmptyInput);
        }
        if !min_sep.is_finite() || min_sep <= 0.0 {
            return Err(EmbedError::BadSeparation(min_sep));
        }
        if let Some(point) = first_non_finite(ps) {
            return Err(EmbedError::NonFiniteInput { point });
        }
        let orig_dim = ps.dim();
        let dim = pad_dim(orig_dim, r);
        let sqrt_r = (r as f64).sqrt();
        let diag = BoundingBox::of(ps).diagonal().max(min_sep);
        let w0 = pow2_at_least(diag / 2.0);
        let w_floor = min_sep / (2.0 * sqrt_r);
        let mut levels = Vec::new();
        let mut w = w0;
        loop {
            levels.push(w);
            if w < w_floor {
                break;
            }
            w /= 2.0;
        }
        let m = dim / r;
        // Union bound over points, buckets, and levels (Lemma 7).
        let targets = ps.len() * r * levels.len();
        let grids_per_bucket = coverage::grids_needed(m, targets, fail_prob);
        if grids_per_bucket > MAX_GRID_BUDGET {
            return Err(treeemb_mpc::MpcError::AlgorithmFailure(format!(
                "grid budget {grids_per_bucket} exceeds cap: bucket dimension {m} too large \
                 (reduce dimension with the FJLT or increase r)"
            ))
            .into());
        }
        Ok(Self {
            dim,
            orig_dim,
            r,
            levels,
            grids_per_bucket,
            fail_prob,
        })
    }

    /// [`Self::for_dataset_with_sep`] with the `[Δ]^d` convention
    /// (`min_sep = 1`) and failure probability `0.001`.
    pub fn for_dataset(ps: &PointSet, r: usize) -> Result<Self, EmbedError> {
        Self::for_dataset_with_sep(ps, r, 1.0, 1e-3)
    }

    /// The paper's bucket count for the Theorem-1 pipeline:
    /// `r = Θ(log log n)`, at least 1.
    pub fn recommended_r(n: usize) -> usize {
        let ll = (n.max(4) as f64).ln().ln();
        (2.0 * ll).round().max(1.0) as usize
    }

    /// Number of levels in the hierarchy.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Edge weight of a cluster created at level `i`: `√r·w_i`, except
    /// the last level which carries the full geometric tail `2·√r·w_i`
    /// so that truncated and untruncated hierarchies define the same
    /// metric (DESIGN.md note 2).
    pub fn edge_weight(&self, level: usize) -> f64 {
        let base = (self.r as f64).sqrt() * self.levels[level];
        if level + 1 == self.levels.len() {
            2.0 * base
        } else {
            base
        }
    }

    /// Weight of a leaf chain truncated at level `i` (the geometric tail
    /// `Σ_{j≥i} √r·w_j = 2√r·w_i`).
    pub fn tail_weight(&self, level: usize) -> f64 {
        2.0 * (self.r as f64).sqrt() * self.levels[level]
    }

    /// Words occupied by all grids (every level, every bucket) — the
    /// broadcast payload of Algorithm 2, bounded by Lemma 8.
    pub fn total_grid_words(&self) -> usize {
        let m = self.dim / self.r;
        self.num_levels() * self.r * self.grids_per_bucket * (m + 2)
    }
}

/// Estimates the broadcast-grid payload (words) of a hybrid schedule
/// without materializing a point set — the pipeline uses it to size
/// machine capacity before the JL step has produced the working data.
/// Mirrors [`HybridParams::for_dataset_with_sep`]'s derivation from
/// `(diag, min_sep)` instead of points.
pub fn estimate_grid_words(
    n: usize,
    dim: usize,
    r: usize,
    diag: f64,
    min_sep: f64,
    fail_prob: f64,
) -> usize {
    let dim_p = pad_dim(dim, r);
    let m = dim_p / r;
    let sqrt_r = (r as f64).sqrt();
    let w0 = pow2_at_least(diag.max(min_sep) / 2.0);
    let floor = min_sep / (2.0 * sqrt_r);
    let mut levels = 0usize;
    let mut w = w0;
    loop {
        levels += 1;
        if w < floor {
            break;
        }
        w /= 2.0;
    }
    let u = coverage::grids_needed(m, n * r * levels, fail_prob);
    levels * r * u * (m + 2)
}

/// Smallest `dim' ≥ dim` with `r | dim'`.
pub fn pad_dim(dim: usize, r: usize) -> usize {
    assert!(r >= 1);
    dim.div_ceil(r) * r
}

/// Smallest power of two ≥ `x` (for positive finite `x`).
pub fn pow2_at_least(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite());
    let mut w = 1.0;
    while w < x {
        w *= 2.0;
    }
    while w / 2.0 >= x {
        w /= 2.0;
    }
    w
}

/// Schedule for the grid-partitioning (Arora) baseline: analogous
/// derivation with cell diameter `√d·w` in place of `2√r·w`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridParams {
    /// Dimension.
    pub dim: usize,
    /// Cell width per level, halving.
    pub levels: Vec<f64>,
}

impl GridParams {
    /// Derives the grid schedule (see [`HybridParams::for_dataset_with_sep`]).
    pub fn for_dataset_with_sep(ps: &PointSet, min_sep: f64) -> Result<Self, EmbedError> {
        if ps.is_empty() {
            return Err(EmbedError::EmptyInput);
        }
        if !min_sep.is_finite() || min_sep <= 0.0 {
            return Err(EmbedError::BadSeparation(min_sep));
        }
        if let Some(point) = first_non_finite(ps) {
            return Err(EmbedError::NonFiniteInput { point });
        }
        let dim = ps.dim();
        let sqrt_d = (dim as f64).sqrt();
        let diag = BoundingBox::of(ps).diagonal().max(min_sep);
        // Same convention as the hybrid schedule: r-independent top
        // scale Θ(diag) (domination needs only w0 ≥ diag/(2√d)).
        let w0 = pow2_at_least(diag / 2.0);
        let w_floor = min_sep / sqrt_d;
        let mut levels = Vec::new();
        let mut w = w0;
        loop {
            levels.push(w);
            if w < w_floor {
                break;
            }
            w /= 2.0;
        }
        Ok(Self { dim, levels })
    }

    /// `[Δ]^d` convention.
    pub fn for_dataset(ps: &PointSet) -> Result<Self, EmbedError> {
        Self::for_dataset_with_sep(ps, 1.0)
    }

    /// Edge weight at level `i`: `√d·w_i/2`… specifically half the cell
    /// diameter, doubled on the last level as the geometric tail.
    pub fn edge_weight(&self, level: usize) -> f64 {
        let base = (self.dim as f64).sqrt() * self.levels[level] / 2.0;
        if level + 1 == self.levels.len() {
            2.0 * base
        } else {
            base
        }
    }

    /// Tail weight for truncated chains.
    pub fn tail_weight(&self, level: usize) -> f64 {
        (self.dim as f64).sqrt() * self.levels[level]
    }
}

/// Index of the first point with a non-finite coordinate, if any.
pub fn first_non_finite(ps: &PointSet) -> Option<usize> {
    ps.iter().position(|p| p.iter().any(|x| !x.is_finite()))
}

/// Estimates `min_sep` for arbitrary (non-integer) data by an exact
/// `O(n²d)` scan. Audit/runner convenience; the pipelines take the bound
/// as an input per the paper's `[Δ]^d` model.
pub fn measured_min_sep(ps: &PointSet) -> Option<f64> {
    metrics::pairwise_extremes(ps).map(|(min, _)| min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::generators;

    #[test]
    fn pad_dim_rounds_up() {
        assert_eq!(pad_dim(7, 3), 9);
        assert_eq!(pad_dim(9, 3), 9);
        assert_eq!(pad_dim(1, 4), 4);
    }

    #[test]
    fn pow2_at_least_is_tight() {
        assert_eq!(pow2_at_least(5.0), 8.0);
        assert_eq!(pow2_at_least(8.0), 8.0);
        assert_eq!(pow2_at_least(0.3), 0.5);
        assert_eq!(pow2_at_least(1.0), 1.0);
    }

    #[test]
    fn schedule_halves_strictly() {
        let ps = generators::uniform_cube(50, 8, 1 << 8, 1);
        let p = HybridParams::for_dataset(&ps, 2).unwrap();
        for w in p.levels.windows(2) {
            assert_eq!(w[1], w[0] / 2.0);
        }
    }

    #[test]
    fn top_scale_dominates_diagonal() {
        let ps = generators::uniform_cube(50, 8, 1 << 8, 2);
        let p = HybridParams::for_dataset(&ps, 2).unwrap();
        let diag = treeemb_geom::BoundingBox::of(&ps).diagonal();
        assert!(4.0 * (p.r as f64).sqrt() * p.levels[0] >= diag);
    }

    #[test]
    fn top_scale_is_r_independent() {
        // Theorem 2's √r factor requires a shared scale schedule.
        let ps = generators::uniform_cube(50, 8, 1 << 8, 2);
        let p2 = HybridParams::for_dataset(&ps, 2).unwrap();
        let p8 = HybridParams::for_dataset(&ps, 8).unwrap();
        assert_eq!(p2.levels[0], p8.levels[0]);
    }

    #[test]
    fn bottom_scale_separates_unit_distances() {
        let ps = generators::uniform_cube(50, 8, 1 << 8, 3);
        let p = HybridParams::for_dataset(&ps, 4).unwrap();
        let w_last = *p.levels.last().unwrap();
        assert!(2.0 * (p.r as f64).sqrt() * w_last < 1.0);
    }

    #[test]
    fn edge_weights_sum_to_tail() {
        let ps = generators::uniform_cube(30, 8, 256, 4);
        let p = HybridParams::for_dataset(&ps, 2).unwrap();
        for i in 0..p.num_levels() {
            let direct = p.tail_weight(i);
            let summed: f64 = (i..p.num_levels()).map(|j| p.edge_weight(j)).sum();
            assert!((direct - summed).abs() < 1e-9 * direct, "level {i}");
        }
    }

    #[test]
    fn infeasible_bucket_dimension_is_reported() {
        // r = 1 in 16 dimensions: the Lemma-6 regime; must refuse.
        let ps = generators::uniform_cube(20, 16, 256, 5);
        let err = HybridParams::for_dataset(&ps, 1).unwrap_err();
        assert!(matches!(err, EmbedError::Mpc(_)), "{err:?}");
    }

    #[test]
    fn recommended_r_grows_slowly() {
        assert!(HybridParams::recommended_r(1_000_000) >= HybridParams::recommended_r(100));
        assert!(HybridParams::recommended_r(1_000_000_000) <= 8);
    }

    #[test]
    fn empty_input_rejected() {
        let ps = PointSet::new(3);
        assert_eq!(
            HybridParams::for_dataset(&ps, 1).unwrap_err(),
            EmbedError::EmptyInput
        );
        assert_eq!(
            GridParams::for_dataset(&ps).unwrap_err(),
            EmbedError::EmptyInput
        );
    }

    #[test]
    fn grid_params_mirror_hybrid_structure() {
        let ps = generators::uniform_cube(40, 4, 256, 6);
        let g = GridParams::for_dataset(&ps).unwrap();
        assert!(g.levels.len() > 3);
        let summed: f64 = (0..g.levels.len()).map(|j| g.edge_weight(j)).sum();
        assert!((summed - g.tail_weight(0)).abs() < 1e-9 * summed);
    }

    #[test]
    fn non_finite_coordinates_are_rejected_not_panicked() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0], vec![f64::NAN, 0.0]]);
        assert_eq!(
            HybridParams::for_dataset(&ps, 2).unwrap_err(),
            EmbedError::NonFiniteInput { point: 1 }
        );
        let inf = PointSet::from_rows(&[vec![f64::INFINITY]]);
        assert!(matches!(
            GridParams::for_dataset(&inf).unwrap_err(),
            EmbedError::NonFiniteInput { point: 0 }
        ));
    }

    #[test]
    fn grid_budget_counts_lemma7_targets() {
        let ps = generators::uniform_cube(30, 8, 256, 7);
        let small = HybridParams::for_dataset_with_sep(&ps, 4, 1.0, 1e-2).unwrap();
        let strict = HybridParams::for_dataset_with_sep(&ps, 4, 1.0, 1e-6).unwrap();
        assert!(strict.grids_per_bucket > small.grids_per_bucket);
    }
}
