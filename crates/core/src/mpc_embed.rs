//! Algorithm 2: the fully scalable MPC tree embedding.
//!
//! Steps (paper §4):
//!
//! 1. *(single machine)* generate the grids for every (level, bucket)
//!    and **broadcast** them — their total size is what Lemma 8 bounds;
//! 2. distribute points across machines;
//! 3. *(parallel, no communication)* every machine computes, for each of
//!    its points, the point's entire root-to-leaf path: the chain of
//!    hybrid-partition assignments level by level, hashed into stable
//!    node ids so machines agree on shared nodes without talking;
//! 4. deduplicate the emitted edges by node id (one shuffle round) and
//!    assemble the output tree.
//!
//! With the same seed this produces exactly the same partition chains as
//! [`crate::seq::SeqEmbedder`], hence the same tree metric (the
//! sequential tree truncates singleton chains; the weights are arranged
//! so truncation preserves distances — tested below).

use crate::error::EmbedError;
use crate::params::HybridParams;
use crate::seq::{hybrid_level_seed, Embedding};
use std::sync::Arc;
use treeemb_geom::PointSet;
use treeemb_hst::builder::{from_edge_list, EdgeRec};
use treeemb_mpc::primitives::{aggregate, broadcast, shuffle};
use treeemb_mpc::{Runtime, Words};
use treeemb_partition::ids::StructuralHash;
use treeemb_partition::HybridLevel;

/// A point in transit: id + padded coordinates.
#[derive(Debug, Clone)]
struct PointRec {
    id: u32,
    coords: Vec<f64>,
}

impl Words for PointRec {
    fn words(&self) -> usize {
        1 + self.coords.len()
    }
}

/// A computed path or a failure marker produced by step 3.
#[derive(Debug, Clone)]
enum PathOrFail {
    /// The point's full root-to-leaf path.
    Path(PointPath),
    /// Coverage failure for a point at a level/bucket.
    Fail { point: u32, level: u32, bucket: u32 },
}

/// Wire form of a tree edge.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeMsg {
    node: u64,
    parent: u64,
    weight: f64,
    /// `u64::MAX` = internal node; otherwise the leaf's point id.
    point: u64,
}

impl Words for PathOrFail {
    fn words(&self) -> usize {
        match self {
            PathOrFail::Path(p) => p.words(),
            PathOrFail::Fail { .. } => 2,
        }
    }
}

/// Key of the root node in the structural-hash space.
pub fn root_key() -> u64 {
    StructuralHash::root().value()
}

/// A point's root-to-leaf path in the distributed tree: the node ids and
/// edge weights Algorithm 2's machines compute locally. This is the
/// representation the constant-round MPC applications consume
/// (`treeemb-apps::mpc`): every tree query they need reduces to
/// group-by-node-id folds over path elements.
#[derive(Debug, Clone, PartialEq)]
pub struct PointPath {
    /// The point this path belongs to.
    pub point: u32,
    /// `(node id, weight of edge to parent, level)` from the first
    /// level below the root down to the last partitioning level. The
    /// leaf (weight 0) is *not* included; `point` identifies it.
    pub nodes: Vec<(u64, f64, u32)>,
}

impl Words for PointPath {
    fn words(&self) -> usize {
        2 + 3 * self.nodes.len()
    }
}

impl PointPath {
    /// Tree-metric distance between two points computed directly from
    /// their paths: the weights past the longest common node-id prefix,
    /// summed on both sides (plus zero-weight leaves). Identical to
    /// `Hst::distance` on the assembled tree.
    pub fn distance(&self, other: &PointPath) -> f64 {
        if self.point == other.point {
            return 0.0;
        }
        let mut k = 0usize;
        while k < self.nodes.len() && k < other.nodes.len() && self.nodes[k].0 == other.nodes[k].0 {
            k += 1;
        }
        let tail = |p: &PointPath| p.nodes[k..].iter().map(|&(_, w, _)| w).sum::<f64>();
        tail(self) + tail(other)
    }
}

/// Result of [`embed_mpc_full`]: the assembled host-side tree plus the
/// still-distributed per-point paths.
pub struct MpcEmbedding {
    /// Host-side tree (as from [`embed_mpc`]).
    pub embedding: Embedding,
    /// Distributed root-to-leaf paths, one record per point.
    pub paths: treeemb_mpc::Dist<PointPath>,
}

/// Embeds `ps` (post-dimension-reduction; `ps.dim()` should be
/// `O(log n)`) on the simulated cluster. Thin wrapper over
/// [`embed_mpc_full`] for callers that only need the tree.
pub fn embed_mpc(
    rt: &mut Runtime,
    ps: &PointSet,
    params: &HybridParams,
    seed: u64,
) -> Result<Embedding, EmbedError> {
    embed_mpc_full(rt, ps, params, seed).map(|full| full.embedding)
}

/// Algorithm 2 with the distributed paths kept alive for downstream
/// constant-round MPC applications.
pub fn embed_mpc_full(
    rt: &mut Runtime,
    ps: &PointSet,
    params: &HybridParams,
    seed: u64,
) -> Result<MpcEmbedding, EmbedError> {
    if ps.is_empty() {
        return Err(EmbedError::EmptyInput);
    }
    let _embed_sp = treeemb_obs::span!("embed.run", "n" = ps.len(), "levels" = params.num_levels());
    let padded = ps.zero_pad(params.dim);
    let n = padded.len();

    // Step 1: build grids once (machine 0's role) and broadcast their
    // raw shift vectors so Lemma 8's local-space claim is exercised.
    let grids_sp = treeemb_obs::span!("embed.grids");
    let levels: Arc<Vec<HybridLevel>> = Arc::new(
        params
            .levels
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                HybridLevel::new(
                    params.dim,
                    params.r,
                    w,
                    params.grids_per_bucket,
                    hybrid_level_seed(seed, i),
                )
            })
            .collect(),
    );
    // The broadcast is metered (rounds, loads, capacity, pinned
    // residency) without materializing M copies of the shift vectors;
    // machines read the grids through shared state, as real clusters
    // read their local copy.
    let grid_words: usize = levels.iter().map(HybridLevel::words).sum();
    broadcast::broadcast_accounted(rt, grid_words)?;
    drop(grids_sp);

    // Step 2: distribute the points.
    let load_sp = treeemb_obs::span!("embed.load");
    let recs: Vec<PointRec> = padded
        .iter()
        .enumerate()
        .map(|(id, p)| PointRec {
            id: id as u32,
            coords: p.to_vec(),
        })
        .collect();
    let dist = rt.distribute(recs)?;
    drop(load_sp);

    // Step 3: machine-local path construction.
    let paths_sp = treeemb_obs::span!("embed.paths");
    let levels_for_paths = Arc::clone(&levels);
    let params_paths = params.clone();
    let path_results = rt.map_local(dist, move |_, shard| {
        let mut out: Vec<PathOrFail> = Vec::with_capacity(shard.len());
        for rec in &shard {
            let mut chain = StructuralHash::root();
            let mut nodes = Vec::with_capacity(levels_for_paths.len());
            let mut failed = None;
            for (level, lvl) in levels_for_paths.iter().enumerate() {
                // Streams the assignment tokens straight into the chain —
                // the same digest `assign(..).absorb_into(..)` produces,
                // without materializing per-bucket lattice cells.
                match lvl.absorb_assignment_into(&rec.coords, chain.absorb(level as u64)) {
                    Some(next) => {
                        chain = next;
                        nodes.push((chain.value(), params_paths.edge_weight(level), level as u32));
                    }
                    None => {
                        let bucket = failing_bucket(lvl, &rec.coords);
                        failed = Some(PathOrFail::Fail {
                            point: rec.id,
                            level: level as u32,
                            bucket: bucket as u32,
                        });
                        break;
                    }
                }
            }
            out.push(failed.unwrap_or(PathOrFail::Path(PointPath {
                point: rec.id,
                nodes,
            })));
        }
        out
    })?;

    // Surface coverage failures (distributed max over a failure flag —
    // one aggregation tree, O(1) rounds).
    let failure = aggregate::max_by(rt, &path_results, |r| match r {
        PathOrFail::Fail {
            point,
            level,
            bucket,
        } => Some((1u64, *point as u64, *level as u64, *bucket as u64)),
        PathOrFail::Path(_) => None,
    })?
    .flatten();
    if let Some((_, point, level, bucket)) = failure {
        return Err(EmbedError::CoverageFailure {
            level: level as usize,
            bucket: bucket as usize,
            point: point as usize,
        });
    }
    let paths = rt.map_local(path_results, |_, shard| {
        shard
            .into_iter()
            .filter_map(|r| match r {
                PathOrFail::Path(p) => Some(p),
                PathOrFail::Fail { .. } => None,
            })
            .collect::<Vec<PointPath>>()
    })?;
    drop(paths_sp);

    // Step 4: derive the edge list from paths, deduplicate by node id,
    // gather, assemble. (Paths themselves stay distributed for the
    // applications.)
    let edges_sp = treeemb_obs::span!("embed.edges");
    let edges_only = rt.map_local(paths.clone(), |_, shard| {
        let mut out: Vec<EdgeMsg> = Vec::with_capacity(shard.len() * 4);
        for path in &shard {
            out.push(EdgeMsg {
                node: root_key(),
                parent: root_key(),
                weight: 0.0,
                point: u64::MAX,
            });
            let mut parent = root_key();
            for &(node, weight, _level) in &path.nodes {
                out.push(EdgeMsg {
                    node,
                    parent,
                    weight,
                    point: u64::MAX,
                });
                parent = node;
            }
            out.push(EdgeMsg {
                node: leaf_key(parent, path.point),
                parent,
                weight: 0.0,
                point: path.point as u64,
            });
        }
        out
    })?;
    let deduped = shuffle::dedup_by_key(rt, edges_only, |e| e.node)?;
    drop(edges_sp);
    let _assemble_sp = treeemb_obs::span!("embed.assemble");
    let gathered = rt.gather(deduped);
    let edge_recs: Vec<EdgeRec> = gathered
        .into_iter()
        .map(|e| EdgeRec {
            node: e.node,
            parent: e.parent,
            weight: e.weight,
            point: if e.point == u64::MAX {
                None
            } else {
                Some(e.point as usize)
            },
        })
        .collect();
    let tree =
        from_edge_list(&edge_recs, n).map_err(|e| EmbedError::TreeAssembly(e.to_string()))?;
    Ok(MpcEmbedding {
        embedding: Embedding {
            tree,
            method: "hybrid-mpc",
            seed,
        },
        paths,
    })
}

/// Leaf node id of `point` whose chain ends at `chain_end` (the same
/// derivation machines use, so it can be recomputed anywhere).
pub fn leaf_key(chain_end: u64, point: u32) -> u64 {
    StructuralHash(chain_end)
        .absorb(0x1EAF)
        .absorb(point as u64)
        .value()
}

impl Words for EdgeMsg {
    fn words(&self) -> usize {
        4
    }
}

fn failing_bucket(level: &HybridLevel, p: &[f64]) -> usize {
    let m = level.bucket_dim();
    for (j, seq) in level.sequences().iter().enumerate() {
        if seq.first_covering(&p[j * m..(j + 1) * m]).is_none() {
            return j;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqEmbedder;
    use treeemb_geom::generators;
    use treeemb_mpc::MpcConfig;

    fn runtime(cap: usize, machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 16, cap, machines).with_threads(4))
            .build()
    }

    #[test]
    fn mpc_tree_metric_equals_sequential() {
        let ps = generators::uniform_cube(30, 8, 256, 21);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let seed = 5;
        let seq = SeqEmbedder::new(params.clone()).embed(&ps, seed).unwrap();
        let mut rt = runtime(1 << 15, 8);
        let par = embed_mpc(&mut rt, &ps, &params, seed).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let a = seq.tree_distance(i, j);
                let b = par.tree_distance(i, j);
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + a),
                    "pair ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn metric_identical_across_machine_counts() {
        let ps = generators::uniform_cube(20, 8, 128, 8);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let mut rt1 = runtime(1 << 15, 1);
        let mut rt8 = runtime(1 << 15, 13);
        let a = embed_mpc(&mut rt1, &ps, &params, 3).unwrap();
        let b = embed_mpc(&mut rt8, &ps, &params, 3).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert!((a.tree_distance(i, j) - b.tree_distance(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn round_count_constant_in_n() {
        let params_of = |ps: &PointSet| HybridParams::for_dataset(ps, 4).unwrap();
        let mut rounds = Vec::new();
        for n in [16usize, 64] {
            let ps = generators::uniform_cube(n, 8, 256, 2);
            let mut rt = runtime(1 << 15, 8);
            let _ = embed_mpc(&mut rt, &ps, &params_of(&ps), 1).unwrap();
            rounds.push(rt.metrics().rounds());
        }
        assert_eq!(rounds[0], rounds[1], "rounds must not grow with n");
        assert!(rounds[0] <= 8, "rounds = {}", rounds[0]);
    }

    #[test]
    fn duplicates_get_distinct_leaves() {
        let ps = PointSet::from_rows(&[vec![9.0, 9.0], vec![9.0, 9.0], vec![100.0, 50.0]]);
        let params = HybridParams::for_dataset(&ps, 2).unwrap();
        let mut rt = runtime(1 << 14, 4);
        let emb = embed_mpc(&mut rt, &ps, &params, 7).unwrap();
        assert_eq!(emb.tree.num_points(), 3);
        assert_eq!(emb.tree_distance(0, 1), 0.0);
        assert!(emb.tree_distance(0, 2) > 0.0);
    }

    #[test]
    fn domination_holds_for_mpc_tree() {
        let ps = generators::gaussian_clusters(24, 8, 3, 4.0, 512, 6);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let mut rt = runtime(1 << 15, 6);
        let emb = embed_mpc(&mut rt, &ps, &params, 11).unwrap();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let e = treeemb_geom::metrics::dist(ps.point(i), ps.point(j));
                assert!(emb.tree_distance(i, j) >= e * (1.0 - 1e-9));
            }
        }
    }

    #[test]
    fn grid_broadcast_is_metered() {
        let ps = generators::uniform_cube(16, 8, 128, 4);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let mut rt = runtime(1 << 15, 8);
        let _ = embed_mpc(&mut rt, &ps, &params, 1).unwrap();
        assert!(rt.metrics().rounds_labeled("broadcast") >= 1);
        // Broadcast volume at least (machines-1) * payload.
        assert!(rt.metrics().total_sent_words() >= 7 * params.total_grid_words() / 2);
    }

    #[test]
    fn compressed_mpc_tree_matches_sequential_size_and_metric() {
        let ps = generators::uniform_cube(30, 8, 256, 23);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let seq = SeqEmbedder::new(params.clone()).embed(&ps, 4).unwrap();
        let mut rt = runtime(1 << 15, 8);
        let par = embed_mpc(&mut rt, &ps, &params, 4).unwrap();
        let compressed = par.tree.compress();
        assert!(
            compressed.num_nodes() < par.tree.num_nodes(),
            "compression removed nothing ({} nodes)",
            par.tree.num_nodes()
        );
        // The sequential tree truncates chains but keeps a zero-weight
        // leaf merge point less often; sizes agree within 2x and the
        // metric exactly.
        assert!(compressed.num_nodes() <= 2 * seq.tree.num_nodes());
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                let a = seq.tree_distance(i, j);
                let b = compressed.distance(i, j);
                assert!((a - b).abs() < 1e-9 * (1.0 + a), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn paths_reproduce_the_tree_metric() {
        let ps = generators::uniform_cube(24, 8, 256, 17);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let mut rt = runtime(1 << 15, 6);
        let full = crate::mpc_embed::embed_mpc_full(&mut rt, &ps, &params, 5).unwrap();
        let paths = rt.gather(full.paths);
        assert_eq!(paths.len(), 24);
        let by_point: std::collections::HashMap<u32, &PointPath> =
            paths.iter().map(|p| (p.point, p)).collect();
        for i in 0..24u32 {
            for j in (i + 1)..24 {
                let from_paths = by_point[&i].distance(by_point[&j]);
                let from_tree = full.embedding.tree_distance(i as usize, j as usize);
                assert!(
                    (from_paths - from_tree).abs() < 1e-9 * (1.0 + from_tree),
                    "({i},{j}): {from_paths} vs {from_tree}"
                );
            }
        }
    }

    #[test]
    fn path_levels_are_sequential() {
        let ps = generators::uniform_cube(8, 8, 128, 19);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let mut rt = runtime(1 << 15, 2);
        let full = crate::mpc_embed::embed_mpc_full(&mut rt, &ps, &params, 1).unwrap();
        for path in rt.gather(full.paths) {
            assert_eq!(path.nodes.len(), params.num_levels());
            for (i, &(_, w, level)) in path.nodes.iter().enumerate() {
                assert_eq!(level as usize, i);
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn too_small_capacity_reports_failure() {
        let ps = generators::uniform_cube(64, 8, 256, 4);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        // Capacity far below the grid payload: broadcast must fail.
        let mut rt = runtime(64, 8);
        let err = embed_mpc(&mut rt, &ps, &params, 1).unwrap_err();
        assert!(matches!(err, EmbedError::Mpc(_)), "{err:?}");
    }
}
