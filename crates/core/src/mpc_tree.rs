//! Distributed tree operations via pointer doubling — the
//! "MapReduce algorithms for massive trees" direction the paper points
//! at in §1.3.3 (\[17\]): evaluating path quantities on a tree that lives
//! *distributed as an edge list*, in `O(log depth)` MPC rounds, without
//! ever assembling it on one machine.
//!
//! Our own applications get O(1) rounds because Algorithm 2 hands every
//! point its root-to-leaf path; this module covers the general case —
//! any distributed weighted tree — using the classic technique: every
//! node keeps a pointer (initially its parent) plus accumulated weight
//! and hop counters; each round, pointers jump to their pointer's
//! pointer (one distributed hash join), halving the remaining distance
//! to the root.

use crate::error::EmbedError;
use treeemb_mpc::primitives::{aggregate, join};
use treeemb_mpc::{Dist, MpcError, Runtime, Words};

/// One edge of a distributed tree: the root has `parent == node`,
/// `weight = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEdge {
    /// Node key.
    pub node: u64,
    /// Parent key (== `node` for the root).
    pub parent: u64,
    /// Weight of the edge to the parent.
    pub weight: f64,
}

impl Words for TreeEdge {
    fn words(&self) -> usize {
        3
    }
}

/// Result of [`root_paths`]: per node, its distance and hop count to
/// the root.
#[derive(Debug, Clone, PartialEq)]
pub struct RootPath {
    /// Node key.
    pub node: u64,
    /// Sum of edge weights up to the root.
    pub root_dist: f64,
    /// Depth (root = 0).
    pub depth: u32,
}

impl Words for RootPath {
    fn words(&self) -> usize {
        3
    }
}

/// Pointer-doubling state: `acc_*` accumulate the path from `node` to
/// `ptr`.
#[derive(Debug, Clone)]
struct State {
    node: u64,
    ptr: u64,
    acc_w: f64,
    acc_d: u32,
}

impl Words for State {
    fn words(&self) -> usize {
        4
    }
}

/// Safety cap on doubling iterations (`depth < 2^40` always holds).
const MAX_DOUBLING_STEPS: usize = 40;

/// Computes every node's distance and depth to the root of a
/// distributed tree in `O(log depth)` rounds (one hash join plus one
/// aggregation per doubling step).
///
/// Fails with an [`MpcError::AlgorithmFailure`] if the edge list has no
/// self-looping root or does not converge (a cycle).
pub fn root_paths(rt: &mut Runtime, edges: Dist<TreeEdge>) -> Result<Dist<RootPath>, EmbedError> {
    // Identify the root: the unique self-looping node.
    let root = aggregate::max_by(rt, &edges, |e| {
        if e.parent == e.node {
            Some(e.node)
        } else {
            None
        }
    })?
    .flatten()
    .ok_or_else(|| -> EmbedError {
        MpcError::AlgorithmFailure("edge list has no root".into()).into()
    })?;

    // Initial state: pointer = parent, accumulators = the parent edge.
    let mut states = rt.map_local(edges, |_, shard| {
        shard
            .into_iter()
            .map(|e| {
                let is_root = e.parent == e.node;
                State {
                    node: e.node,
                    ptr: e.parent,
                    acc_w: if is_root { 0.0 } else { e.weight },
                    acc_d: u32::from(!is_root),
                }
            })
            .collect::<Vec<State>>()
    })?;

    let mut converged = false;
    for _ in 0..MAX_DOUBLING_STEPS {
        // Are any pointers still short of the root?
        let pending = aggregate::max_by(rt, &states, |s| u64::from(s.ptr != root))?.unwrap_or(0);
        if pending == 0 {
            converged = true;
            break;
        }
        // Jump: ptr <- ptr's ptr, accumulating ptr's path. The root's
        // state has acc 0 and ptr = itself, so finished states are
        // fixed points of the join.
        let lookup = states.clone();
        states = join::join_by_key(
            rt,
            states,
            lookup,
            |l: &State| l.ptr,
            |r: &State| r.node,
            |l, r| State {
                node: l.node,
                ptr: r.ptr,
                acc_w: l.acc_w + r.acc_w,
                // Saturating: on a (rejected) cyclic input the counter
                // would double past u32 before the step cap trips.
                acc_d: l.acc_d.saturating_add(r.acc_d),
            },
        )?;
    }
    if !converged {
        return Err(MpcError::AlgorithmFailure(
            "pointer doubling did not converge (cycle in the edge list?)".into(),
        )
        .into());
    }

    rt.map_local(states, |_, shard| {
        shard
            .into_iter()
            .map(|s| RootPath {
                node: s.node,
                root_dist: s.acc_w,
                depth: s.acc_d,
            })
            .collect::<Vec<RootPath>>()
    })
    .map_err(EmbedError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_mpc::MpcConfig;

    fn runtime(machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 4096, machines).with_threads(4))
            .build()
    }

    /// A path graph of `n` nodes: 0 <- 1 <- 2 ... (worst-case depth).
    fn path_edges(n: u64) -> Vec<TreeEdge> {
        (0..n)
            .map(|i| TreeEdge {
                node: i,
                parent: i.saturating_sub(1),
                weight: if i == 0 { 0.0 } else { i as f64 },
            })
            .collect()
    }

    #[test]
    fn path_graph_distances_and_depths() {
        let mut rt = runtime(8);
        let edges = rt.distribute(path_edges(64)).unwrap();
        let paths = root_paths(&mut rt, edges).unwrap();
        let mut out = rt.gather(paths);
        out.sort_by_key(|p| p.node);
        for (i, p) in out.iter().enumerate() {
            let i = i as u64;
            assert_eq!(p.depth, i as u32);
            // Sum of 1..=i.
            let expect = (i * (i + 1) / 2) as f64;
            assert!((p.root_dist - expect).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn rounds_are_logarithmic_in_depth() {
        // Depth 256 path: doubling needs ~8 jumps; each jump costs a
        // join + a convergence reduce. Rounds must stay far below 256.
        let mut rt = runtime(16);
        let edges = rt.distribute(path_edges(256)).unwrap();
        let _ = root_paths(&mut rt, edges).unwrap();
        let rounds = rt.metrics().rounds();
        assert!(rounds <= 4 * 10, "rounds = {rounds} not logarithmic");
        assert!(rounds >= 8, "suspiciously few rounds: {rounds}");
    }

    #[test]
    fn matches_host_tree_on_random_hst() {
        use crate::params::HybridParams;
        use crate::seq::SeqEmbedder;
        let ps = treeemb_geom::generators::uniform_cube(40, 8, 512, 3);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let emb = SeqEmbedder::new(params).embed(&ps, 9).unwrap();
        // Ship the tree as a distributed edge list (arena ids as keys).
        let doc = emb.tree.to_document();
        let edges: Vec<TreeEdge> = doc
            .edges
            .iter()
            .map(|&(node, parent, weight, _)| TreeEdge {
                node,
                parent,
                weight,
            })
            .collect();
        let mut rt = runtime(8);
        let dist = rt.distribute(edges).unwrap();
        let paths = root_paths(&mut rt, dist).unwrap();
        for p in rt.gather(paths) {
            let id = p.node as usize;
            let expect = emb.tree.weight_to_root(id);
            assert!(
                (p.root_dist - expect).abs() < 1e-9 * (1.0 + expect),
                "node {id}: {} vs {expect}",
                p.root_dist
            );
            assert_eq!(p.depth, emb.tree.node(id).depth);
        }
    }

    #[test]
    fn star_converges_in_one_jump_check() {
        let mut rt = runtime(4);
        let mut edges = vec![TreeEdge {
            node: 0,
            parent: 0,
            weight: 0.0,
        }];
        edges.extend((1..50u64).map(|i| TreeEdge {
            node: i,
            parent: 0,
            weight: 2.0,
        }));
        let dist = rt.distribute(edges).unwrap();
        let paths = root_paths(&mut rt, dist).unwrap();
        let out = rt.gather(paths);
        assert!(out.iter().all(|p| p.depth <= 1));
        assert!(out.iter().filter(|p| p.root_dist == 2.0).count() == 49);
    }

    #[test]
    fn rootless_cycle_is_rejected() {
        let mut rt = runtime(4);
        let edges = vec![
            TreeEdge {
                node: 1,
                parent: 2,
                weight: 1.0,
            },
            TreeEdge {
                node: 2,
                parent: 1,
                weight: 1.0,
            },
        ];
        let dist = rt.distribute(edges).unwrap();
        let err = root_paths(&mut rt, dist).unwrap_err();
        assert!(matches!(
            err,
            EmbedError::Mpc(MpcError::AlgorithmFailure(_))
        ));
    }

    #[test]
    fn cycle_with_root_elsewhere_fails_to_converge() {
        let mut rt = runtime(4);
        let edges = vec![
            TreeEdge {
                node: 0,
                parent: 0,
                weight: 0.0,
            },
            TreeEdge {
                node: 1,
                parent: 2,
                weight: 1.0,
            },
            TreeEdge {
                node: 2,
                parent: 1,
                weight: 1.0,
            },
        ];
        let dist = rt.distribute(edges).unwrap();
        let err = root_paths(&mut rt, dist).unwrap_err();
        assert!(
            matches!(err, EmbedError::Mpc(MpcError::AlgorithmFailure(_))),
            "{err:?}"
        );
    }
}
