//! Property tests for the applications: structural guarantees that must
//! hold for every input and seed.

use proptest::prelude::*;
use treeemb_apps::emd::{exact_emd, tree_emd};
use treeemb_apps::exact::matching::min_cost_matching;
use treeemb_apps::exact::prim;
use treeemb_apps::kmedian::{kmedian_cost_tree, tree_kmedian};
use treeemb_apps::mst::tree_mst;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::{Embedding, SeqEmbedder};
use treeemb_geom::PointSet;

fn point_set() -> impl Strategy<Value = PointSet> {
    (2usize..=4, 3usize..=10).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(1i32..=128, d), n).prop_map(|rows| {
            let rows: Vec<Vec<f64>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(f64::from).collect())
                .collect();
            PointSet::from_rows(&rows)
        })
    })
}

fn embed(ps: &PointSet, seed: u64) -> Embedding {
    let r = 2.min(ps.dim());
    SeqEmbedder::new(HybridParams::for_dataset(ps, r).unwrap())
        .embed(ps, seed)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_mst_spans_and_dominates_exact(ps in point_set(), seed in 0u64..500) {
        let emb = embed(&ps, seed);
        let st = tree_mst(&emb, &ps);
        prop_assert!(prim::is_spanning_tree(ps.len(), &st.edges));
        let exact = prim::mst(&ps);
        prop_assert!(st.cost >= exact.cost * (1.0 - 1e-9));
    }

    #[test]
    fn tree_emd_is_symmetric_and_dominates(ps in point_set(), seed in 0u64..500) {
        let emb = embed(&ps, seed);
        let half = ps.len() / 2;
        if half == 0 {
            return Ok(());
        }
        let a: Vec<usize> = (0..half).collect();
        let b: Vec<usize> = (half..2 * half).collect();
        let ab = tree_emd(&emb, &a, &b);
        let ba = tree_emd(&emb, &b, &a);
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab), "EMD not symmetric");
        let exact = exact_emd(&ps, &a, &b);
        prop_assert!(ab >= exact * (1.0 - 1e-9), "tree EMD {ab} < exact {exact}");
    }

    #[test]
    fn kmedian_dp_is_optimal_and_monotone(ps in point_set(), seed in 0u64..500) {
        let emb = embed(&ps, seed);
        let n = ps.len();
        let mut prev = f64::INFINITY;
        for k in 1..=3.min(n) {
            let result = tree_kmedian(&emb, k);
            prop_assert_eq!(result.medians.len(), k);
            // The claimed cost is achieved by the returned medians.
            let achieved = kmedian_cost_tree(&emb, &result.medians);
            prop_assert!(
                (achieved - result.tree_cost).abs() < 1e-9 * (1.0 + achieved),
                "claimed {} vs achieved {achieved}", result.tree_cost
            );
            prop_assert!(result.tree_cost <= prev + 1e-9, "cost not monotone in k");
            prev = result.tree_cost;
        }
    }

    #[test]
    fn hungarian_cost_never_exceeds_any_permutation(
        cost_rows in proptest::collection::vec(
            proptest::collection::vec(0f64..100.0, 4),
            4,
        ),
        perm_seed in 0usize..24,
    ) {
        let (_, optimal) = min_cost_matching(&cost_rows);
        // Compare against one arbitrary permutation.
        let mut perm = [0usize, 1, 2, 3];
        // perm_seed indexes a fixed enumeration of S4 cheaply.
        let mut s = perm_seed;
        for i in (1..4).rev() {
            perm.swap(i, s % (i + 1));
            s /= i + 1;
        }
        let candidate: f64 = perm.iter().enumerate().map(|(i, &j)| cost_rows[i][j]).sum();
        prop_assert!(optimal <= candidate + 1e-9);
    }
}
