//! Constant-round **MPC** versions of the Corollary-1 applications.
//!
//! Corollary 1 claims O(1)-round MPC algorithms, not just sequential
//! post-processing. The key observation: after Algorithm 2, every point
//! carries its root-to-leaf path ([`PointPath`]), so each tree statistic
//! the applications need is a *group-by-node-id fold* over path
//! elements — one shuffle round plus an aggregation tree:
//!
//! * EMD: per-node surplus `|#A − #B|` → weighted sum;
//! * densest ball: per-node counts + level-determined diameter bounds →
//!   global argmax;
//! * MST: per-parent child-representative chains → an edge list of size
//!   `n − 1` priced in Euclidean space.
//!
//! Every function is tested against its sequential counterpart.

use treeemb_core::mpc_embed::PointPath;
use treeemb_mpc::primitives::{aggregate, shuffle};
use treeemb_mpc::{Dist, MpcResult, Runtime};

/// Tree EMD between the multisets `{p : sign(p) > 0}` (with
/// multiplicity `sign`) and `{p : sign(p) < 0}`, computed in O(1)
/// rounds: `Σ_nodes w(node)·|Σ signs under node|`.
pub fn mpc_tree_emd<F>(rt: &mut Runtime, paths: Dist<PointPath>, sign: F) -> MpcResult<f64>
where
    F: Fn(u32) -> i64 + Sync + Send + Copy,
{
    let per_node = rt.map_local(paths, move |_, shard| {
        let mut out: Vec<(u64, f64, i64)> = Vec::new();
        for p in &shard {
            let s = sign(p.point);
            if s != 0 {
                for &(node, w, _) in &p.nodes {
                    out.push((node, w, s));
                }
            }
        }
        out
    })?;
    let folded = shuffle::group_fold(
        rt,
        per_node,
        |r| r.0,
        |_k, group| {
            let w = group[0].1;
            let surplus: i64 = group.iter().map(|r| r.2).sum();
            w * surplus.unsigned_abs() as f64
        },
    )?;
    aggregate::sum_by(rt, &folded, |x| *x)
}

/// Result of the distributed densest-ball query.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcDenseCluster {
    /// Winning tree node.
    pub node: u64,
    /// Points in its subtree.
    pub count: u64,
    /// Tree-diameter bound of the cluster (`2 × below-weight`).
    pub tree_diameter_bound: f64,
    /// Member point ids.
    pub points: Vec<u32>,
}

/// Densest ball in O(1) rounds: the heaviest node whose subtree
/// tree-diameter (`2 Σ weights below it`, uniform per level) is at most
/// `max_tree_diameter`. Two passes: count-and-argmax, then membership
/// retrieval.
pub fn mpc_densest_cluster(
    rt: &mut Runtime,
    paths: Dist<PointPath>,
    max_tree_diameter: f64,
) -> MpcResult<MpcDenseCluster> {
    // Pass 1: per-node (count, below-weight). The root is represented
    // explicitly (its below-weight is the whole path weight).
    let root = treeemb_core::mpc_embed::root_key();
    let per_node = rt.map_local(paths.clone(), move |_, shard| {
        let mut out: Vec<(u64, f64)> = Vec::new();
        for p in &shard {
            // Suffix sums: below-weight of nodes[i] is the sum of the
            // weights at indices > i (leaf edges weigh 0).
            let mut below = 0.0;
            let mut suffix: Vec<f64> = vec![0.0; p.nodes.len()];
            for i in (0..p.nodes.len()).rev() {
                suffix[i] = below;
                below += p.nodes[i].1;
            }
            out.push((root, below));
            for (i, &(node, _, _)) in p.nodes.iter().enumerate() {
                out.push((node, suffix[i]));
            }
        }
        out
    })?;
    let counted = shuffle::group_fold(
        rt,
        per_node,
        |r| r.0,
        |node, group| {
            let below = group[0].1;
            (node, group.len() as u64, below)
        },
    )?;
    let best = aggregate::max_by(rt, &counted, move |&(node, count, below)| {
        if 2.0 * below <= max_tree_diameter {
            // Order by count, tie-break smaller diameter (negated bits),
            // then node id for determinism.
            Some((count, u64::MAX - below.to_bits(), node))
        } else {
            None
        }
    })?
    .flatten();
    let Some((count, _, node)) = best else {
        return Err(treeemb_mpc::MpcError::AlgorithmFailure(
            "no tree node satisfies the diameter bound (bound below leaf level?)".into(),
        ));
    };

    // Pass 2: membership retrieval (and the winning node's below-weight,
    // recoverable from any member's path suffix).
    let members = rt.map_local(paths, move |_, shard| {
        shard
            .into_iter()
            .filter_map(|p| {
                let below: f64 = if node == root {
                    p.nodes.iter().map(|&(_, w, _)| w).sum()
                } else {
                    let idx = p.nodes.iter().position(|&(id, _, _)| id == node)?;
                    p.nodes[idx + 1..].iter().map(|&(_, w, _)| w).sum()
                };
                Some((p.point, below))
            })
            .collect::<Vec<(u32, f64)>>()
    })?;
    let gathered = rt.gather(members);
    let below = gathered.first().map(|&(_, b)| b).unwrap_or(0.0);
    let mut points: Vec<u32> = gathered.into_iter().map(|(p, _)| p).collect();
    points.sort_unstable();
    debug_assert_eq!(points.len() as u64, count);
    Ok(MpcDenseCluster {
        node,
        count,
        tree_diameter_bound: 2.0 * below,
        points,
    })
}

/// Spanning-tree edge list from the distributed embedding in O(1)
/// rounds: within every internal node, consecutive child clusters are
/// stitched through their minimum-point-id representatives. The edges
/// (point-id pairs, `n − 1` of them) are gathered for Euclidean pricing
/// by the caller.
pub fn mpc_mst_edges(rt: &mut Runtime, paths: Dist<PointPath>) -> MpcResult<Vec<(u32, u32)>> {
    // Records: (parent node, child node, point under child). The root's
    // children use the root sentinel parent; each point also emits a
    // unique leaf child under its last node so duplicate groups chain.
    let root = treeemb_core::mpc_embed::root_key();
    let records = rt.map_local(paths, move |_, shard| {
        let mut out: Vec<(u64, u64, u32)> = Vec::new();
        for p in &shard {
            let mut parent = root;
            for &(node, _, _) in &p.nodes {
                out.push((parent, node, p.point));
                parent = node;
            }
            let leaf = treeemb_core::mpc_embed::leaf_key(parent, p.point);
            out.push((parent, leaf, p.point));
        }
        out
    })?;
    // Group by parent: representative (min point) per child, then chain
    // consecutive children.
    let edges = shuffle::group_fold(
        rt,
        records,
        |r| r.0,
        |_parent, group| {
            let mut reps: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
            for (_, child, point) in group {
                reps.entry(child)
                    .and_modify(|m| *m = (*m).min(point))
                    .or_insert(point);
            }
            let chain: Vec<u32> = reps.into_values().collect();
            chain
                .windows(2)
                .map(|w| (w[0], w[1]))
                .collect::<Vec<(u32, u32)>>()
        },
    )?;
    let flat = rt.map_local(edges, |_, shard| {
        shard.into_iter().flatten().collect::<Vec<(u32, u32)>>()
    })?;
    let mut out = rt.gather(flat);
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::densest_ball::densest_cluster;
    use crate::emd::tree_emd;
    use crate::exact::prim;
    use crate::mst::tree_mst;
    use treeemb_core::mpc_embed::embed_mpc_full;
    use treeemb_core::params::HybridParams;
    use treeemb_geom::generators;
    use treeemb_mpc::MpcConfig;

    fn setup(
        n: usize,
        seed: u64,
    ) -> (
        treeemb_geom::PointSet,
        Runtime,
        treeemb_core::seq::Embedding,
        Dist<PointPath>,
    ) {
        let ps = generators::gaussian_clusters(n, 8, 3, 3.0, 1 << 10, seed);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let cap = (params.total_grid_words() * 4).max(1 << 16);
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(n * 9, cap, 8).with_threads(4))
            .build();
        let full = embed_mpc_full(&mut rt, &ps, &params, seed).unwrap();
        (ps, rt, full.embedding, full.paths)
    }

    #[test]
    fn mpc_emd_matches_sequential_tree_emd() {
        let (_, mut rt, emb, paths) = setup(30, 3);
        let a: Vec<usize> = (0..15).collect();
        let b: Vec<usize> = (15..30).collect();
        let seq = tree_emd(&emb, &a, &b);
        let par = mpc_tree_emd(&mut rt, paths, |p| if p < 15 { 1 } else { -1 }).unwrap();
        assert!((seq - par).abs() < 1e-9 * (1.0 + seq), "{seq} vs {par}");
    }

    #[test]
    fn mpc_emd_uses_constant_extra_rounds() {
        let (_, mut rt, _, paths) = setup(40, 5);
        let before = rt.metrics().rounds();
        let _ = mpc_tree_emd(&mut rt, paths, |p| if p % 2 == 0 { 1 } else { -1 }).unwrap();
        let extra = rt.metrics().rounds() - before;
        assert!(extra <= 4, "EMD used {extra} rounds");
    }

    #[test]
    fn mpc_densest_matches_sequential_count() {
        let (_, mut rt, emb, paths) = setup(40, 7);
        for bound in [50.0, 400.0, 1e6] {
            let seq = densest_cluster(&emb, bound);
            let par = mpc_densest_cluster(&mut rt, paths.clone(), bound).unwrap();
            assert_eq!(seq.count as u64, par.count, "bound {bound}");
            assert!(par.tree_diameter_bound <= bound);
            assert_eq!(par.points.len() as u64, par.count);
        }
    }

    #[test]
    fn mpc_densest_members_fit_bound() {
        let (ps, mut rt, _, paths) = setup(50, 9);
        let par = mpc_densest_cluster(&mut rt, paths, 200.0).unwrap();
        let ids: Vec<usize> = par.points.iter().map(|&p| p as usize).collect();
        let members = ps.select(&ids);
        let diam = treeemb_geom::metrics::diameter(&members);
        assert!(diam <= par.tree_diameter_bound + 1e-9, "{diam} > bound");
    }

    #[test]
    fn mpc_mst_is_spanning_and_matches_sequential_structure() {
        let (ps, mut rt, emb, paths) = setup(35, 11);
        let edges = mpc_mst_edges(&mut rt, paths).unwrap();
        let e: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(a, b)| (a as usize, b as usize))
            .collect();
        assert!(
            prim::is_spanning_tree(35, &e),
            "not a spanning tree: {} edges",
            e.len()
        );
        // Same representative-stitching rule as the sequential tree_mst:
        // edge sets agree as sets (orientation may differ).
        let seq = tree_mst(&emb, &ps);
        let norm = |edges: &[(usize, usize)]| {
            let mut v: Vec<(usize, usize)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&e), norm(&seq.edges));
    }

    #[test]
    fn mpc_emd_zero_for_identical_multisets() {
        let (_, mut rt, _, paths) = setup(20, 13);
        // sign 0 everywhere: no mass.
        let v = mpc_tree_emd(&mut rt, paths, |_| 0).unwrap();
        assert_eq!(v, 0.0);
    }
}
