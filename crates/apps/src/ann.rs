//! Approximate nearest neighbors through the hierarchy — closing the
//! loop with Ailon–Chazelle, whose FJLT paper (the paper's \[2\],
//! *"Approximate nearest neighbors and the fast Johnson–Lindenstrauss
//! transform"*) built the transform *for* ANN.
//!
//! The index stores, per level, a map from partition-chain hashes to a
//! representative point. A query point is assigned through the *same*
//! seeded hybrid partitionings (out-of-sample assignment is just
//! [`HybridLevel::assign`]); the deepest level whose chain matches an
//! indexed chain yields the answer. Points that share a partition at
//! scale `w` are within `2√r·w`, and a true nearest neighbor at
//! distance `δ` stays un-separated from the query down to scale
//! `w ≈ δ·√d` in expectation — so the returned point is an
//! `O(E[distortion])`-approximate nearest neighbor, in `O(logΔ)` query
//! time (hash probes), independent of `n`.

use std::collections::HashMap;
use treeemb_core::error::EmbedError;
use treeemb_core::params::HybridParams;
use treeemb_core::seq::SeqEmbedder;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;
use treeemb_partition::ids::StructuralHash;
use treeemb_partition::HybridLevel;

/// A tree-embedding-backed approximate-nearest-neighbor index.
pub struct AnnIndex {
    levels: Vec<HybridLevel>,
    /// Per level: chain hash → representative point id (the first point
    /// indexed into that cluster).
    chains: Vec<HashMap<u64, usize>>,
    /// Working (padded) dimension.
    dim: usize,
    /// Any point id, the fallback when nothing matches at any level.
    fallback: usize,
}

impl AnnIndex {
    /// Builds the index over `ps` with an existing hybrid schedule and
    /// seed (the same derivation as [`SeqEmbedder`], so an index and an
    /// embedding built with equal parameters see identical partitions).
    pub fn build(ps: &PointSet, params: &HybridParams, seed: u64) -> Result<Self, EmbedError> {
        if ps.is_empty() {
            return Err(EmbedError::EmptyInput);
        }
        let padded = ps.zero_pad(params.dim);
        let levels = SeqEmbedder::new(params.clone()).build_levels(seed);
        let mut chains: Vec<HashMap<u64, usize>> = vec![HashMap::new(); levels.len()];
        for p in 0..padded.len() {
            let mut chain = StructuralHash::root();
            for (li, lvl) in levels.iter().enumerate() {
                match lvl.assign(padded.point(p)) {
                    Some(a) => {
                        chain = a.absorb_into(chain.absorb(li as u64));
                        chains[li].entry(chain.value()).or_insert(p);
                    }
                    None => {
                        let bucket = failing_bucket(lvl, padded.point(p));
                        return Err(EmbedError::CoverageFailure {
                            level: li,
                            bucket,
                            point: p,
                        });
                    }
                }
            }
        }
        Ok(Self {
            levels,
            chains,
            dim: params.dim,
            fallback: 0,
        })
    }

    /// Number of levels probed per query.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Returns an approximate nearest neighbor of `q` (point id into the
    /// indexed set): the representative of the deepest cluster whose
    /// partition chain `q` shares. `O(logΔ)` hash probes.
    ///
    /// `q.len()` must equal the original dimension (it is zero-padded
    /// internally like the indexed points).
    pub fn query(&self, q: &[f64]) -> usize {
        let mut padded = q.to_vec();
        padded.resize(self.dim, 0.0);
        let mut chain = StructuralHash::root();
        let mut best = self.fallback;
        for (li, lvl) in self.levels.iter().enumerate() {
            match lvl.assign(&padded) {
                Some(a) => {
                    chain = a.absorb_into(chain.absorb(li as u64));
                    match self.chains[li].get(&chain.value()) {
                        Some(&rep) => best = rep,
                        None => break, // chain diverged from every indexed point
                    }
                }
                None => break, // query fell outside coverage at this level
            }
        }
        best
    }

    /// Best-of-`k` query over independently seeded indices, the standard
    /// variance reduction: build several indices (different seeds) and
    /// return the candidate closest to `q` in true Euclidean distance.
    pub fn query_best_of(indices: &[AnnIndex], ps: &PointSet, q: &[f64]) -> usize {
        assert!(!indices.is_empty());
        indices
            .iter()
            .map(|ix| ix.query(q))
            .min_by(|&a, &b| {
                dist(ps.point(a), q)
                    .partial_cmp(&dist(ps.point(b), q))
                    .expect("finite distances")
            })
            .expect("at least one index")
    }
}

fn failing_bucket(level: &HybridLevel, p: &[f64]) -> usize {
    let m = level.bucket_dim();
    for (j, seq) in level.sequences().iter().enumerate() {
        if seq.assign(&p[j * m..(j + 1) * m]).is_none() {
            return j;
        }
    }
    0
}

/// Exact nearest neighbor by linear scan (baseline).
pub fn exact_nearest(ps: &PointSet, q: &[f64]) -> usize {
    assert!(!ps.is_empty());
    (0..ps.len())
        .min_by(|&a, &b| {
            dist(ps.point(a), q)
                .partial_cmp(&dist(ps.point(b), q))
                .expect("finite distances")
        })
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_geom::generators;

    fn build_index(ps: &PointSet, seed: u64) -> AnnIndex {
        let params = HybridParams::for_dataset(ps, 4).unwrap();
        AnnIndex::build(ps, &params, seed).unwrap()
    }

    #[test]
    fn indexed_points_find_themselves() {
        let ps = generators::uniform_cube(60, 8, 1 << 10, 3);
        let ix = build_index(&ps, 1);
        for p in 0..ps.len() {
            let hit = ix.query(ps.point(p));
            // Exact duplicates may shadow each other; distance must be 0.
            assert_eq!(
                treeemb_geom::metrics::dist(ps.point(hit), ps.point(p)),
                0.0,
                "point {p} found {hit}"
            );
        }
    }

    #[test]
    fn query_near_a_point_returns_something_close() {
        let ps = generators::gaussian_clusters(80, 8, 4, 3.0, 1 << 10, 5);
        let indices: Vec<AnnIndex> = (0..5).map(|s| build_index(&ps, 100 + s)).collect();
        let mut ratios = Vec::new();
        for t in 0..30 {
            // Perturb an indexed point slightly.
            let base = ps.point(t).to_vec();
            let q: Vec<f64> = base.iter().map(|x| x + 0.4).collect();
            let approx = AnnIndex::query_best_of(&indices, &ps, &q);
            let exact = exact_nearest(&ps, &q);
            let ra = dist(ps.point(approx), &q);
            let re = dist(ps.point(exact), &q).max(1e-9);
            ratios.push(ra / re);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 8.0, "mean ANN ratio {mean}");
        // Most queries should be answered near-exactly.
        let good = ratios.iter().filter(|&&r| r < 2.0).count();
        assert!(
            good * 2 >= ratios.len(),
            "only {good}/{} within 2x",
            ratios.len()
        );
    }

    #[test]
    fn far_query_still_returns_a_valid_id() {
        let ps = generators::uniform_cube(20, 8, 256, 7);
        let ix = build_index(&ps, 2);
        let q = vec![1e6; 8];
        let hit = ix.query(&q);
        assert!(hit < ps.len());
    }

    #[test]
    fn exact_nearest_baseline_is_correct() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]);
        assert_eq!(exact_nearest(&ps, &[0.0, 2.0]), 2);
        assert_eq!(exact_nearest(&ps, &[9.0, 0.0]), 1);
    }

    #[test]
    fn query_time_is_independent_of_n_probes() {
        // Structural check: levels probed equals the schedule length.
        let ps = generators::uniform_cube(100, 8, 1 << 10, 9);
        let params = HybridParams::for_dataset(&ps, 4).unwrap();
        let ix = AnnIndex::build(&ps, &params, 4).unwrap();
        assert_eq!(ix.num_levels(), params.num_levels());
    }
}
