//! k-median on the tree embedding — the application that motivated
//! probabilistic tree embeddings historically (Bartal; FRT's `O(log n)`
//! bound "notably yielded the first polylogarithmic approximation for
//! the k-median problem", paper §1).
//!
//! On our HSTs the distance from an internal node `v` to *every* leaf
//! below it is the same value `down(v)` (level-uniform weights plus
//! tail-exact truncation), so `dist_T(c, m) = 2·down(lca)` where `lca`
//! is the lowest ancestor of client `c` whose subtree contains the
//! median `m` nearest to `c`. k-median on the tree then has an exact
//! `O(n·k²)` dynamic program:
//!
//! `dp[v][j]` = cost of serving all clients in `subtree(v)` with `j`
//! medians inside it — where `j = 0` defers every client upward at cost
//! charged by the lowest median-bearing ancestor `a` (`2·down(a)` per
//! client).
//!
//! Solving on the embedding and *pricing the chosen medians in Euclidean
//! space* gives an `O(E[distortion])`-approximation to Euclidean
//! k-median, exactly the classic reduction.

use treeemb_core::seq::Embedding;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Result of the tree k-median DP.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedianResult {
    /// Chosen median points (size ≤ k; fewer only if n < k).
    pub medians: Vec<usize>,
    /// Optimal k-median cost under the tree metric.
    pub tree_cost: f64,
}

/// Exact k-median on the tree metric via subtree DP, returning the
/// chosen leaves (as point ids) and the optimal tree cost.
///
/// ```
/// use treeemb_apps::kmedian::tree_kmedian;
/// use treeemb_core::{params::HybridParams, seq::SeqEmbedder};
/// let ps = treeemb_geom::generators::uniform_cube(12, 4, 128, 1);
/// let emb = SeqEmbedder::new(HybridParams::for_dataset(&ps, 2).unwrap())
///     .embed(&ps, 3)
///     .unwrap();
/// let result = tree_kmedian(&emb, 2);
/// assert_eq!(result.medians.len(), 2);
/// ```
///
/// # Panics
/// Panics if `k == 0`.
#[allow(clippy::needless_range_loop, clippy::manual_memcpy)] // parallel-array DP
pub fn tree_kmedian(emb: &Embedding, k: usize) -> KMedianResult {
    assert!(k >= 1, "k must be positive");
    let t = &emb.tree;
    let n_nodes = t.num_nodes();
    let k = k.min(t.num_points());

    // down[v]: distance from v to any leaf below (uniform; asserted).
    let mut down = vec![f64::NAN; n_nodes];
    for id in t.post_order() {
        let node = t.node(id);
        if node.children.is_empty() {
            down[id] = 0.0;
            continue;
        }
        let mut val = f64::NAN;
        for &c in &node.children {
            let through = t.node(c).weight_to_parent + down[c];
            if val.is_nan() {
                val = through;
            } else {
                debug_assert!(
                    (val - through).abs() <= 1e-6 * (1.0 + val),
                    "non-uniform leaf depth under node {id}: {val} vs {through}"
                );
            }
        }
        down[id] = val;
    }
    let counts = t.subtree_counts();

    // dp[v][j], with backtracking of the per-child allocation.
    const INF: f64 = f64::INFINITY;
    let mut dp: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
    // choice[v][j] = allocation of j among children (parallel to
    // t.children(v)); empty for leaves.
    let mut choice: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_nodes];
    for id in t.post_order() {
        let node = t.node(id);
        let cap = k.min(counts[id]);
        if node.children.is_empty() {
            // A leaf: either no median (defer) or a median here.
            dp[id] = vec![0.0; cap + 1];
            choice[id] = vec![Vec::new(); cap + 1];
            continue;
        }
        // Knapsack over children. acc[j] = best cost using the first
        // processed children with j medians total, where children with 0
        // medians charge count·2·down(id) (their clients exit at id) —
        // valid only when the final total j >= 1; the j = 0 column is
        // separately 0 (defer everything).
        let mut acc: Vec<f64> = vec![0.0];
        let mut acc_choice: Vec<Vec<usize>> = vec![Vec::new()];
        for &c in &node.children {
            let child_cap = k.min(counts[c]);
            let exit_cost = counts[c] as f64 * 2.0 * down[id];
            let new_len = (acc.len() - 1 + child_cap).min(cap) + 1;
            let mut next: Vec<f64> = vec![INF; new_len];
            let mut next_choice: Vec<Vec<usize>> = vec![Vec::new(); new_len];
            for (j_prev, &cost_prev) in acc.iter().enumerate() {
                if cost_prev == INF {
                    continue;
                }
                for j_c in 0..=child_cap {
                    let j_total = j_prev + j_c;
                    if j_total >= new_len {
                        break;
                    }
                    let c_cost = if j_c == 0 { exit_cost } else { dp[c][j_c] };
                    let cand = cost_prev + c_cost;
                    if cand < next[j_total] {
                        next[j_total] = cand;
                        let mut ch = acc_choice[j_prev].clone();
                        ch.push(j_c);
                        next_choice[j_total] = ch;
                    }
                }
            }
            acc = next;
            acc_choice = next_choice;
        }
        let mut table = vec![0.0; cap + 1];
        let mut tchoice = vec![Vec::new(); cap + 1];
        for j in 1..=cap {
            table[j] = acc[j];
            tchoice[j] = acc_choice[j].clone();
        }
        // j = 0: defer everything upward at zero local cost.
        table[0] = 0.0;
        dp[id] = table;
        choice[id] = tchoice;
    }

    // Backtrack.
    let mut medians = Vec::with_capacity(k);
    let mut stack = vec![(t.root(), k.min(counts[t.root()]))];
    while let Some((id, j)) = stack.pop() {
        if j == 0 {
            continue;
        }
        let node = t.node(id);
        if node.children.is_empty() {
            if let Some(p) = node.point {
                medians.push(p);
            }
            continue;
        }
        let alloc = &choice[id][j];
        debug_assert_eq!(alloc.len(), node.children.len());
        for (&c, &j_c) in node.children.iter().zip(alloc) {
            stack.push((c, j_c));
        }
    }
    medians.sort_unstable();
    let tree_cost = dp[t.root()][k.min(counts[t.root()])];
    KMedianResult { medians, tree_cost }
}

/// Euclidean k-median cost of a given median set: every point pays its
/// distance to the nearest median.
pub fn kmedian_cost_euclid(ps: &PointSet, medians: &[usize]) -> f64 {
    assert!(!medians.is_empty());
    let mut total = 0.0;
    for i in 0..ps.len() {
        let best = medians
            .iter()
            .map(|&m| dist(ps.point(i), ps.point(m)))
            .fold(f64::INFINITY, f64::min);
        total += best;
    }
    total
}

/// Tree-metric k-median cost of a given median set (for validating the
/// DP against brute force).
pub fn kmedian_cost_tree(emb: &Embedding, medians: &[usize]) -> f64 {
    assert!(!medians.is_empty());
    let n = emb.tree.num_points();
    let mut total = 0.0;
    for i in 0..n {
        let best = medians
            .iter()
            .map(|&m| emb.tree_distance(i, m))
            .fold(f64::INFINITY, f64::min);
        total += best;
    }
    total
}

/// Exact Euclidean k-median over point-located medians by exhaustive
/// subset enumeration — `O(C(n,k)·n·k)`, for small baselines only.
pub fn exact_kmedian_euclid(ps: &PointSet, k: usize) -> (Vec<usize>, f64) {
    let n = ps.len();
    assert!(k >= 1 && k <= n);
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut subset: Vec<usize> = (0..k).collect();
    loop {
        let cost = kmedian_cost_euclid(ps, &subset);
        if cost < best_cost {
            best_cost = cost;
            best = subset.clone();
        }
        // Next k-combination.
        let mut i = k;
        loop {
            if i == 0 {
                return (best, best_cost);
            }
            i -= 1;
            if subset[i] != i + n - k {
                subset[i] += 1;
                for j in (i + 1)..k {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_core::params::HybridParams;
    use treeemb_core::seq::SeqEmbedder;
    use treeemb_geom::generators;

    fn embed(ps: &PointSet, seed: u64) -> Embedding {
        let params = HybridParams::for_dataset(ps, 2.min(ps.dim())).unwrap();
        SeqEmbedder::new(params).embed(ps, seed).unwrap()
    }

    #[test]
    fn dp_matches_brute_force_on_tree_metric() {
        // Enumerate all median subsets and check the DP's tree cost is
        // the true optimum of the tree metric.
        let ps = generators::uniform_cube(9, 4, 64, 5);
        let emb = embed(&ps, 3);
        for k in 1..=3usize {
            let result = tree_kmedian(&emb, k);
            assert_eq!(result.medians.len(), k);
            // Brute force over subsets.
            let mut best = f64::INFINITY;
            let mut subset: Vec<usize> = (0..k).collect();
            'outer: loop {
                best = best.min(kmedian_cost_tree(&emb, &subset));
                let mut i = k;
                loop {
                    if i == 0 {
                        break 'outer;
                    }
                    i -= 1;
                    if subset[i] != i + 9 - k {
                        subset[i] += 1;
                        for j in (i + 1)..k {
                            subset[j] = subset[j - 1] + 1;
                        }
                        break;
                    }
                }
            }
            assert!(
                (result.tree_cost - best).abs() < 1e-9 * (1.0 + best),
                "k={k}: dp {} vs brute {best}",
                result.tree_cost
            );
            // The returned median set must achieve the claimed cost.
            let achieved = kmedian_cost_tree(&emb, &result.medians);
            assert!(
                (achieved - result.tree_cost).abs() < 1e-9 * (1.0 + achieved),
                "k={k}: medians achieve {achieved}, dp claims {}",
                result.tree_cost
            );
        }
    }

    #[test]
    fn k_equals_n_costs_zero() {
        let ps = generators::uniform_cube(6, 4, 64, 7);
        let emb = embed(&ps, 1);
        let result = tree_kmedian(&emb, 6);
        assert_eq!(result.tree_cost, 0.0);
        assert_eq!(result.medians, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn k_one_picks_a_single_median() {
        let ps = generators::gaussian_clusters(12, 4, 1, 2.0, 256, 9);
        let emb = embed(&ps, 2);
        let result = tree_kmedian(&emb, 1);
        assert_eq!(result.medians.len(), 1);
        assert!(result.tree_cost > 0.0);
    }

    #[test]
    fn euclid_cost_of_tree_medians_is_near_optimal() {
        // The classic reduction: tree medians priced in Euclidean space,
        // averaged over trees, stay within the distortion of OPT.
        let ps = generators::gaussian_clusters(12, 4, 3, 1.5, 512, 11);
        let (_, opt) = exact_kmedian_euclid(&ps, 3);
        let trials = 6;
        let mut sum = 0.0;
        for s in 0..trials {
            let emb = embed(&ps, 100 + s);
            let result = tree_kmedian(&emb, 3);
            sum += kmedian_cost_euclid(&ps, &result.medians);
        }
        let mean = sum / trials as f64;
        assert!(mean >= opt * (1.0 - 1e-9));
        assert!(mean <= 25.0 * opt + 1e-9, "k-median ratio {}", mean / opt);
    }

    #[test]
    fn more_medians_never_cost_more() {
        let ps = generators::uniform_cube(15, 4, 256, 13);
        let emb = embed(&ps, 4);
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let c = tree_kmedian(&emb, k).tree_cost;
            assert!(c <= prev + 1e-9, "cost increased at k={k}");
            prev = c;
        }
    }

    #[test]
    fn exact_enumeration_small_sanity() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let (medians, cost) = exact_kmedian_euclid(&ps, 2);
        // Optimal: one median near {0,1}, one at 10.
        assert!(medians.contains(&2));
        assert_eq!(cost, 1.0);
    }
}
