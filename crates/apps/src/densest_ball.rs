//! Bicriteria densest ball via the tree embedding (Corollary 1(1)).
//!
//! Given a target diameter `D`, the tree algorithm returns the heaviest
//! tree node whose subtree *tree*-diameter is at most `β·D`. By
//! domination the Euclidean diameter of the returned cluster is also at
//! most `β·D`; and because close points stay together in expectation,
//! the count is near-optimal — the paper's
//! `(1 − O(1/log log n), O(log^1.5 n))` bicriteria guarantee.

use treeemb_core::seq::Embedding;
use treeemb_hst::NodeId;

/// Result of the tree densest-ball query.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCluster {
    /// The chosen tree node.
    pub node: NodeId,
    /// Number of points in its subtree.
    pub count: usize,
    /// Upper bound on the cluster's tree (hence Euclidean) diameter.
    pub tree_diameter_bound: f64,
    /// The cluster's point ids.
    pub points: Vec<usize>,
}

/// Finds the heaviest tree node whose subtree tree-diameter is at most
/// `max_tree_diameter` (callers typically pass `β·D` with `β` the
/// distortion they are willing to pay).
pub fn densest_cluster(emb: &Embedding, max_tree_diameter: f64) -> DenseCluster {
    let t = &emb.tree;
    // Height in weight: the max weight-path from the node down to a leaf.
    let mut down = vec![0.0f64; t.num_nodes()];
    for id in t.post_order() {
        let node = t.node(id);
        let mut h: f64 = 0.0;
        for &c in &node.children {
            h = h.max(down[c] + t.node(c).weight_to_parent);
        }
        down[id] = h;
    }
    let counts = t.subtree_counts();
    let mut best: Option<(NodeId, usize, f64)> = None;
    for id in t.node_ids() {
        let diam = 2.0 * down[id];
        if diam <= max_tree_diameter {
            let better = match best {
                None => true,
                Some((_, c, bd)) => counts[id] > c || (counts[id] == c && diam < bd),
            };
            if better {
                best = Some((id, counts[id], diam));
            }
        }
    }
    let (node, count, diam) = best.expect("leaves always satisfy any non-negative diameter bound");
    DenseCluster {
        node,
        count,
        tree_diameter_bound: diam,
        points: t.subtree_points(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_core::params::HybridParams;
    use treeemb_core::seq::SeqEmbedder;
    use treeemb_geom::{generators, metrics, PointSet};

    fn embed(ps: &PointSet, r: usize, seed: u64) -> Embedding {
        let params = HybridParams::for_dataset(ps, r).unwrap();
        SeqEmbedder::new(params).embed(ps, seed).unwrap()
    }

    #[test]
    fn finds_a_cluster_with_bounded_euclidean_diameter() {
        let inst = generators::planted_ball(80, 8, 30, 12.0, 1 << 11, 3);
        let emb = embed(&inst.points, 4, 1);
        let result = densest_cluster(&emb, 12.0 * 12.0); // beta = 12
        let cluster = inst.points.select(&result.points);
        let diam = metrics::diameter(&cluster);
        assert!(
            diam <= result.tree_diameter_bound + 1e-9,
            "domination violated"
        );
        assert!(result.count >= 2, "found only a singleton");
    }

    #[test]
    fn recovers_most_of_a_well_separated_plant() {
        // A tight plant in a huge empty space: some level isolates it.
        // The guarantee is per random tree with constant probability, so
        // take the best recovery over a handful of seeds.
        let inst = generators::planted_ball(60, 8, 25, 8.0, 1 << 14, 5);
        let best = (1..=5)
            .map(|seed| {
                let emb = embed(&inst.points, 4, seed);
                // Generous beta (the paper allows O(log^1.5 n)).
                densest_cluster(&emb, 8.0 * 40.0).count
            })
            .max()
            .unwrap();
        assert!(
            best >= 20,
            "expected most of the 25 planted points, got {best}"
        );
    }

    #[test]
    fn zero_diameter_budget_returns_leafish_cluster() {
        let ps = generators::uniform_cube(20, 8, 256, 7);
        let emb = embed(&ps, 4, 3);
        let result = densest_cluster(&emb, 0.0);
        assert_eq!(result.count, 1);
    }

    #[test]
    fn larger_budget_never_shrinks_count() {
        let ps = generators::gaussian_clusters(50, 8, 3, 3.0, 1 << 10, 9);
        let emb = embed(&ps, 4, 4);
        let small = densest_cluster(&emb, 10.0).count;
        let large = densest_cluster(&emb, 1000.0).count;
        assert!(large >= small);
    }

    #[test]
    fn infinite_budget_returns_everything() {
        let ps = generators::uniform_cube(15, 8, 128, 11);
        let emb = embed(&ps, 4, 5);
        let result = densest_cluster(&emb, f64::INFINITY);
        assert_eq!(result.count, 15);
    }
}
