//! Applications of the tree embedding (paper Corollary 1) and the exact
//! baselines used to measure their approximation quality.
//!
//! * [`densest_ball`] — the `(1−o(1), O(log^1.5 n))`-bicriteria densest
//!   ball: pick the heaviest tree node whose subtree tree-diameter fits
//!   the (inflated) target;
//! * [`mst`] — `O(log^1.5 n)`-approximate Euclidean minimum spanning
//!   tree: stitch each internal node's child clusters through
//!   representative leaves and price the edges in Euclidean space;
//! * [`emd`] — `O(log^1.5 n)`-approximate Earth-Mover distance between
//!   equal-size multisets: on a tree, the optimal flow is closed-form —
//!   `Σ_e w(e)·|surplus under e|`;
//! * [`ann`] — `O(logΔ)`-time approximate nearest neighbors via
//!   out-of-sample partition-chain assignment (the application the
//!   FJLT was invented for, paper reference \[2\]);
//! * [`kmedian`] — exact k-median DP on the tree metric (the classic
//!   FRT application, §1);
//! * [`mpc`] — O(1)-round distributed versions of the Corollary-1
//!   applications over per-point paths;
//! * [`exact`] — exact baselines: Prim's MST (`O(n²d)`), Hungarian
//!   min-cost matching EMD (`O(n³)`), and brute-force ball counting.

pub mod ann;
pub mod densest_ball;
pub mod emd;
pub mod exact;
pub mod kmedian;
pub mod mpc;
pub mod mst;
