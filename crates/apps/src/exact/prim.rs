//! Exact Euclidean minimum spanning tree (Prim's algorithm, `O(n²d)`).

use treeemb_geom::metrics::sq_dist;
use treeemb_geom::PointSet;

/// A spanning tree over the points of a set.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    /// Tree edges as point-id pairs.
    pub edges: Vec<(usize, usize)>,
    /// Total Euclidean length.
    pub cost: f64,
}

/// Computes the exact Euclidean MST with dense Prim.
///
/// # Panics
/// Panics on an empty point set.
pub fn mst(ps: &PointSet) -> SpanningTree {
    let n = ps.len();
    assert!(n >= 1, "MST of an empty set");
    if n == 1 {
        return SpanningTree {
            edges: Vec::new(),
            cost: 0.0,
        };
    }
    let mut in_tree = vec![false; n];
    let mut best_sq = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    let mut cost = 0.0;
    in_tree[0] = true;
    for (j, b) in best_sq.iter_mut().enumerate().skip(1) {
        *b = sq_dist(ps.point(0), ps.point(j));
    }
    #[allow(clippy::needless_range_loop)] // j indexes three parallel arrays
    for _ in 1..n {
        // Cheapest frontier vertex.
        let mut pick = usize::MAX;
        let mut pick_sq = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_sq[j] < pick_sq {
                pick = j;
                pick_sq = best_sq[j];
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        edges.push((best_from[pick], pick));
        cost += pick_sq.sqrt();
        for j in 0..n {
            if !in_tree[j] {
                let d = sq_dist(ps.point(pick), ps.point(j));
                if d < best_sq[j] {
                    best_sq[j] = d;
                    best_from[j] = pick;
                }
            }
        }
    }
    SpanningTree { edges, cost }
}

/// Total Euclidean length of an arbitrary edge list over `ps`.
pub fn edges_cost(ps: &PointSet, edges: &[(usize, usize)]) -> f64 {
    edges
        .iter()
        .map(|&(a, b)| treeemb_geom::metrics::dist(ps.point(a), ps.point(b)))
        .sum()
}

/// Checks that `edges` form a spanning tree over `n` vertices
/// (n−1 edges, connected).
#[allow(clippy::ptr_arg)]
pub fn is_spanning_tree(n: usize, edges: &[(usize, usize)]) -> bool {
    if n == 0 {
        return false;
    }
    if edges.len() != n - 1 {
        return false;
    }
    // Union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut components = n;
    for &(a, b) in edges {
        if a >= n || b >= n {
            return false;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            return false; // cycle
        }
        parent[ra] = rb;
        components -= 1;
    }
    components == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_mst_is_the_path() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![4.0]]);
        let t = mst(&ps);
        assert_eq!(t.cost, 4.0);
        assert!(is_spanning_tree(4, &t.edges));
    }

    #[test]
    fn square_mst_cost() {
        let ps = PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        let t = mst(&ps);
        assert!((t.cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_has_empty_mst() {
        let ps = PointSet::from_rows(&[vec![5.0, 5.0]]);
        let t = mst(&ps);
        assert!(t.edges.is_empty());
        assert_eq!(t.cost, 0.0);
    }

    #[test]
    fn mst_cost_invariant_under_permutation() {
        let ps = treeemb_geom::generators::uniform_cube(30, 4, 256, 9);
        let ids_rev: Vec<usize> = (0..30).rev().collect();
        let rev = ps.select(&ids_rev);
        let a = mst(&ps).cost;
        let b = mst(&rev).cost;
        assert!((a - b).abs() < 1e-9 * a);
    }

    #[test]
    fn spanning_tree_checker_rejects_cycles_and_forests() {
        assert!(is_spanning_tree(3, &[(0, 1), (1, 2)]));
        assert!(!is_spanning_tree(3, &[(0, 1), (0, 1)]));
        assert!(!is_spanning_tree(4, &[(0, 1), (2, 3)]));
        assert!(!is_spanning_tree(3, &[(0, 1)]));
    }

    #[test]
    fn duplicates_cost_zero_edges() {
        let ps = PointSet::from_rows(&[vec![1.0], vec![1.0], vec![2.0]]);
        let t = mst(&ps);
        assert!((t.cost - 1.0).abs() < 1e-12);
    }
}
