//! Brute-force densest-ball baselines.
//!
//! Exact densest ball (best center anywhere in `R^d`) is not efficiently
//! computable; the standard sandwich uses point-centered balls:
//! a ball of diameter `D` containing `S` lies inside the radius-`D` ball
//! around any point of `S`, so
//! `max_p |B(p, D/2)| ≤ OPT(D) ≤ max_p |B(p, D)|`.

use treeemb_geom::metrics::sq_dist;
use treeemb_geom::PointSet;

/// Result of a point-centered ball scan.
#[derive(Debug, Clone, PartialEq)]
pub struct BallCount {
    /// Center point id.
    pub center: usize,
    /// Number of points within the radius (center included).
    pub count: usize,
}

/// `max_p |B(p, radius)|` over all point-centered balls (`O(n²d)`).
pub fn best_point_centered(ps: &PointSet, radius: f64) -> BallCount {
    assert!(!ps.is_empty(), "empty point set");
    let n = ps.len();
    let r2 = radius * radius;
    let mut best = BallCount {
        center: 0,
        count: 0,
    };
    for c in 0..n {
        let mut count = 0;
        for j in 0..n {
            if sq_dist(ps.point(c), ps.point(j)) <= r2 + 1e-12 {
                count += 1;
            }
        }
        if count > best.count {
            best = BallCount { center: c, count };
        }
    }
    best
}

/// The sandwich `(lower, upper)` on `OPT(D)` for target diameter `D`:
/// `lower = max_p |B(p, D/2)|`, `upper = max_p |B(p, D)|`.
pub fn opt_bounds(ps: &PointSet, diameter: f64) -> (usize, usize) {
    let lower = best_point_centered(ps, diameter / 2.0).count;
    let upper = best_point_centered(ps, diameter).count;
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_planted_cluster() {
        let inst = treeemb_geom::generators::planted_ball(100, 4, 40, 10.0, 1 << 12, 7);
        let (lower, upper) = opt_bounds(&inst.points, 10.0);
        assert!(upper >= 40, "upper bound {upper} misses the plant");
        assert!(lower >= 20, "lower bound {lower} too small");
    }

    #[test]
    fn tiny_radius_counts_only_center() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![10.0], vec![20.0]]);
        let best = best_point_centered(&ps, 0.5);
        assert_eq!(best.count, 1);
    }

    #[test]
    fn huge_radius_counts_everything() {
        let ps = treeemb_geom::generators::uniform_cube(25, 3, 64, 1);
        let best = best_point_centered(&ps, 1e6);
        assert_eq!(best.count, 25);
    }

    #[test]
    fn bounds_are_ordered() {
        let ps = treeemb_geom::generators::uniform_cube(40, 3, 64, 2);
        let (lo, hi) = opt_bounds(&ps, 20.0);
        assert!(lo <= hi);
        assert!(lo >= 1);
    }
}
