//! Exact min-cost perfect matching (Hungarian algorithm, `O(n³)`) —
//! the exact Earth-Mover distance between equal-size unit-mass
//! multisets.

/// Solves the assignment problem on a square cost matrix: returns
/// `(assignment, total_cost)` where `assignment[row] = column`.
///
/// Classic potentials-based Kuhn–Munkres in `O(n³)`.
///
/// # Panics
/// Panics if the matrix is not square/non-empty or contains
/// non-finite costs.
pub fn min_cost_matching(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "empty cost matrix");
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
        assert!(row.iter().all(|c| c.is_finite()), "costs must be finite");
    }
    const INF: f64 = f64::INFINITY;
    // 1-indexed arrays per the classic formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix_prefers_diagonal_of_zeros() {
        let cost = vec![
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ];
        let (asg, total) = min_cost_matching(&cost);
        assert_eq!(asg, vec![0, 1, 2]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn forced_off_diagonal() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let (asg, total) = min_cost_matching(&cost);
        assert_eq!(asg, vec![1, 0]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn single_element() {
        let (asg, total) = min_cost_matching(&[vec![7.5]]);
        assert_eq!(asg, vec![0]);
        assert_eq!(total, 7.5);
    }

    #[test]
    fn matches_brute_force_on_small_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..30 {
            let n = rng.gen_range(2..6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let (_, hung) = min_cost_matching(&cost);
            // Brute force over permutations.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut best = f64::INFINITY;
            permute(&mut perm, 0, &mut |p| {
                let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
                if c < best {
                    best = c;
                }
            });
            assert!(
                (hung - best).abs() < 1e-9,
                "trial {trial}: {hung} vs {best}"
            );
        }
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    #[test]
    fn assignment_is_a_permutation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let (asg, _) = min_cost_matching(&cost);
        let mut seen = vec![false; n];
        for &j in &asg {
            assert!(!seen[j], "column used twice");
            seen[j] = true;
        }
    }
}
