//! Exact (non-embedding) baselines for the Corollary-1 applications.

pub mod ball;
pub mod matching;
pub mod prim;
