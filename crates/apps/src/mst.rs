//! Tree-embedding-guided approximate Euclidean MST (Corollary 1(2)).
//!
//! An MST under the tree metric is immediate: within every internal
//! node, stitch its children's clusters together through representative
//! leaves (any spanning structure over the children is optimal up to a
//! factor 2 in the tree metric, since all cross-child distances through
//! the node are equal up to leaf depths). We price the chosen edges in
//! *Euclidean* space, so the result is a genuine spanning tree of the
//! input whose expected cost is within the embedding's distortion of
//! the true MST.

use crate::exact::prim::SpanningTree;
use treeemb_core::seq::Embedding;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Builds the tree-guided spanning tree and prices it in Euclidean
/// space.
///
/// # Panics
/// Panics if the embedding and point set disagree on cardinality.
pub fn tree_mst(emb: &Embedding, ps: &PointSet) -> SpanningTree {
    let t = &emb.tree;
    assert_eq!(t.num_points(), ps.len(), "embedding/point-set mismatch");
    let reps = t.subtree_representatives();
    let mut edges = Vec::with_capacity(ps.len().saturating_sub(1));
    let mut cost = 0.0;
    for id in t.node_ids() {
        let children = t.children(id);
        if children.len() < 2 {
            continue;
        }
        // Chain consecutive child representatives.
        let child_reps: Vec<usize> = children.iter().filter_map(|&c| reps[c]).collect();
        for pair in child_reps.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            edges.push((a, b));
            cost += dist(ps.point(a), ps.point(b));
        }
    }
    SpanningTree { edges, cost }
}

/// Cost of the same spanning tree measured in the tree metric (upper
/// bounds the Euclidean cost by domination).
pub fn tree_mst_cost_in_tree_metric(emb: &Embedding) -> f64 {
    let t = &emb.tree;
    let reps = t.subtree_representatives();
    let mut cost = 0.0;
    for id in t.node_ids() {
        let children = t.children(id);
        if children.len() < 2 {
            continue;
        }
        let child_reps: Vec<usize> = children.iter().filter_map(|&c| reps[c]).collect();
        for pair in child_reps.windows(2) {
            cost += t.distance(pair[0], pair[1]);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::prim;
    use treeemb_core::params::HybridParams;
    use treeemb_core::seq::SeqEmbedder;
    use treeemb_geom::generators;

    fn embed(ps: &PointSet, seed: u64) -> Embedding {
        let params = HybridParams::for_dataset(ps, 4).unwrap();
        SeqEmbedder::new(params).embed(ps, seed).unwrap()
    }

    #[test]
    fn produces_a_spanning_tree() {
        let ps = generators::uniform_cube(50, 8, 512, 3);
        let emb = embed(&ps, 1);
        let st = tree_mst(&emb, &ps);
        assert!(prim::is_spanning_tree(50, &st.edges), "not a spanning tree");
    }

    #[test]
    fn cost_at_least_exact_mst() {
        let ps = generators::uniform_cube(40, 8, 512, 5);
        let emb = embed(&ps, 2);
        let approx = tree_mst(&emb, &ps);
        let exact = prim::mst(&ps);
        assert!(approx.cost >= exact.cost * (1.0 - 1e-9));
    }

    #[test]
    fn approximation_ratio_is_moderate() {
        let ps = generators::gaussian_clusters(60, 8, 4, 3.0, 1 << 10, 7);
        let emb = embed(&ps, 3);
        let approx = tree_mst(&emb, &ps);
        let exact = prim::mst(&ps);
        let ratio = approx.cost / exact.cost;
        // Theorem-2 distortion bound here is O(sqrt(d*r) logΔ) ~ 60; in
        // practice the ratio is small. Loose regression guard:
        assert!(ratio < 10.0, "MST ratio {ratio}");
    }

    #[test]
    fn euclidean_cost_below_tree_metric_cost() {
        let ps = generators::uniform_cube(30, 8, 256, 9);
        let emb = embed(&ps, 4);
        let st = tree_mst(&emb, &ps);
        let tree_cost = tree_mst_cost_in_tree_metric(&emb);
        assert!(st.cost <= tree_cost * (1.0 + 1e-9));
    }

    #[test]
    fn two_points_connect_directly() {
        let ps = PointSet::from_rows(&[vec![1.0, 1.0], vec![50.0, 80.0]]);
        let emb = embed(&ps, 5);
        let st = tree_mst(&emb, &ps);
        assert_eq!(st.edges.len(), 1);
        let direct = treeemb_geom::metrics::dist(ps.point(0), ps.point(1));
        assert!((st.cost - direct).abs() < 1e-9);
    }
}
