//! Earth-Mover distance via the tree embedding (Corollary 1(3)).
//!
//! For equal-size multisets `A`, `B` of leaves of a weighted tree, the
//! optimal transport cost under the tree metric has a closed form: every
//! edge `e` must carry the surplus of the subtree below it, so
//! `EMD_T(A,B) = Σ_e w(e)·|#A(subtree) − #B(subtree)|`. Since the tree
//! metric dominates the Euclidean metric in expectation up to the
//! distortion, `EMD ≤ E[EMD_T] ≤ O(log^1.5 n)·EMD`.

use treeemb_core::seq::Embedding;
use treeemb_geom::metrics::dist;
use treeemb_geom::PointSet;

/// Tree EMD between two equal-size sets of point ids (leaves of the same
/// embedding).
///
/// # Panics
/// Panics when `a` and `b` differ in size or reference unknown points.
pub fn tree_emd(emb: &Embedding, a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "EMD needs equal-size multisets");
    let t = &emb.tree;
    let n = t.num_points();
    let mut weight_of = vec![0i64; n];
    for &p in a {
        assert!(p < n, "unknown point id {p}");
        weight_of[p] += 1;
    }
    for &q in b {
        assert!(q < n, "unknown point id {q}");
        weight_of[q] -= 1;
    }
    let signed = t.subtree_signed_counts(|p| weight_of[p]);
    let mut total = 0.0;
    for id in t.node_ids() {
        if t.parent(id).is_some() {
            total += t.node(id).weight_to_parent * signed[id].unsigned_abs() as f64;
        }
    }
    total
}

/// Exact Euclidean EMD between two equal-size multisets given as point
/// ids into `ps`, via Hungarian matching (`O(n³)`).
pub fn exact_emd(ps: &PointSet, a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "EMD needs equal-size multisets");
    if a.is_empty() {
        return 0.0;
    }
    let cost: Vec<Vec<f64>> = a
        .iter()
        .map(|&i| b.iter().map(|&j| dist(ps.point(i), ps.point(j))).collect())
        .collect();
    crate::exact::matching::min_cost_matching(&cost).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use treeemb_core::params::HybridParams;
    use treeemb_core::seq::SeqEmbedder;
    use treeemb_geom::generators;

    fn embed(ps: &PointSet, seed: u64) -> Embedding {
        let params = HybridParams::for_dataset(ps, 4).unwrap();
        SeqEmbedder::new(params).embed(ps, seed).unwrap()
    }

    #[test]
    fn identical_multisets_cost_zero() {
        let ps = generators::uniform_cube(20, 8, 256, 1);
        let emb = embed(&ps, 1);
        let ids: Vec<usize> = (0..10).collect();
        assert_eq!(tree_emd(&emb, &ids, &ids), 0.0);
        assert_eq!(exact_emd(&ps, &ids, &ids), 0.0);
    }

    #[test]
    fn tree_emd_dominates_exact() {
        let ps = generators::uniform_cube(30, 8, 512, 3);
        let emb = embed(&ps, 2);
        let a: Vec<usize> = (0..15).collect();
        let b: Vec<usize> = (15..30).collect();
        let te = tree_emd(&emb, &a, &b);
        let ee = exact_emd(&ps, &a, &b);
        assert!(te >= ee * (1.0 - 1e-9), "tree {te} < exact {ee}");
    }

    #[test]
    fn approximation_ratio_within_theory_bound() {
        // The guarantee is in expectation over trees: average EMD_T over
        // seeds, compare against exact. Theorem 2's factor here is
        // O(sqrt(d*r)·logΔ) = sqrt(32)·9 ~ 51; allow that order.
        let ps = generators::gaussian_clusters(40, 8, 4, 2.0, 512, 5);
        let a: Vec<usize> = (0..20).collect();
        let b: Vec<usize> = (20..40).collect();
        let exact = exact_emd(&ps, &a, &b).max(1e-9);
        let trials = 16;
        let mean_tree: f64 = (0..trials)
            .map(|s| tree_emd(&embed(&ps, s), &a, &b))
            .sum::<f64>()
            / trials as f64;
        let ratio = mean_tree / exact;
        assert!(ratio >= 1.0 - 1e-9, "tree EMD must dominate");
        assert!(ratio < 60.0, "mean EMD ratio {ratio} beyond theory bound");
    }

    #[test]
    fn single_pair_equals_tree_distance() {
        let ps = generators::uniform_cube(10, 8, 256, 7);
        let emb = embed(&ps, 6);
        let te = tree_emd(&emb, &[0], &[1]);
        assert!((te - emb.tree_distance(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn multiset_multiplicity_counts() {
        // Moving two units from p0 costs twice one unit.
        let ps = generators::uniform_cube(10, 8, 256, 9);
        let emb = embed(&ps, 8);
        let one = tree_emd(&emb, &[0], &[1]);
        let two = tree_emd(&emb, &[0, 0], &[1, 1]);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal-size")]
    fn unequal_sizes_panic() {
        let ps = generators::uniform_cube(5, 8, 64, 2);
        let emb = embed(&ps, 1);
        let _ = tree_emd(&emb, &[0], &[1, 2]);
    }
}
