//! `exec::stats()` accounting on the sequential-fallback path.
//!
//! The executor takes a plain sequential loop when `threads <= 1`, the
//! input is tiny (`n <= 1`), or the call is nested inside another job.
//! The utilization counters must keep telling the truth there: every
//! call is attributed to exactly one of `jobs`/`sequential_jobs`, and
//! `tasks` counts every item regardless of which path ran — the
//! sequential path must never undercount relative to the parallel one.
//!
//! Counters are process-global atomics, so the tests serialize on a
//! lock and assert on deltas.

use std::sync::Mutex;
use treeemb_mpc::exec;

static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn threads_one_takes_the_sequential_path_and_counts_all_tasks() {
    let _guard = TEST_LOCK.lock().unwrap();
    let before = exec::stats();
    let out = exec::par_map_indexed((0..100u64).collect(), 1, |i, x| (i as u64) + x);
    assert_eq!(out, (0..100u64).map(|x| 2 * x).collect::<Vec<_>>());
    let after = exec::stats();
    assert_eq!(
        after.sequential_jobs - before.sequential_jobs,
        1,
        "threads=1 must run as one sequential job"
    );
    assert_eq!(after.jobs, before.jobs, "no pool job may be published");
    assert_eq!(
        after.tasks - before.tasks,
        100,
        "every item counts as a task on the sequential path"
    );
}

#[test]
fn tiny_inputs_take_the_sequential_path_even_with_many_threads() {
    let _guard = TEST_LOCK.lock().unwrap();
    let before = exec::stats();
    // n <= 1 falls back regardless of the thread budget.
    let out = exec::par_map_indexed(vec![7u64], 8, |_, x| x * 3);
    assert_eq!(out, vec![21]);
    let empty: Vec<u64> = exec::par_map_indexed(Vec::<u64>::new(), 8, |_, x| x);
    assert!(empty.is_empty());
    let after = exec::stats();
    assert_eq!(after.sequential_jobs - before.sequential_jobs, 2);
    assert_eq!(after.jobs, before.jobs);
    assert_eq!(after.tasks - before.tasks, 1, "one item, one task");
}

#[test]
fn for_each_mut_sequential_fallback_accounts_identically() {
    let _guard = TEST_LOCK.lock().unwrap();
    let before = exec::stats();
    let mut items: Vec<u64> = (0..64).collect();
    exec::par_for_each_mut(&mut items, 1, |i, x| *x += i as u64);
    assert!(items.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    let after = exec::stats();
    assert_eq!(after.sequential_jobs - before.sequential_jobs, 1);
    assert_eq!(after.jobs, before.jobs);
    assert_eq!(after.tasks - before.tasks, 64);
}

/// The headline invariant: for the same input, the sequential path
/// accounts exactly as many tasks and exactly as many total jobs
/// (pool + sequential) as the parallel path — switching paths can never
/// make work disappear from the stats.
#[test]
fn sequential_path_never_undercounts_vs_parallel() {
    let _guard = TEST_LOCK.lock().unwrap();
    let n = 512usize;
    let input: Vec<u64> = (0..n as u64).collect();

    let before_seq = exec::stats();
    let seq_out = exec::par_map_indexed(input.clone(), 1, |_, x| x.wrapping_mul(3));
    let after_seq = exec::stats();

    let before_par = exec::stats();
    let par_out = exec::par_map_indexed(input, 4, |_, x| x.wrapping_mul(3));
    let after_par = exec::stats();

    assert_eq!(seq_out, par_out, "both paths compute the same result");
    let seq_tasks = after_seq.tasks - before_seq.tasks;
    let par_tasks = after_par.tasks - before_par.tasks;
    assert_eq!(seq_tasks, n as u64);
    assert!(
        seq_tasks >= par_tasks,
        "sequential path undercounted tasks: {seq_tasks} < {par_tasks}"
    );
    let seq_calls = (after_seq.jobs - before_seq.jobs)
        + (after_seq.sequential_jobs - before_seq.sequential_jobs);
    let par_calls = (after_par.jobs - before_par.jobs)
        + (after_par.sequential_jobs - before_par.sequential_jobs);
    assert_eq!(seq_calls, 1, "one call, one job record (sequential)");
    assert_eq!(par_calls, 1, "one call, one job record (parallel)");
    // And the parallel run actually went to the pool, so the comparison
    // above compared the two distinct paths.
    assert_eq!(after_par.jobs - before_par.jobs, 1);
}

/// Nested calls (inside an executor job) also fall back sequentially
/// and must still account their tasks.
#[test]
fn nested_calls_account_their_tasks() {
    let _guard = TEST_LOCK.lock().unwrap();
    let before = exec::stats();
    let out = exec::par_map_indexed((0..8u64).collect(), 4, |_, x| {
        exec::par_map_indexed((0..16u64).collect(), 4, move |_, y| y + x)
            .into_iter()
            .sum::<u64>()
    });
    assert_eq!(out.len(), 8);
    let after = exec::stats();
    // 8 outer items + 8 nested calls of 16 items each.
    assert_eq!(after.tasks - before.tasks, 8 + 8 * 16);
    assert_eq!(
        after.sequential_jobs - before.sequential_jobs,
        8,
        "each nested call is one sequential job"
    );
}

/// `stats()` itself is a consistent snapshot: per-worker vectors match
/// the spawned count and the busy/utilization helpers stay in range on
/// the sequential path (where no worker need ever exist).
#[test]
fn stats_snapshot_is_internally_consistent() {
    let _guard = TEST_LOCK.lock().unwrap();
    let _ = exec::par_map_indexed((0..32u64).collect(), 1, |_, x| x);
    let s = exec::stats();
    assert_eq!(s.worker_busy_ns.len(), s.workers_spawned);
    assert_eq!(s.worker_idle_ns.len(), s.workers_spawned);
    assert!(s.busy_ns() >= s.caller_busy_ns);
    let u = s.utilization();
    assert!((0.0..=1.0).contains(&u), "utilization out of range: {u}");
    assert!(s.max_concurrent_workers as usize <= exec::MAX_WORKERS);
}
