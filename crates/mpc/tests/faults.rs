//! Integration tests for deterministic fault injection: the conformance
//! contract (retryable faults never change delivered data), fault-log
//! determinism across repeated runs and thread counts, retry
//! exhaustion, capacity squeezes, and fault events in the trace.
//!
//! Runs as its own process so arming the global trace collector cannot
//! leak into the library's unit tests.

use std::sync::{Mutex, MutexGuard};
use treeemb_mpc::error::CapacityPhase;
use treeemb_mpc::fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, FaultSpec};
use treeemb_mpc::primitives::{broadcast, sort};
use treeemb_mpc::{Dist, MpcConfig, MpcError, Runtime};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn rt_with(threads: usize, plan: Option<FaultPlan>) -> Runtime {
    let mut builder = Runtime::builder()
        .config(MpcConfig::explicit(1 << 12, 256, 8))
        .threads(threads);
    if let Some(p) = plan {
        builder = builder.fault_plan(p);
    }
    builder.build()
}

/// Runs sample-sort over a fixed input and returns (sorted output,
/// fault log, per-round attempts).
fn sort_run(threads: usize, plan: Option<FaultPlan>) -> (Vec<u64>, Vec<FaultEvent>, Vec<u32>) {
    let mut rt = rt_with(threads, plan);
    let input: Vec<u64> = (0..600u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % 1000)
        .collect();
    let dist = rt.distribute(input).unwrap();
    let sorted = sort::sort_by_key(&mut rt, dist, |x| *x).unwrap();
    let out = rt.gather(sorted);
    let attempts = rt
        .metrics()
        .round_stats()
        .iter()
        .map(|r| r.attempts)
        .collect();
    let log = rt.take_fault_log();
    (out, log, attempts)
}

/// Light per-message rates: rounds here carry hundreds of messages, so
/// the per-attempt fault probability (≈ 1 − exp(−msgs · rate)) must
/// leave a clean attempt reachable within the retry budget.
fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rates(FaultRates {
            drop: 0.001,
            duplicate: 0.0005,
            unavailable: 0.005,
            straggle: 0.02,
            straggle_ns: 20_000,
            crash: 0.0,
        })
        .with_max_retries(12)
}

#[test]
fn retryable_faults_leave_sorted_output_bit_identical() {
    let _g = test_lock();
    let (clean, clean_log, _) = sort_run(4, None);
    assert!(clean_log.is_empty());
    // Background rates plus one scheduled drop so at least one exchange
    // retry is guaranteed regardless of where the seeded faults land.
    let plan = noisy_plan(17).with_fault(FaultSpec::Drop {
        round: 1,
        attempt: 0,
        src: 0,
        msg_index: 0,
    });
    let (faulted, log, attempts) = sort_run(4, Some(plan));
    assert_eq!(faulted, clean, "retryable faults must not change output");
    assert!(
        !log.is_empty(),
        "the noisy plan should have injected faults"
    );
    assert!(
        attempts.iter().any(|&a| a > 1),
        "some round should have retried (attempts: {attempts:?})"
    );
}

#[test]
fn fault_log_and_outcome_identical_across_runs_and_thread_counts() {
    let _g = test_lock();
    let (out1, log1, att1) = sort_run(4, Some(noisy_plan(99)));
    let (out2, log2, att2) = sort_run(4, Some(noisy_plan(99)));
    assert_eq!(out1, out2);
    assert_eq!(log1, log2, "same plan + seed must replay identically");
    assert_eq!(att1, att2);
    for threads in [1, 2, 7] {
        let (out_t, log_t, att_t) = sort_run(threads, Some(noisy_plan(99)));
        assert_eq!(out_t, out1, "threads={threads} changed the output");
        assert_eq!(log_t, log1, "threads={threads} changed the fault log");
        assert_eq!(att_t, att1, "threads={threads} changed retry counts");
    }
}

#[test]
fn different_seeds_give_different_fault_sequences() {
    let _g = test_lock();
    let (_, log_a, _) = sort_run(2, Some(noisy_plan(1)));
    let (_, log_b, _) = sort_run(2, Some(noisy_plan(2)));
    assert_ne!(log_a, log_b);
}

#[test]
fn persistent_unavailability_exhausts_retries_with_typed_error() {
    let _g = test_lock();
    let mut plan = FaultPlan::new(0).with_max_retries(2);
    // Machine 3 is down for every attempt of round 0.
    for attempt in 0..3 {
        plan = plan.with_fault(FaultSpec::Unavailable {
            round: 0,
            attempt,
            machine: 3,
        });
    }
    let mut rt = rt_with(2, Some(plan));
    let dist = rt.distribute((0..64u64).collect()).unwrap();
    let err = rt
        .round("route", dist, |_, shard, em| {
            for v in shard {
                em.send((v % 8) as usize, v);
            }
            Vec::new()
        })
        .unwrap_err();
    match &err {
        MpcError::RetriesExhausted {
            round,
            label,
            attempts,
        } => {
            assert_eq!(*round, 0);
            assert_eq!(label.as_str(), "route");
            assert_eq!(*attempts, 3);
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert!(err.is_retryable());
    // The log shows three unavailability hits and two backoffs.
    let unavailable = rt
        .fault_log()
        .iter()
        .filter(|e| e.kind == FaultKind::Unavailable)
        .count();
    let backoffs: Vec<u64> = rt
        .fault_log()
        .iter()
        .filter(|e| e.kind == FaultKind::Backoff)
        .map(|e| e.value)
        .collect();
    assert_eq!(unavailable, 3);
    assert_eq!(backoffs.len(), 2);
    assert!(backoffs[1] > backoffs[0], "backoff must grow: {backoffs:?}");
}

#[test]
fn scheduled_drop_forces_exactly_one_retry() {
    let _g = test_lock();
    let plan = FaultPlan::new(0).with_fault(FaultSpec::Drop {
        round: 0,
        attempt: 0,
        src: 0,
        msg_index: 0,
    });
    let mut rt = rt_with(2, Some(plan));
    let dist = rt.distribute((0..32u64).collect()).unwrap();
    let out = rt
        .round("route", dist, |_, shard, em| {
            for v in shard {
                em.send((v % 8) as usize, v);
            }
            Vec::new()
        })
        .unwrap();
    assert_eq!(out.total_len(), 32, "retried exchange delivers everything");
    assert_eq!(rt.metrics().round_stats()[0].attempts, 2);
    assert_eq!(rt.metrics().retried_rounds(), 1);
    assert_eq!(rt.metrics().faults_injected(), rt.fault_log().len());
    let kinds: Vec<FaultKind> = rt.fault_log().iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![FaultKind::Drop, FaultKind::Backoff]);
}

#[test]
fn capacity_squeeze_shrinks_effective_capacity_and_fails_typed() {
    let _g = test_lock();
    let plan = FaultPlan::new(0).with_fault(FaultSpec::Squeeze {
        from_round: 1,
        capacity_words: 4,
        machine: None,
    });
    let mut rt = rt_with(2, Some(plan));
    assert_eq!(rt.capacity(), 256, "squeeze not yet in force");
    let dist = rt.distribute((0..64u64).collect()).unwrap();
    // Round 0 runs at full capacity.
    let dist = rt
        .round("spread", dist, |_, shard, em| {
            for v in shard {
                em.send((v % 8) as usize, v);
            }
            Vec::new()
        })
        .unwrap();
    assert_eq!(rt.capacity(), 4, "squeeze active from round 1");
    // Round 1: every machine now holds ~8 words > 4 ⇒ typed input error.
    let err = rt
        .round(
            "squeezed",
            dist,
            |_, shard, _em: &mut treeemb_mpc::Emitter<u64>| shard,
        )
        .unwrap_err();
    match err {
        MpcError::CapacityExceeded {
            round,
            phase,
            capacity,
            ..
        } => {
            assert_eq!(round, 1);
            assert_eq!(phase, CapacityPhase::Input);
            assert_eq!(capacity, 4);
        }
        other => panic!("expected CapacityExceeded, got {other}"),
    }
    assert!(!err.is_retryable(), "squeezes are not retryable");
    // The squeeze itself is on the fault log.
    assert!(rt
        .fault_log()
        .iter()
        .any(|e| e.kind == FaultKind::Squeeze && e.round == 1 && e.value == 4));
}

#[test]
fn broadcast_under_retryable_faults_is_conformant() {
    let _g = test_lock();
    let payload: Vec<u64> = (0..40).map(|i| i * 3 + 1).collect();
    let mut clean_rt = rt_with(2, None);
    let clean = broadcast::broadcast(&mut clean_rt, payload.clone()).unwrap();
    let mut rt = rt_with(2, Some(noisy_plan(5)));
    let faulted = broadcast::broadcast(&mut rt, payload).unwrap();
    assert_eq!(clean.parts(), faulted.parts());
    assert_eq!(
        clean_rt.metrics().rounds(),
        rt.metrics().rounds(),
        "retries must not add metered rounds"
    );
}

#[test]
fn replayed_event_log_reproduces_the_identical_fault_sequence() {
    let _g = test_lock();
    // Run a seeded plan, reconstruct an explicit plan from its event
    // log, and replay: the explicit plan must fire the same faults.
    let (out_seeded, log_seeded, _) = sort_run(2, Some(noisy_plan(123)));
    let explicit = FaultPlan::from_events(&log_seeded, 12, 1_000_000);
    assert!(explicit.rates.is_zero());
    let (out_explicit, log_explicit, _) = sort_run(2, Some(explicit));
    assert_eq!(out_explicit, out_seeded);
    let non_backoff = |log: &[FaultEvent]| -> Vec<FaultEvent> {
        log.iter()
            .copied()
            .filter(|e| e.kind != FaultKind::Backoff)
            .collect()
    };
    assert_eq!(non_backoff(&log_explicit), non_backoff(&log_seeded));
}

#[test]
fn fault_events_appear_in_the_trace() {
    let _g = test_lock();
    treeemb_obs::capture_start();
    treeemb_obs::drain();
    let plan = FaultPlan::new(0)
        .with_fault(FaultSpec::Drop {
            round: 0,
            attempt: 0,
            src: 0,
            msg_index: 0,
        })
        .with_fault(FaultSpec::Straggle {
            round: 0,
            machine: 1,
            delay_ns: 1_000,
        });
    let mut rt = rt_with(2, Some(plan));
    let dist = rt.distribute((0..32u64).collect()).unwrap();
    rt.round("route", dist, |_, shard, em| {
        for v in shard {
            em.send((v % 8) as usize, v);
        }
        Vec::new()
    })
    .unwrap();
    treeemb_obs::capture_stop();
    let events = treeemb_obs::drain();
    for name in ["fault.drop", "fault.straggle", "fault.backoff"] {
        let ev = events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing {name} mark in trace"));
        assert!(ev.args.iter().any(|(k, _)| *k == "round"));
        assert!(ev.args.iter().any(|(k, _)| *k == "attempt"));
    }
}

#[test]
fn empty_plan_changes_nothing_and_logs_nothing() {
    let _g = test_lock();
    let (clean, _, att_clean) = sort_run(2, None);
    let (armed, log, att_armed) = sort_run(2, Some(FaultPlan::new(42)));
    assert_eq!(clean, armed);
    assert!(log.is_empty());
    assert_eq!(att_clean, att_armed);
    assert!(att_armed.iter().all(|&a| a == 1));
}

#[test]
fn lenient_mode_still_retries_transient_faults() {
    let _g = test_lock();
    let cfg = MpcConfig::explicit(1 << 12, 256, 8)
        .with_threads(2)
        .lenient();
    let mut rt = Runtime::builder()
        .config(cfg)
        .fault_plan(FaultPlan::new(0).with_fault(FaultSpec::Drop {
            round: 0,
            attempt: 0,
            src: 0,
            msg_index: 0,
        }))
        .build();
    let dist = rt.distribute((0..32u64).collect()).unwrap();
    let out = rt
        .round("route", dist, |_, shard, em| {
            for v in shard {
                em.send((v % 8) as usize, v);
            }
            Vec::new()
        })
        .unwrap();
    assert_eq!(out.total_len(), 32);
    assert_eq!(rt.metrics().round_stats()[0].attempts, 2);
}

#[test]
fn map_local_and_distribute_respect_squeezed_capacity() {
    let _g = test_lock();
    let plan = FaultPlan::new(0).with_fault(FaultSpec::Squeeze {
        from_round: 0,
        capacity_words: 2,
        machine: None,
    });
    let mut rt = rt_with(1, Some(plan.clone()));
    // distribute packs by the squeezed capacity: 8 machines × 2 words.
    let err = rt.distribute((0..64u64).collect()).unwrap_err();
    assert!(matches!(
        err,
        MpcError::CapacityExceeded { capacity: 2, .. }
    ));
    let mut rt = rt_with(1, Some(plan));
    let dist = rt.distribute((0..8u64).collect()).unwrap();
    let err = rt
        .map_local(dist, |_, shard| {
            // Each machine inflates its 2 words to 6 > squeezed cap.
            shard
                .into_iter()
                .flat_map(|v| [v, v, v])
                .collect::<Vec<u64>>()
        })
        .unwrap_err();
    assert!(matches!(
        err,
        MpcError::CapacityExceeded { capacity: 2, .. }
    ));
}

#[test]
fn dist_roundtrip_unaffected_by_duplicate_faults() {
    let _g = test_lock();
    // A duplicate is detected and the exchange retried; the delivered
    // sequence must not contain the duplicate.
    let plan = FaultPlan::new(0).with_fault(FaultSpec::Duplicate {
        round: 0,
        attempt: 0,
        src: 0,
        msg_index: 1,
    });
    let mut rt = rt_with(2, Some(plan));
    let dist = Dist::from_parts(vec![
        vec![10u64, 11, 12],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
    ]);
    let out = rt
        .round("fan", dist, |_, shard, em| {
            for v in shard {
                em.send(1, v);
            }
            Vec::new()
        })
        .unwrap();
    assert_eq!(out.part(1), &[10, 11, 12], "no duplicate delivered");
    assert_eq!(rt.metrics().round_stats()[0].attempts, 2);
    assert!(rt
        .fault_log()
        .iter()
        .any(|e| e.kind == FaultKind::Duplicate));
}
