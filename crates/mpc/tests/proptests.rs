//! Property tests for the MPC runtime: primitives must be *correct for
//! every input* and *deterministic under any thread count*.

use proptest::prelude::*;
use treeemb_mpc::primitives::{aggregate, shuffle, sort};
use treeemb_mpc::{MpcConfig, Runtime};

fn runtime(cap: usize, machines: usize, threads: usize) -> Runtime {
    Runtime::builder()
        .config(MpcConfig::explicit(1 << 14, cap, machines).with_threads(threads))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_matches_std_sort(
        data in proptest::collection::vec(0u64..1_000_000, 0..600),
        machines in 1usize..40,
    ) {
        let mut rt = runtime(1024, machines, 4);
        let dist = rt.distribute(data.clone()).unwrap();
        let sorted = sort::sort_by_key(&mut rt, dist, |x| *x).unwrap();
        let got = rt.gather(sorted);
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn two_level_sort_matches_std_sort(
        data in proptest::collection::vec(0u64..100_000, 0..500),
        machines in 60usize..140,
    ) {
        // Capacity 100 < 2*machines forces the two-level path.
        let mut rt = runtime(100, machines, 4);
        let dist = rt.distribute(data.clone()).unwrap();
        let sorted = sort::sort_two_level(&mut rt, dist, |x| *x).unwrap();
        let got = rt.gather(sorted);
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn shuffle_preserves_multiset(
        data in proptest::collection::vec(0u64..1000, 0..400),
        machines in 1usize..20,
    ) {
        let mut rt = runtime(2048, machines, 4);
        let dist = rt.distribute(data.clone()).unwrap();
        let out = shuffle::shuffle_by_key(&mut rt, dist, |x| *x).unwrap();
        let mut got = rt.gather(out);
        got.sort_unstable();
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn aggregates_match_host_computation(
        data in proptest::collection::vec(1u64..10_000, 0..400),
        machines in 1usize..30,
    ) {
        let mut rt = runtime(1024, machines, 4);
        let dist = rt.distribute(data.clone()).unwrap();
        prop_assert_eq!(aggregate::count(&mut rt, &dist).unwrap(), data.len() as u64);
        let sum = aggregate::sum_by(&mut rt, &dist, |x| *x as f64).unwrap();
        prop_assert!((sum - data.iter().sum::<u64>() as f64).abs() < 1e-6);
        let max = aggregate::max_by(&mut rt, &dist, |x| *x).unwrap();
        prop_assert_eq!(max, data.iter().copied().max());
    }

    #[test]
    fn rounds_are_deterministic_across_thread_counts(
        data in proptest::collection::vec(0u64..50_000, 1..300),
        machines in 2usize..16,
    ) {
        let run = |threads: usize| {
            let mut rt = runtime(2048, machines, threads);
            let dist = rt.distribute(data.clone()).unwrap();
            let shuffled = shuffle::shuffle_by_key(&mut rt, dist, |x| x / 3).unwrap();
            let sorted = sort::sort_by_key(&mut rt, shuffled, |x| *x).unwrap();
            // Shard boundaries AND contents must be identical.
            let parts: Vec<Vec<u64>> = sorted.parts().to_vec();
            (parts, rt.metrics().rounds(), rt.metrics().total_sent_words())
        };
        let a = run(1);
        let b = run(8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dedup_keeps_exactly_distinct_keys(
        data in proptest::collection::vec(0u64..200, 0..400),
        machines in 1usize..20,
    ) {
        let mut rt = runtime(2048, machines, 4);
        let dist = rt.distribute(data.clone()).unwrap();
        let out = shuffle::dedup_by_key(&mut rt, dist, |x| *x).unwrap();
        let mut got = rt.gather(out);
        got.sort_unstable();
        let mut expect: Vec<u64> = data;
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }
}
