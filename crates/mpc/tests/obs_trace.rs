//! Integration tests for the tracing layer as wired into the MPC
//! runtime: spans recorded from executor workers, round spans with word
//! counters, and executor counters flowing into the trace.
//!
//! Runs as its own process, so arming the global collector here cannot
//! leak into the library's unit tests. Within this binary the tests
//! serialize on a mutex (the collector is process-global).

use std::sync::Mutex;
use std::sync::MutexGuard;
use treeemb_mpc::{MpcConfig, Runtime};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn spans_from_eight_executor_workers_interleave_without_loss() {
    let _g = test_lock();
    treeemb_obs::capture_start();
    treeemb_obs::drain();
    let n = 512usize;
    // 9 participants = the caller plus 8 pool workers; every item opens
    // a span inside the worker closure.
    let out = treeemb_mpc::exec::par_map_indexed((0..n as u64).collect::<Vec<u64>>(), 9, |i, x| {
        let _sp = treeemb_obs::span!("worker.item", "i" = i);
        std::thread::sleep(std::time::Duration::from_micros(50));
        x + 1
    });
    treeemb_obs::capture_stop();
    assert_eq!(out.len(), n);
    let events = treeemb_obs::drain();
    let items: Vec<_> = events.iter().filter(|e| e.name == "worker.item").collect();
    assert_eq!(items.len(), n, "every per-item span must be recorded");
    // All n distinct item indices survive, regardless of interleaving.
    let mut seen: Vec<u64> = items
        .iter()
        .map(|e| e.args.iter().find(|(k, _)| *k == "i").expect("arg i").1)
        .collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), n);
    // The items really ran on multiple threads.
    let tids: std::collections::HashSet<u64> = items.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 2, "expected multi-threaded execution");
    // The enclosing executor job span exists and contains the items.
    let job = events
        .iter()
        .find(|e| e.name == "exec.map")
        .expect("exec.map span");
    for item in &items {
        assert!(item.start_ns >= job.start_ns);
        assert!(item.start_ns + item.dur_ns <= job.start_ns + job.dur_ns);
    }
}

#[test]
fn round_spans_carry_word_counters_and_nest_under_primitives() {
    let _g = test_lock();
    treeemb_obs::capture_start();
    treeemb_obs::drain();
    let mut rt = Runtime::builder()
        .config(MpcConfig::explicit(1 << 12, 256, 8).with_threads(4))
        .build();
    let dist = rt.distribute((0..64u64).collect()).unwrap();
    let sorted = treeemb_mpc::primitives::sort::sort_by_key(&mut rt, dist, |x| *x).unwrap();
    assert_eq!(rt.gather(sorted).len(), 64);
    treeemb_obs::capture_stop();
    let events = treeemb_obs::drain();

    let sort_span = events
        .iter()
        .find(|e| e.name == "mpc.sort")
        .expect("mpc.sort span");
    let round_spans: Vec<_> = events
        .iter()
        .filter(|e| e.name.starts_with("mpc.round:"))
        .collect();
    assert!(!round_spans.is_empty(), "rounds must produce spans");
    for r in &round_spans {
        // Every round span carries the word counters as arguments.
        for key in ["round", "sent_words", "max_resident_words"] {
            assert!(
                r.args.iter().any(|(k, _)| *k == key),
                "round span {} missing arg {key}",
                r.name
            );
        }
        // Rounds belonging to the sort nest strictly inside its span.
        if r.name.contains("sort") {
            assert!(r.depth > sort_span.depth);
            assert!(r.start_ns >= sort_span.start_ns);
            assert!(r.start_ns + r.dur_ns <= sort_span.start_ns + sort_span.dur_ns);
        }
    }
    // Round spans and metrics agree on attribution: the span-side word
    // counters sum to the meter's total.
    let span_sent: u64 = round_spans
        .iter()
        .filter_map(|r| r.args.iter().find(|(k, _)| *k == "sent_words"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(span_sent, rt.metrics().total_sent_words() as u64);
    // Executor counters were published into the trace.
    assert!(events.iter().any(|e| e.name == "exec.tasks"));
}

#[test]
fn metrics_round_timestamps_are_monotone() {
    let _g = test_lock();
    let mut rt = Runtime::builder()
        .config(MpcConfig::explicit(1 << 12, 256, 4).with_threads(2))
        .build();
    let mut dist = rt.distribute((0..32u64).collect()).unwrap();
    for step in 0..3 {
        dist = rt
            .round(&format!("step{step}"), dist, |_, shard, em| {
                for v in shard {
                    em.send((v % 4) as usize, v);
                }
                Vec::new()
            })
            .unwrap();
    }
    let stats = rt.metrics().round_stats();
    assert_eq!(stats.len(), 3);
    for w in stats.windows(2) {
        assert!(w[0].t_end_ns <= w[1].t_start_ns, "rounds overlap in time");
    }
    for s in stats {
        assert!(s.t_end_ns >= s.t_start_ns);
    }
}
