//! Loom model-checking suite for the executor's synchronization core.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p treeemb-mpc --test loom_exec
//! ```
//!
//! Each test explores bounded-exhaustive thread interleavings of the
//! *shipped* protocol types (`treeemb_mpc::exec::protocol`), which are
//! compiled against the loom shim's scheduler-instrumented primitives
//! under `--cfg loom` and against `std::sync` otherwise. Properties
//! checked across every explored schedule:
//!
//! * the chunk cursor dispenses each item index **exactly once**, so
//!   each output slot is written exactly once (determinism contract);
//! * admission tickets cap participation without losing items;
//! * the publish → serve → complete → drain handshake terminates —
//!   no deadlock, no lost wakeup on either condvar;
//! * workers never serve the same epoch twice, and stale epochs
//!   observed after a drain are skipped;
//! * `drain` returns only after every participating worker has left
//!   the job (the raw-pointer descriptor in `exec` relies on this);
//! * `close` wakes parked workers so joins complete.
//!
//! Models are deliberately tiny (≤3 model threads, a handful of items)
//! to keep the schedule space tractable, as is standard loom practice.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

use treeemb_mpc::exec::protocol::{JobCore, PoolCore};

/// A job's shared scratch: the scheduling core plus one write-counter
/// per item slot (standing in for `exec`'s `MaybeUninit` output slots).
struct ModelJob {
    core: JobCore,
    slots: Vec<AtomicUsize>,
}

impl ModelJob {
    fn new(n: usize, participants: usize) -> Self {
        Self {
            core: JobCore::new(n, participants),
            slots: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Participate in the job exactly as `exec::run_map` does: take a
    /// ticket, then drive chunks, bumping each claimed slot.
    fn participate(&self) {
        if !self.core.take_ticket() {
            return;
        }
        self.core.drive(|start, end| {
            for i in start..end {
                self.slots[i].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    fn assert_each_slot_written_once(&self) {
        for (i, s) in self.slots.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "slot {i} written != once");
        }
    }
}

/// Two participants race the chunk cursor over a shared job: every
/// index must be claimed and written exactly once in every schedule.
#[test]
fn chunk_cursor_claims_each_index_exactly_once() {
    loom::model(|| {
        let job = Arc::new(ModelJob::new(3, 2));
        let helper = {
            let job = Arc::clone(&job);
            thread::spawn(move || job.participate())
        };
        job.participate();
        helper.join().unwrap();
        job.assert_each_slot_written_once();
    });
}

/// With a single admission ticket, the surplus participant must bow out
/// without touching any slot — and no item may be lost because of it.
#[test]
fn surplus_participants_bow_out_without_losing_items() {
    loom::model(|| {
        let job = Arc::new(ModelJob::new(2, 1));
        let helper = {
            let job = Arc::clone(&job);
            thread::spawn(move || job.participate())
        };
        job.participate();
        helper.join().unwrap();
        job.assert_each_slot_written_once();
    });
}

/// Full round trip mirroring `Pool::run` + `worker_loop`: the caller
/// publishes, participates, and drains while a pool worker serves.
/// Checks exactly-once output placement, handshake termination, and —
/// via the `in_job` flag — that `drain` never returns while a worker is
/// still inside the job (the safety contract the raw-pointer job
/// descriptors in `exec` depend on).
#[test]
fn publish_serve_drain_round_trip() {
    loom::model(|| {
        let pool = Arc::new(PoolCore::<usize>::new());
        let job = Arc::new(ModelJob::new(2, 2));
        let in_job = Arc::new(AtomicBool::new(false));

        let worker = {
            let pool = Arc::clone(&pool);
            let job = Arc::clone(&job);
            let in_job = Arc::clone(&in_job);
            thread::spawn(move || {
                let mut seen_epoch = 0u64;
                while let Some((_tag, running)) = pool.serve(&mut seen_epoch) {
                    assert!(running >= 1);
                    in_job.store(true, Ordering::Relaxed);
                    job.participate();
                    in_job.store(false, Ordering::Relaxed);
                    pool.complete();
                }
            })
        };

        pool.publish(1);
        job.participate();
        pool.drain();
        // `drain` waited for running == 0, so no worker can still be
        // between `serve` and `complete`.
        assert!(
            !in_job.load(Ordering::Relaxed),
            "drain returned while a worker was inside the job"
        );
        job.assert_each_slot_written_once();

        pool.close();
        worker.join().unwrap();
    });
}

/// Two jobs published back to back through the same pool: the worker's
/// epoch bookkeeping must neither re-serve a retired job nor skip a
/// fresh one, and both jobs must complete exactly once per item.
#[test]
fn epoch_dedup_across_sequential_jobs() {
    loom::model(|| {
        let pool = Arc::new(PoolCore::<usize>::new());
        let job_a = Arc::new(ModelJob::new(1, 2));
        let job_b = Arc::new(ModelJob::new(1, 2));

        let worker = {
            let pool = Arc::clone(&pool);
            let job_a = Arc::clone(&job_a);
            let job_b = Arc::clone(&job_b);
            thread::spawn(move || {
                let mut seen_epoch = 0u64;
                while let Some((tag, _running)) = pool.serve(&mut seen_epoch) {
                    match tag {
                        1 => job_a.participate(),
                        2 => job_b.participate(),
                        other => panic!("served unknown job tag {other}"),
                    }
                    pool.complete();
                }
            })
        };

        pool.publish(1);
        job_a.participate();
        pool.drain();

        pool.publish(2);
        job_b.participate();
        pool.drain();

        pool.close();
        worker.join().unwrap();

        job_a.assert_each_slot_written_once();
        job_b.assert_each_slot_written_once();
    });
}

/// A second caller queues behind an in-flight publication on `idle_cv`;
/// the retiring drain must wake it (a lost wakeup here would deadlock —
/// and the checker would report the schedule).
#[test]
fn queued_publisher_is_woken_by_drain() {
    loom::model(|| {
        let pool = Arc::new(PoolCore::<usize>::new());
        let job_a = Arc::new(ModelJob::new(1, 1));
        let job_b = Arc::new(ModelJob::new(1, 1));

        // Second caller: queues its publish behind job A's.
        let caller2 = {
            let pool = Arc::clone(&pool);
            let job_b = Arc::clone(&job_b);
            thread::spawn(move || {
                pool.publish(2);
                job_b.participate();
                pool.drain();
            })
        };

        pool.publish(1);
        job_a.participate();
        pool.drain();

        caller2.join().unwrap();
        job_a.assert_each_slot_written_once();
        job_b.assert_each_slot_written_once();

        // No worker ever served; both jobs were fully driven by their
        // publishing callers (single admission ticket each).
        pool.close();
    });
}

/// `close` must wake a worker parked in `serve` waiting for work; a
/// missed notification would hang the join forever.
#[test]
fn close_wakes_parked_worker() {
    loom::model(|| {
        let pool = Arc::new(PoolCore::<usize>::new());
        let worker = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let mut seen_epoch = 0u64;
                assert!(pool.serve(&mut seen_epoch).is_none());
            })
        };
        pool.close();
        worker.join().unwrap();
    });
}

/// Worker-slot reservation hands out each slot index exactly once even
/// when two callers race to grow the pool.
#[test]
fn worker_reservation_is_monotone_and_disjoint() {
    loom::model(|| {
        let pool = Arc::new(PoolCore::<usize>::new());
        let other = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.reserve_workers(2))
        };
        let mine = pool.reserve_workers(1);
        let theirs = other.join().unwrap();
        // Ranges never overlap and the pool ends at the max target.
        assert!(
            mine.end <= theirs.start
                || theirs.end <= mine.start
                || mine.is_empty()
                || theirs.is_empty()
        );
        assert_eq!(pool.spawned(), 2);
    });
}
