//! The simulated cluster: distributed collections and the round
//! primitive.

use crate::config::MpcConfig;
use crate::error::{CapacityPhase, MpcError, MpcResult};
use crate::exec;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::metrics::{Metrics, RoundStats};
use crate::words::{self, Words};

/// Identifier of a machine, `0..num_machines`.
pub type MachineId = usize;

/// A distributed collection: one shard (`Vec<T>`) per machine.
#[derive(Debug, Clone)]
pub struct Dist<T> {
    parts: Vec<Vec<T>>,
}

impl<T> Dist<T> {
    /// An empty collection over `m` machines.
    pub fn empty(m: usize) -> Self {
        Self {
            parts: (0..m).map(|_| Vec::new()).collect(),
        }
    }

    /// Wraps explicit shards.
    pub fn from_parts(parts: Vec<Vec<T>>) -> Self {
        Self { parts }
    }

    /// Number of machines the collection spans.
    pub fn num_machines(&self) -> usize {
        self.parts.len()
    }

    /// Shard of machine `i`.
    pub fn part(&self, i: MachineId) -> &[T] {
        &self.parts[i]
    }

    /// All shards.
    pub fn parts(&self) -> &[Vec<T>] {
        &self.parts
    }

    /// Consumes the collection, yielding its shards.
    pub fn into_parts(self) -> Vec<Vec<T>> {
        self.parts
    }

    /// Total number of records across the cluster.
    pub fn total_len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

impl<T: Words> Dist<T> {
    /// Total resident words across the cluster.
    pub fn total_words(&self) -> usize {
        self.parts.iter().map(|p| words::of_slice(p)).sum()
    }

    /// Largest shard in words.
    pub fn max_part_words(&self) -> usize {
        self.parts
            .iter()
            .map(|p| words::of_slice(p))
            .max()
            .unwrap_or(0)
    }
}

/// Outgoing-message buffer handed to round closures.
pub struct Emitter<U> {
    msgs: Vec<(MachineId, U)>,
    out_words: usize,
}

impl<U: Words> Emitter<U> {
    fn new() -> Self {
        Self {
            msgs: Vec::new(),
            out_words: 0,
        }
    }

    /// Queues `rec` for delivery to machine `to` at the end of the round.
    pub fn send(&mut self, to: MachineId, rec: U) {
        self.out_words += rec.words();
        self.msgs.push((to, rec));
    }

    /// Words queued so far.
    pub fn out_words(&self) -> usize {
        self.out_words
    }
}

/// Fault-injection state attached to a runtime (see [`crate::fault`]).
struct FaultState {
    plan: FaultPlan,
    log: Vec<FaultEvent>,
}

/// The simulated MPC runtime: executes rounds, enforces capacity, and
/// meters everything.
pub struct Runtime {
    cfg: MpcConfig,
    metrics: Metrics,
    /// Per-machine words pinned by accounted broadcasts (e.g. replicated
    /// grids): charged against capacity and total space in every
    /// subsequent round.
    overlay_words: usize,
    /// Deterministic fault injection; `None` (the default) costs one
    /// never-taken branch per decision point.
    faults: Option<Box<FaultState>>,
}

impl Runtime {
    /// Creates a runtime for the given configuration.
    pub fn new(cfg: MpcConfig) -> Self {
        Self {
            cfg,
            metrics: Metrics::new(),
            overlay_words: 0,
            faults: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.cfg.num_machines
    }

    /// Per-machine capacity in words, as squeezed by any active fault
    /// plan at the current round (the configured capacity otherwise).
    pub fn capacity(&self) -> usize {
        let base = self.cfg.capacity_words;
        match &self.faults {
            None => base,
            Some(f) => match f.plan.squeeze_at(self.metrics.rounds()) {
                Some(squeezed) => squeezed.min(base),
                None => base,
            },
        }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Clears accumulated metrics (e.g. between pipeline stages).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    /// Attaches a deterministic fault plan. Subsequent rounds consult it
    /// at every decision point; injected faults are appended to
    /// [`Runtime::fault_log`] and recorded as `fault.*` marks in the
    /// active trace.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultState {
            plan,
            log: Vec::new(),
        }));
    }

    /// Detaches any fault plan (keeps metrics).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Every fault injected so far, in deterministic order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |f| &f.log)
    }

    /// Drains the fault log (the plan stays attached).
    pub fn take_fault_log(&mut self) -> Vec<FaultEvent> {
        self.faults
            .as_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.log))
    }

    /// Records the active capacity squeeze (once per round index) when
    /// a fault plan is shrinking the effective capacity. Called by every
    /// entry point that consults [`Runtime::capacity`], so the fault log
    /// names the squeeze no matter where the squeezed run fails.
    fn note_squeeze(&mut self) {
        let cap = self.capacity();
        if cap >= self.cfg.capacity_words {
            return;
        }
        let round = self.metrics.rounds();
        if self
            .fault_log()
            .iter()
            .any(|e| e.kind == FaultKind::Squeeze && e.round == round)
        {
            return;
        }
        self.record_fault(FaultEvent {
            round,
            attempt: 0,
            kind: FaultKind::Squeeze,
            machine: 0,
            msg_index: usize::MAX,
            value: cap as u64,
        });
    }

    /// Appends an injected fault to the log and the active trace.
    fn record_fault(&mut self, ev: FaultEvent) {
        if treeemb_obs::enabled() {
            let name = match ev.kind {
                FaultKind::Straggle => "fault.straggle",
                FaultKind::Drop => "fault.drop",
                FaultKind::Duplicate => "fault.duplicate",
                FaultKind::Unavailable => "fault.unavailable",
                FaultKind::Backoff => "fault.backoff",
                FaultKind::Squeeze => "fault.squeeze",
            };
            treeemb_obs::mark(
                name,
                &[
                    ("round", ev.round as u64),
                    ("attempt", ev.attempt as u64),
                    ("machine", ev.machine as u64),
                    (
                        "msg_index",
                        if ev.msg_index == usize::MAX {
                            0
                        } else {
                            ev.msg_index as u64
                        },
                    ),
                    ("value", ev.value),
                ],
            );
        }
        if let Some(f) = &mut self.faults {
            f.log.push(ev);
        }
    }

    /// Loads host data onto the cluster, filling machines greedily in
    /// word units. Mirrors the MPC convention that the input arrives
    /// pre-distributed; it does not count as a round.
    ///
    /// Fails if a single record exceeds capacity or the cluster's total
    /// space cannot hold the input.
    pub fn distribute<T: Words + Send>(&mut self, items: Vec<T>) -> MpcResult<Dist<T>> {
        let mut sp = treeemb_obs::span!("mpc.distribute", "items" = items.len());
        self.note_squeeze();
        let cap = self.capacity();
        let m = self.num_machines();
        let mut parts: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
        let mut machine = 0usize;
        let mut used = 0usize;
        for item in items {
            let w = item.words();
            if w > cap {
                return Err(MpcError::CapacityExceeded {
                    machine,
                    round: self.metrics.rounds(),
                    phase: CapacityPhase::Input,
                    words: w,
                    capacity: cap,
                    label: "distribute".into(),
                });
            }
            if used + w > cap {
                machine += 1;
                used = 0;
                if machine >= m {
                    return Err(MpcError::CapacityExceeded {
                        machine: m - 1,
                        round: self.metrics.rounds(),
                        phase: CapacityPhase::Input,
                        words: cap + w,
                        capacity: cap,
                        label: "distribute (cluster full)".into(),
                    });
                }
            }
            used += w;
            parts[machine].push(item);
        }
        let dist = Dist::from_parts(parts);
        self.metrics.record_total_resident(dist.total_words());
        sp.arg("total_words", dist.total_words() as u64);
        Ok(dist)
    }

    /// Executes one communication round.
    ///
    /// Each machine `i` runs `f(i, local_shard, emitter)` concurrently,
    /// returning the records it *keeps*; records passed to
    /// [`Emitter::send`] are routed to their destinations. A machine's
    /// shard in the output collection is its kept records followed by
    /// received records in source-machine order (deterministic).
    ///
    /// Capacity checks (strict mode): input ≤ s, sent ≤ s, received ≤ s,
    /// kept + received ≤ s.
    pub fn round<T, U, F>(&mut self, label: &str, input: Dist<T>, f: F) -> MpcResult<Dist<U>>
    where
        T: Words + Send,
        U: Words + Send,
        F: Fn(MachineId, Vec<T>, &mut Emitter<U>) -> Vec<U> + Sync,
    {
        let cap = self.capacity();
        let m = self.num_machines();
        assert_eq!(
            input.num_machines(),
            m,
            "collection spans a different cluster"
        );
        let round_idx = self.metrics.rounds();
        let strict = self.cfg.strict;
        let mut violations = 0usize;
        let t_start_ns = treeemb_obs::now_ns();
        let mut sp = treeemb_obs::Span::enter_with(|| format!("mpc.round:{label}"));
        sp.arg("round", round_idx as u64);

        // Fault injection: a small cloned snapshot of the plan lets the
        // borrow of `self` stay free for event recording; the clone only
        // happens when a plan is attached.
        let plan: Option<FaultPlan> = self.faults.as_ref().map(|f| f.plan.clone());
        let log_mark = self.faults.as_ref().map_or(0, |f| f.log.len());
        self.note_squeeze();
        let straggle: Vec<u64> = match &plan {
            Some(p) => (0..m).map(|i| p.straggle_ns(round_idx, i)).collect(),
            None => Vec::new(),
        };
        for (machine, &delay_ns) in straggle.iter().enumerate() {
            if delay_ns > 0 {
                self.record_fault(FaultEvent {
                    round: round_idx,
                    attempt: 0,
                    kind: FaultKind::Straggle,
                    machine,
                    msg_index: usize::MAX,
                    value: delay_ns,
                });
            }
        }

        // Phase 1: input capacity check.
        let mut worst_input: Option<(usize, usize)> = None;
        for (i, p) in input.parts().iter().enumerate() {
            let w = words::of_slice(p);
            if w > cap && worst_input.is_none_or(|(_, ww)| w > ww) {
                worst_input = Some((i, w));
            }
        }
        if let Some((i, w)) = worst_input {
            if strict {
                return Err(MpcError::CapacityExceeded {
                    machine: i,
                    round: round_idx,
                    phase: CapacityPhase::Input,
                    words: w,
                    capacity: cap,
                    label: label.into(),
                });
            }
            violations += 1;
        }

        // Phase 2: run machines concurrently.
        struct MachineOut<U> {
            kept: Vec<U>,
            msgs: Vec<(MachineId, U)>,
            out_words: usize,
        }
        let straggle_ref = &straggle;
        let outputs: Vec<MachineOut<U>> =
            exec::par_map_indexed(input.into_parts(), self.cfg.threads, |i, shard| {
                if let Some(&delay_ns) = straggle_ref.get(i) {
                    if delay_ns > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(delay_ns));
                    }
                }
                let mut em = Emitter::new();
                let kept = f(i, shard, &mut em);
                MachineOut {
                    kept,
                    msgs: em.msgs,
                    out_words: em.out_words,
                }
            });

        // Phase 2b: the exchange attempt loop. Transient faults (machine
        // unavailability, message drop/duplication) are detected by the
        // simulated exchange protocol and the whole exchange retries with
        // simulated backoff, re-transmitting from the already-computed
        // machine outputs. A clean attempt therefore delivers exactly the
        // fault-free message sequence — downstream state is bit-identical
        // — and exhausting the retry budget surfaces as the typed
        // `RetriesExhausted`, never as silently corrupted output.
        let mut attempts = 1u32;
        if let Some(p) = plan.as_ref().filter(|p| !p.is_empty()) {
            let max_attempts = p.max_retries.saturating_add(1);
            let mut attempt = 0u32;
            loop {
                let mut events: Vec<FaultEvent> = Vec::new();
                for machine in 0..m {
                    if p.unavailable(round_idx, attempt, machine) {
                        events.push(FaultEvent {
                            round: round_idx,
                            attempt,
                            kind: FaultKind::Unavailable,
                            machine,
                            msg_index: usize::MAX,
                            value: 0,
                        });
                    }
                }
                if events.is_empty() {
                    // All machines up: scan the exchange for message
                    // faults, in (source, emission index) order.
                    for (src, out) in outputs.iter().enumerate() {
                        for idx in 0..out.msgs.len() {
                            if let Some(kind) = p.msg_fault(round_idx, attempt, src, idx) {
                                events.push(FaultEvent {
                                    round: round_idx,
                                    attempt,
                                    kind,
                                    machine: src,
                                    msg_index: idx,
                                    value: 0,
                                });
                            }
                        }
                    }
                }
                if events.is_empty() {
                    attempts = attempt + 1;
                    break;
                }
                for ev in events {
                    self.record_fault(ev);
                }
                if attempt + 1 >= max_attempts {
                    sp.arg("attempts", max_attempts as u64);
                    return Err(MpcError::RetriesExhausted {
                        round: round_idx,
                        label: label.into(),
                        attempts: max_attempts,
                    });
                }
                self.record_fault(FaultEvent {
                    round: round_idx,
                    attempt,
                    kind: FaultKind::Backoff,
                    machine: 0,
                    msg_index: usize::MAX,
                    value: p.backoff_for(attempt + 1),
                });
                attempt += 1;
            }
        }

        // Phase 3: validate sends and route messages.
        let mut sent_total = 0usize;
        let mut max_out = 0usize;
        let mut parts: Vec<Vec<U>> = Vec::with_capacity(m);
        let mut in_words = vec![0usize; m];
        let mut routed: Vec<Vec<(MachineId, U)>> = Vec::with_capacity(m);
        for (src, out) in outputs.iter().enumerate() {
            if out.out_words > cap {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: src,
                        round: round_idx,
                        phase: CapacityPhase::Send,
                        words: out.out_words,
                        capacity: cap,
                        label: label.into(),
                    });
                }
                violations += 1;
            }
            sent_total += out.out_words;
            max_out = max_out.max(out.out_words);
            for (dest, rec) in &out.msgs {
                if *dest >= m {
                    return Err(MpcError::BadDestination {
                        source: src,
                        dest: *dest,
                        num_machines: m,
                    });
                }
                in_words[*dest] += rec.words();
            }
        }
        let max_in = in_words.iter().copied().max().unwrap_or(0);
        for (dest, &w) in in_words.iter().enumerate() {
            if w > cap {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: dest,
                        round: round_idx,
                        phase: CapacityPhase::Receive,
                        words: w,
                        capacity: cap,
                        label: label.into(),
                    });
                }
                violations += 1;
            }
        }
        for _ in 0..m {
            routed.push(Vec::new());
        }
        // Deliver kept records first, then messages in source order.
        let mut kept_words = vec![0usize; m];
        let mut outputs = outputs;
        for (i, out) in outputs.iter().enumerate() {
            kept_words[i] = words::of_slice(&out.kept);
        }
        for (src, out) in outputs.iter_mut().enumerate() {
            for (dest, rec) in out.msgs.drain(..) {
                routed[dest].push((src, rec));
            }
        }
        let mut max_resident = 0usize;
        for (i, out) in outputs.into_iter().enumerate() {
            let mut shard = out.kept;
            // Messages were appended in source order already because we
            // iterate sources in ascending order above.
            shard.extend(routed[i].drain(..).map(|(_, rec)| rec));
            let resident = kept_words[i] + in_words[i] + self.overlay_words;
            max_resident = max_resident.max(resident);
            if resident > cap {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: i,
                        round: round_idx,
                        phase: CapacityPhase::Residency,
                        words: resident,
                        capacity: cap,
                        label: label.into(),
                    });
                }
                violations += 1;
            }
            parts.push(shard);
        }

        sp.arg("sent_words", sent_total as u64);
        sp.arg("max_out_words", max_out as u64);
        sp.arg("max_in_words", max_in as u64);
        sp.arg("max_resident_words", max_resident as u64);
        self.metrics.record_round(RoundStats {
            round: round_idx,
            label: label.into(),
            sent_words: sent_total,
            max_out_words: max_out,
            max_in_words: max_in,
            max_resident_words: max_resident,
            violations,
            t_start_ns,
            t_end_ns: treeemb_obs::now_ns(),
            attempts,
            faults: self.faults.as_ref().map_or(0, |f| f.log.len() - log_mark),
        });
        let dist = Dist::from_parts(parts);
        self.metrics
            .record_total_resident(dist.total_words() + self.overlay_words * m);
        Ok(dist)
    }

    /// Machine-local transformation with **no communication**. Does not
    /// advance the round counter: in the MPC model, local computation
    /// fuses into the surrounding communication rounds. Output residency
    /// is still metered and capacity-checked.
    pub fn map_local<T, U, F>(&mut self, input: Dist<T>, f: F) -> MpcResult<Dist<U>>
    where
        T: Words + Send,
        U: Words + Send,
        F: Fn(MachineId, Vec<T>) -> Vec<U> + Sync,
    {
        let mut sp = treeemb_obs::span!("mpc.map_local", "items" = input.total_len());
        self.note_squeeze();
        let cap = self.capacity();
        let parts = exec::par_map_indexed(input.into_parts(), self.cfg.threads, f);
        let dist = Dist::from_parts(parts);
        sp.arg("out_words", dist.total_words() as u64);
        if self.cfg.strict {
            for (i, p) in dist.parts().iter().enumerate() {
                let w = words::of_slice(p);
                if w > cap {
                    return Err(MpcError::CapacityExceeded {
                        machine: i,
                        round: self.metrics.rounds(),
                        phase: CapacityPhase::Residency,
                        words: w,
                        capacity: cap,
                        label: "map_local".into(),
                    });
                }
            }
        }
        self.metrics.record_total_resident(dist.total_words());
        Ok(dist)
    }

    /// Pins `words` of per-machine overlay residency (replicated payloads
    /// such as broadcast grids). Charged in every later round's capacity
    /// check and in the total-space meter.
    pub fn metrics_record_replicated(&mut self, words: usize) {
        self.overlay_words += words;
        self.metrics.bump_peak_machine(self.overlay_words);
        self.metrics
            .record_total_resident(self.overlay_words * self.cfg.num_machines);
    }

    /// Records an *accounted* round: a communication round whose loads
    /// are known analytically, without materializing the data. Used by
    /// collectives that would otherwise replicate identical payloads
    /// across every simulated machine (e.g. grid broadcasts), where
    /// materialization adds memory pressure but no fidelity — the round
    /// count, load metering, and capacity checks are identical.
    ///
    /// Fails (strict mode) if any stated load exceeds capacity.
    pub fn record_accounted_round(
        &mut self,
        label: &str,
        sent_words: usize,
        max_out_words: usize,
        max_in_words: usize,
        max_resident_words: usize,
    ) -> MpcResult<()> {
        self.note_squeeze();
        let cap = self.capacity();
        let round = self.metrics.rounds();
        let mut violations = 0usize;
        for (phase, words) in [
            (CapacityPhase::Send, max_out_words),
            (CapacityPhase::Receive, max_in_words),
            (CapacityPhase::Residency, max_resident_words),
        ] {
            if words > cap {
                if self.cfg.strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: 0,
                        round,
                        phase,
                        words,
                        capacity: cap,
                        label: label.into(),
                    });
                }
                violations += 1;
            }
        }
        if treeemb_obs::enabled() {
            treeemb_obs::mark(
                format!("mpc.round:{label} (accounted)"),
                &[
                    ("round", round as u64),
                    ("sent_words", sent_words as u64),
                    ("max_out_words", max_out_words as u64),
                    ("max_resident_words", max_resident_words as u64),
                ],
            );
        }
        let now = treeemb_obs::now_ns();
        self.metrics.record_round(RoundStats {
            round,
            label: label.into(),
            sent_words,
            max_out_words,
            max_in_words,
            max_resident_words,
            violations,
            t_start_ns: now,
            t_end_ns: now,
            attempts: 1,
            faults: 0,
        });
        Ok(())
    }

    /// Extracts a distributed collection to the host in machine order.
    /// This models reading off the final output and is not an MPC round.
    pub fn gather<T>(&mut self, input: Dist<T>) -> Vec<T> {
        let _sp = treeemb_obs::span!("mpc.gather", "items" = input.total_len());
        let mut out = Vec::with_capacity(input.total_len());
        for part in input.into_parts() {
            out.extend(part);
        }
        out
    }
}

/// SplitMix64 — the stateless mixer used to derive per-machine and
/// per-index random streams from a shared broadcast seed.
#[inline]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rt(cap: usize, machines: usize) -> Runtime {
        Runtime::new(MpcConfig::explicit(64, cap, machines).with_threads(4))
    }

    #[test]
    fn distribute_packs_by_words() {
        let mut rt = small_rt(4, 8);
        let dist = rt.distribute((0..10u64).collect()).unwrap();
        assert_eq!(dist.total_len(), 10);
        for p in dist.parts() {
            assert!(p.len() <= 4);
        }
        // Greedy fill: machine 0 holds records 0..4.
        assert_eq!(dist.part(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn distribute_fails_when_cluster_full() {
        let mut rt = small_rt(4, 2);
        let err = rt.distribute((0..100u64).collect()).unwrap_err();
        assert!(matches!(err, MpcError::CapacityExceeded { .. }));
    }

    #[test]
    fn round_routes_messages_deterministically() {
        let mut rt = small_rt(64, 4);
        let dist = rt.distribute((0..16u64).collect()).unwrap();
        // Send every record to machine (value % 4); keep nothing.
        let out = rt
            .round("route", dist, |_, shard, em| {
                for v in shard {
                    em.send((v % 4) as usize, v);
                }
                Vec::new()
            })
            .unwrap();
        for m in 0..4 {
            let vals = out.part(m);
            assert!(vals.iter().all(|v| (*v % 4) as usize == m));
            // Source-order delivery keeps values ascending here.
            let mut sorted = vals.to_vec();
            sorted.sort_unstable();
            assert_eq!(vals, &sorted[..]);
        }
        assert_eq!(rt.metrics().rounds(), 1);
        assert_eq!(rt.metrics().total_sent_words(), 16);
    }

    #[test]
    fn round_keep_retains_local_data() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute(vec![1u64, 2, 3]).unwrap();
        let out = rt
            .round("keep", dist, |_, shard, _em: &mut Emitter<u64>| shard)
            .unwrap();
        assert_eq!(out.total_len(), 3);
        assert_eq!(rt.metrics().total_sent_words(), 0);
    }

    #[test]
    fn send_capacity_violation_is_strict_error() {
        let mut rt = small_rt(4, 4);
        let dist = rt.distribute(vec![0u64]).unwrap();
        let err = rt
            .round("flood", dist, |id, shard, em| {
                if id == 0 {
                    for i in 0..100u64 {
                        em.send(1, i);
                    }
                }
                shard
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                MpcError::CapacityExceeded {
                    phase: CapacityPhase::Send,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn receive_overflow_detected() {
        let mut rt = small_rt(8, 4);
        let dist = rt.distribute((0..24u64).collect()).unwrap();
        // All machines flood machine 0: each sends <= 8 (ok) but machine 0
        // receives 24 > 8.
        let err = rt
            .round("hotspot", dist, |_, shard, em| {
                for v in shard {
                    em.send(0, v);
                }
                Vec::new()
            })
            .unwrap_err();
        match err {
            MpcError::CapacityExceeded { machine, phase, .. } => {
                assert_eq!(machine, 0);
                assert!(phase == CapacityPhase::Receive || phase == CapacityPhase::Residency);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn lenient_mode_meters_instead_of_failing() {
        let cfg = MpcConfig::explicit(64, 8, 4).lenient();
        let mut rt = Runtime::new(cfg);
        let dist = rt.distribute((0..24u64).collect()).unwrap();
        let out = rt
            .round("hotspot", dist, |_, shard, em| {
                for v in shard {
                    em.send(0, v);
                }
                Vec::new()
            })
            .unwrap();
        assert_eq!(out.part(0).len(), 24);
        assert!(rt.metrics().violations() > 0);
    }

    #[test]
    fn bad_destination_is_an_error_even_lenient() {
        let cfg = MpcConfig::explicit(64, 8, 2).lenient();
        let mut rt = Runtime::new(cfg);
        let dist = rt.distribute(vec![1u64]).unwrap();
        let err = rt
            .round("oops", dist, |_, shard, em| {
                em.send(99, 1u64);
                shard
            })
            .unwrap_err();
        assert!(matches!(err, MpcError::BadDestination { dest: 99, .. }));
    }

    #[test]
    fn map_local_does_not_count_rounds() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute(vec![1u64, 2, 3]).unwrap();
        let doubled = rt
            .map_local(dist, |_, shard| {
                shard.into_iter().map(|x| x * 2).collect::<Vec<u64>>()
            })
            .unwrap();
        assert_eq!(rt.metrics().rounds(), 0);
        assert_eq!(rt.gather(doubled), vec![2, 4, 6]);
    }

    #[test]
    fn metrics_track_peak_residency() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute((0..32u64).collect()).unwrap();
        let _ = rt
            .round("concentrate", dist, |_, shard, em| {
                for v in shard {
                    em.send(1, v);
                }
                Vec::new()
            })
            .unwrap();
        assert_eq!(rt.metrics().peak_machine_words(), 32);
    }

    #[test]
    fn mix_seed_is_deterministic_and_spreads() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 1));
        assert_ne!(mix_seed(0, 0), 0);
    }
}
