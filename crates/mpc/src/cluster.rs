//! The simulated cluster: distributed collections and the round
//! primitive.

use crate::config::{CheckpointPolicy, MpcConfig, RuntimeBuilder};
use crate::error::{CapacityPhase, MpcError, MpcResult};
use crate::exec;
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
use crate::metrics::{Metrics, RoundStats};
use crate::words::{self, Words};

/// Identifier of a machine, `0..num_machines`.
pub type MachineId = usize;

/// A distributed collection: one shard (`Vec<T>`) per machine.
#[derive(Debug, Clone)]
pub struct Dist<T> {
    parts: Vec<Vec<T>>,
}

impl<T> Dist<T> {
    /// An empty collection over `m` machines.
    pub fn empty(m: usize) -> Self {
        Self {
            parts: (0..m).map(|_| Vec::new()).collect(),
        }
    }

    /// Wraps explicit shards.
    pub fn from_parts(parts: Vec<Vec<T>>) -> Self {
        Self { parts }
    }

    /// Number of machines the collection spans.
    pub fn num_machines(&self) -> usize {
        self.parts.len()
    }

    /// Shard of machine `i`.
    pub fn part(&self, i: MachineId) -> &[T] {
        &self.parts[i]
    }

    /// All shards.
    pub fn parts(&self) -> &[Vec<T>] {
        &self.parts
    }

    /// Consumes the collection, yielding its shards.
    pub fn into_parts(self) -> Vec<Vec<T>> {
        self.parts
    }

    /// Total number of records across the cluster.
    pub fn total_len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

impl<T: Words> Dist<T> {
    /// Total resident words across the cluster.
    pub fn total_words(&self) -> usize {
        self.parts.iter().map(|p| words::of_slice(p)).sum()
    }

    /// Largest shard in words.
    pub fn max_part_words(&self) -> usize {
        self.parts
            .iter()
            .map(|p| words::of_slice(p))
            .max()
            .unwrap_or(0)
    }
}

/// Outgoing-message buffer handed to round closures.
pub struct Emitter<U> {
    msgs: Vec<(MachineId, U)>,
    out_words: usize,
}

impl<U: Words> Emitter<U> {
    fn new() -> Self {
        Self {
            msgs: Vec::new(),
            out_words: 0,
        }
    }

    /// Queues `rec` for delivery to machine `to` at the end of the round.
    pub fn send(&mut self, to: MachineId, rec: U) {
        self.out_words += rec.words();
        self.msgs.push((to, rec));
    }

    /// Words queued so far.
    pub fn out_words(&self) -> usize {
        self.out_words
    }
}

/// Fault-injection state attached to a runtime (see [`crate::fault`]).
struct FaultState {
    plan: FaultPlan,
    log: Vec<FaultEvent>,
}

/// The simulated MPC runtime: executes rounds, enforces capacity, and
/// meters everything. Constructed through [`Runtime::builder`].
pub struct Runtime {
    cfg: MpcConfig,
    metrics: Metrics,
    /// Per-machine words pinned by accounted broadcasts (e.g. replicated
    /// grids): charged against capacity and total space in every
    /// subsequent round.
    overlay_words: usize,
    /// Deterministic fault injection; `None` (the default) costs one
    /// never-taken branch per decision point.
    faults: Option<Box<FaultState>>,
    /// Round-input checkpointing policy for crash recovery.
    checkpoint: CheckpointPolicy,
}

impl Runtime {
    /// Starts building a runtime — the one supported construction path.
    ///
    /// ```
    /// use treeemb_mpc::cluster::Runtime;
    /// let rt = Runtime::builder().machines(4).capacity_words(256).build();
    /// assert_eq!(rt.num_machines(), 4);
    /// ```
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Assembles a runtime from fully resolved parts (the builder's
    /// terminal step).
    pub(crate) fn assemble(
        cfg: MpcConfig,
        plan: Option<FaultPlan>,
        checkpoint: CheckpointPolicy,
    ) -> Self {
        Self {
            cfg,
            metrics: Metrics::new(),
            overlay_words: 0,
            faults: plan.map(|plan| {
                Box::new(FaultState {
                    plan,
                    log: Vec::new(),
                })
            }),
            checkpoint,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.cfg.num_machines
    }

    /// The active round-checkpoint policy.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.checkpoint
    }

    /// Minimum effective per-machine capacity across the cluster at the
    /// current round: the smallest configured capacity (after
    /// heterogeneous overrides), further shrunk by any capacity squeeze
    /// an attached fault plan has in force. Capacity-driven sizing plans
    /// against this bound.
    pub fn capacity(&self) -> usize {
        let base = self.cfg.min_capacity_words();
        match &self.faults {
            None => base,
            Some(f) => match f.plan.squeeze_min(self.metrics.rounds()) {
                Some(squeezed) => squeezed.min(base),
                None => base,
            },
        }
    }

    /// Effective capacity of one machine at the current round (its
    /// configured capacity shrunk by applicable squeezes).
    pub fn capacity_of(&self, machine: MachineId) -> usize {
        let base = self.cfg.capacity_of(machine);
        match &self.faults {
            None => base,
            Some(f) => match f.plan.squeeze_for(self.metrics.rounds(), machine) {
                Some(squeezed) => squeezed.min(base),
                None => base,
            },
        }
    }

    /// Effective capacities of every machine at the current round.
    fn capacities(&self) -> Vec<usize> {
        (0..self.cfg.num_machines)
            .map(|i| self.capacity_of(i))
            .collect()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Clears accumulated metrics (e.g. between pipeline stages).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Every fault injected so far, in deterministic order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |f| &f.log)
    }

    /// Drains the fault log (the plan stays attached).
    pub fn take_fault_log(&mut self) -> Vec<FaultEvent> {
        self.faults
            .as_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.log))
    }

    /// Records the capacity squeezes an attached fault plan has in force
    /// (once per round index). Called by every entry point that consults
    /// capacities, so the fault log names the squeeze no matter where
    /// the squeezed run fails. Heterogeneous *configured* capacities are
    /// not faults and are never logged here.
    fn note_squeeze(&mut self) {
        let Some(plan) = self.faults.as_ref().map(|f| f.plan.clone()) else {
            return;
        };
        let round = self.metrics.rounds();
        if self
            .fault_log()
            .iter()
            .any(|e| e.kind == FaultKind::Squeeze && e.round == round)
        {
            return;
        }
        let mut events: Vec<FaultEvent> = Vec::new();
        if let Some(sq) = plan.squeeze_at(round) {
            let cap = sq.min(self.cfg.capacity_words);
            if cap < self.cfg.capacity_words {
                events.push(FaultEvent {
                    round,
                    attempt: 0,
                    kind: FaultKind::Squeeze,
                    machine: 0,
                    msg_index: usize::MAX,
                    value: cap as u64,
                });
            }
        }
        // Machine-scoped squeezes, one event per distinct machine (the
        // `msg_index == machine` marker lets `FaultPlan::from_events`
        // rebuild the scope).
        let mut squeezed: Vec<usize> = plan
            .scheduled
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Squeeze {
                    from_round,
                    machine: Some(m),
                    ..
                } if *from_round <= round => Some(*m),
                _ => None,
            })
            .collect();
        squeezed.sort_unstable();
        squeezed.dedup();
        for m in squeezed {
            let value = plan
                .scheduled
                .iter()
                .filter_map(|s| match s {
                    FaultSpec::Squeeze {
                        from_round,
                        capacity_words,
                        machine: Some(mm),
                    } if *from_round <= round && *mm == m => Some(*capacity_words),
                    _ => None,
                })
                .min()
                .expect("machine collected from a matching spec");
            events.push(FaultEvent {
                round,
                attempt: 0,
                kind: FaultKind::Squeeze,
                machine: m,
                msg_index: m,
                value: value as u64,
            });
        }
        for ev in events {
            self.record_fault(ev);
        }
    }

    /// Appends an injected fault to the log and the active trace.
    fn record_fault(&mut self, ev: FaultEvent) {
        if treeemb_obs::enabled() {
            let name = match ev.kind {
                FaultKind::Straggle => "fault.straggle",
                FaultKind::Drop => "fault.drop",
                FaultKind::Duplicate => "fault.duplicate",
                FaultKind::Unavailable => "fault.unavailable",
                FaultKind::Backoff => "fault.backoff",
                FaultKind::Squeeze => "fault.squeeze",
                FaultKind::Crash => "fault.crash",
                FaultKind::Recover => "recover.ok",
            };
            treeemb_obs::mark(
                name,
                &[
                    ("round", ev.round as u64),
                    ("attempt", ev.attempt as u64),
                    ("machine", ev.machine as u64),
                    (
                        "msg_index",
                        if ev.msg_index == usize::MAX {
                            0
                        } else {
                            ev.msg_index as u64
                        },
                    ),
                    ("value", ev.value),
                ],
            );
        }
        if let Some(f) = &mut self.faults {
            f.log.push(ev);
        }
    }

    /// Loads host data onto the cluster, filling machines greedily in
    /// word units. Mirrors the MPC convention that the input arrives
    /// pre-distributed; it does not count as a round.
    ///
    /// Fails if a single record exceeds every machine's capacity or the
    /// cluster's remaining space cannot hold the input.
    pub fn distribute<T: Words + Send>(&mut self, items: Vec<T>) -> MpcResult<Dist<T>> {
        let mut sp = treeemb_obs::span!("mpc.distribute", "items" = items.len());
        self.note_squeeze();
        let caps = self.capacities();
        let max_cap = caps.iter().copied().max().unwrap_or(0);
        let m = self.num_machines();
        let mut parts: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
        let mut machine = 0usize;
        let mut used = 0usize;
        for item in items {
            let w = item.words();
            if w > max_cap {
                return Err(MpcError::CapacityExceeded {
                    machine,
                    round: self.metrics.rounds(),
                    phase: CapacityPhase::Input,
                    words: w,
                    capacity: max_cap,
                    label: "distribute".into(),
                });
            }
            // Greedy fill; a record that does not fit the current
            // machine moves to the next (skipping machines it exceeds
            // outright, which only happens on heterogeneous clusters).
            while machine < m && used + w > caps[machine] {
                machine += 1;
                used = 0;
            }
            if machine >= m {
                return Err(MpcError::CapacityExceeded {
                    machine: m - 1,
                    round: self.metrics.rounds(),
                    phase: CapacityPhase::Input,
                    words: caps[m - 1] + w,
                    capacity: caps[m - 1],
                    label: "distribute (cluster full)".into(),
                });
            }
            used += w;
            parts[machine].push(item);
        }
        let dist = Dist::from_parts(parts);
        self.metrics.record_total_resident(dist.total_words());
        sp.arg("total_words", dist.total_words() as u64);
        Ok(dist)
    }

    /// Executes one communication round.
    ///
    /// Each machine `i` runs `f(i, local_shard, emitter)` concurrently,
    /// returning the records it *keeps*; records passed to
    /// [`Emitter::send`] are routed to their destinations. A machine's
    /// shard in the output collection is its kept records followed by
    /// received records in source-machine order (deterministic).
    ///
    /// Capacity checks (strict mode), per machine against its effective
    /// capacity: input ≤ s, sent ≤ s, received ≤ s, kept + received ≤ s.
    ///
    /// **Crash recovery.** When the checkpoint policy is active (see
    /// [`CheckpointPolicy`]) the round's input is snapshotted before
    /// execution, word-metered against total space. A machine that
    /// crashes (loses its shard; [`FaultSpec::Crash`] or the plan's
    /// crash rate) is re-executed from the snapshot — determinism makes
    /// the replay bit-identical — up to the plan's `max_recoveries`
    /// budget; each restore is logged as a [`FaultKind::Recover`] event
    /// and counted in [`RoundStats::recoveries`]. A machine that crashes
    /// through the whole budget fails the round with the typed,
    /// retryable [`MpcError::RecoveryExhausted`].
    pub fn round<T, U, F>(&mut self, label: &str, input: Dist<T>, f: F) -> MpcResult<Dist<U>>
    where
        T: Words + Send + Clone,
        U: Words + Send,
        F: Fn(MachineId, Vec<T>, &mut Emitter<U>) -> Vec<U> + Sync,
    {
        let m = self.num_machines();
        assert_eq!(
            input.num_machines(),
            m,
            "collection spans a different cluster"
        );
        let round_idx = self.metrics.rounds();
        let strict = self.cfg.strict;
        let mut violations = 0usize;
        let t_start_ns = treeemb_obs::now_ns();
        let mut sp = treeemb_obs::Span::enter_with(|| format!("mpc.round:{label}"));
        sp.arg("round", round_idx as u64);

        // Fault injection: a small cloned snapshot of the plan lets the
        // borrow of `self` stay free for event recording; the clone only
        // happens when a plan is attached.
        let plan: Option<FaultPlan> = self.faults.as_ref().map(|f| f.plan.clone());
        let log_mark = self.faults.as_ref().map_or(0, |f| f.log.len());
        self.note_squeeze();
        let caps = self.capacities();
        let straggle: Vec<u64> = match &plan {
            Some(p) => (0..m).map(|i| p.straggle_ns(round_idx, i)).collect(),
            None => Vec::new(),
        };
        for (machine, &delay_ns) in straggle.iter().enumerate() {
            if delay_ns > 0 {
                self.record_fault(FaultEvent {
                    round: round_idx,
                    attempt: 0,
                    kind: FaultKind::Straggle,
                    machine,
                    msg_index: usize::MAX,
                    value: delay_ns,
                });
            }
        }

        // Phase 1: input capacity check.
        let mut worst_input: Option<(usize, usize)> = None;
        for (i, p) in input.parts().iter().enumerate() {
            let w = words::of_slice(p);
            if w > caps[i] && worst_input.is_none_or(|(_, ww)| w > ww) {
                worst_input = Some((i, w));
            }
        }
        if let Some((i, w)) = worst_input {
            if strict {
                return Err(MpcError::CapacityExceeded {
                    machine: i,
                    round: round_idx,
                    phase: CapacityPhase::Input,
                    words: w,
                    capacity: caps[i],
                    label: label.into(),
                });
            }
            violations += 1;
        }

        // Phase 1b: checkpoint + crash planning. With checkpointing
        // active the round input is (conceptually) snapshotted in full
        // and metered against total space; only crashed machines'
        // shards are actually cloned below. Crash decisions are pure
        // functions of the plan, so the whole recovery schedule can be
        // resolved up front: machine `i` crashes on executions
        // `0..crashes[i]` and completes on execution `crashes[i]`.
        let checkpoint_active = match self.checkpoint {
            CheckpointPolicy::Disabled => false,
            CheckpointPolicy::Always => true,
            CheckpointPolicy::Auto => plan.as_ref().is_some_and(|p| p.can_crash()),
        };
        let checkpoint_words = if checkpoint_active {
            input.total_words()
        } else {
            0
        };
        let mut crashes: Vec<u32> = vec![0; m];
        if let Some(p) = plan.as_ref().filter(|p| p.can_crash()) {
            for (machine, crash_count) in crashes.iter_mut().enumerate() {
                let mut k = 0u32;
                while k <= p.max_recoveries && p.crashed(round_idx, k, machine) {
                    k += 1;
                }
                if k == 0 {
                    continue;
                }
                // Without a checkpoint there is nothing to re-execute
                // from: the first crash is final.
                let crashed_execs = if checkpoint_active { k } else { 1 };
                for attempt in 0..crashed_execs {
                    self.record_fault(FaultEvent {
                        round: round_idx,
                        attempt,
                        kind: FaultKind::Crash,
                        machine,
                        msg_index: usize::MAX,
                        value: 0,
                    });
                }
                if !checkpoint_active || k > p.max_recoveries {
                    if treeemb_obs::enabled() {
                        treeemb_obs::mark(
                            "recover.exhausted",
                            &[
                                ("round", round_idx as u64),
                                ("machine", machine as u64),
                                ("attempts", crashed_execs as u64),
                            ],
                        );
                    }
                    return Err(MpcError::RecoveryExhausted {
                        round: round_idx,
                        label: label.into(),
                        machine,
                        attempts: crashed_execs,
                    });
                }
                self.record_fault(FaultEvent {
                    round: round_idx,
                    attempt: k,
                    kind: FaultKind::Recover,
                    machine,
                    msg_index: usize::MAX,
                    value: words::of_slice(input.part(machine)) as u64,
                });
                *crash_count = k;
            }
        }
        let recoveries: u32 = crashes.iter().sum();

        // Phase 2: run machines concurrently. A crashed machine really
        // executes `f` once per lost attempt (the work is discarded,
        // modeling lost compute) and once more from the checkpoint
        // snapshot for its surviving output.
        struct MachineOut<U> {
            kept: Vec<U>,
            msgs: Vec<(MachineId, U)>,
            out_words: usize,
        }
        let straggle_ref = &straggle;
        let crashes_ref = &crashes;
        let work: Vec<(Vec<T>, Option<Vec<T>>)> = input
            .into_parts()
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let snap = (crashes_ref[i] > 0).then(|| shard.clone());
                (shard, snap)
            })
            .collect();
        let outputs: Vec<MachineOut<U>> =
            exec::par_map_indexed(work, self.cfg.threads, |i, (shard, snap)| {
                if let Some(&delay_ns) = straggle_ref.get(i) {
                    if delay_ns > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(delay_ns));
                    }
                }
                let k = crashes_ref[i];
                if k == 0 {
                    let mut em = Emitter::new();
                    let kept = f(i, shard, &mut em);
                    return MachineOut {
                        kept,
                        msgs: em.msgs,
                        out_words: em.out_words,
                    };
                }
                let snap = snap.expect("snapshot exists for crashed machines");
                {
                    let mut scratch = Emitter::new();
                    let _ = f(i, shard, &mut scratch);
                }
                for _ in 1..k {
                    let mut scratch = Emitter::new();
                    let _ = f(i, snap.clone(), &mut scratch);
                }
                let mut em = Emitter::new();
                let kept = f(i, snap, &mut em);
                MachineOut {
                    kept,
                    msgs: em.msgs,
                    out_words: em.out_words,
                }
            });

        // Phase 2b: the exchange attempt loop. Transient faults (machine
        // unavailability, message drop/duplication) are detected by the
        // simulated exchange protocol and the whole exchange retries with
        // simulated backoff, re-transmitting from the already-computed
        // machine outputs. A clean attempt therefore delivers exactly the
        // fault-free message sequence — downstream state is bit-identical
        // — and exhausting the retry budget surfaces as the typed
        // `RetriesExhausted`, never as silently corrupted output.
        let mut attempts = 1u32;
        if let Some(p) = plan.as_ref().filter(|p| !p.is_empty()) {
            let max_attempts = p.max_retries.saturating_add(1);
            let mut attempt = 0u32;
            loop {
                let mut events: Vec<FaultEvent> = Vec::new();
                for machine in 0..m {
                    if p.unavailable(round_idx, attempt, machine) {
                        events.push(FaultEvent {
                            round: round_idx,
                            attempt,
                            kind: FaultKind::Unavailable,
                            machine,
                            msg_index: usize::MAX,
                            value: 0,
                        });
                    }
                }
                if events.is_empty() {
                    // All machines up: scan the exchange for message
                    // faults, in (source, emission index) order.
                    for (src, out) in outputs.iter().enumerate() {
                        for idx in 0..out.msgs.len() {
                            if let Some(kind) = p.msg_fault(round_idx, attempt, src, idx) {
                                events.push(FaultEvent {
                                    round: round_idx,
                                    attempt,
                                    kind,
                                    machine: src,
                                    msg_index: idx,
                                    value: 0,
                                });
                            }
                        }
                    }
                }
                if events.is_empty() {
                    attempts = attempt + 1;
                    break;
                }
                for ev in events {
                    self.record_fault(ev);
                }
                if attempt + 1 >= max_attempts {
                    sp.arg("attempts", max_attempts as u64);
                    return Err(MpcError::RetriesExhausted {
                        round: round_idx,
                        label: label.into(),
                        attempts: max_attempts,
                    });
                }
                self.record_fault(FaultEvent {
                    round: round_idx,
                    attempt,
                    kind: FaultKind::Backoff,
                    machine: 0,
                    msg_index: usize::MAX,
                    value: p.backoff_for(attempt + 1),
                });
                attempt += 1;
            }
        }

        // Phase 3: validate sends and route messages.
        let mut sent_total = 0usize;
        let mut max_out = 0usize;
        let mut parts: Vec<Vec<U>> = Vec::with_capacity(m);
        let mut in_words = vec![0usize; m];
        let mut routed: Vec<Vec<(MachineId, U)>> = Vec::with_capacity(m);
        for (src, out) in outputs.iter().enumerate() {
            if out.out_words > caps[src] {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: src,
                        round: round_idx,
                        phase: CapacityPhase::Send,
                        words: out.out_words,
                        capacity: caps[src],
                        label: label.into(),
                    });
                }
                violations += 1;
            }
            sent_total += out.out_words;
            max_out = max_out.max(out.out_words);
            for (dest, rec) in &out.msgs {
                if *dest >= m {
                    return Err(MpcError::BadDestination {
                        source: src,
                        dest: *dest,
                        num_machines: m,
                    });
                }
                in_words[*dest] += rec.words();
            }
        }
        let max_in = in_words.iter().copied().max().unwrap_or(0);
        for (dest, &w) in in_words.iter().enumerate() {
            if w > caps[dest] {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: dest,
                        round: round_idx,
                        phase: CapacityPhase::Receive,
                        words: w,
                        capacity: caps[dest],
                        label: label.into(),
                    });
                }
                violations += 1;
            }
        }
        for _ in 0..m {
            routed.push(Vec::new());
        }
        // Deliver kept records first, then messages in source order.
        let mut kept_words = vec![0usize; m];
        let mut outputs = outputs;
        for (i, out) in outputs.iter().enumerate() {
            kept_words[i] = words::of_slice(&out.kept);
        }
        for (src, out) in outputs.iter_mut().enumerate() {
            for (dest, rec) in out.msgs.drain(..) {
                routed[dest].push((src, rec));
            }
        }
        let mut max_resident = 0usize;
        for (i, out) in outputs.into_iter().enumerate() {
            let mut shard = out.kept;
            // Messages were appended in source order already because we
            // iterate sources in ascending order above.
            shard.extend(routed[i].drain(..).map(|(_, rec)| rec));
            let resident = kept_words[i] + in_words[i] + self.overlay_words;
            max_resident = max_resident.max(resident);
            if resident > caps[i] {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: i,
                        round: round_idx,
                        phase: CapacityPhase::Residency,
                        words: resident,
                        capacity: caps[i],
                        label: label.into(),
                    });
                }
                violations += 1;
            }
            parts.push(shard);
        }

        sp.arg("sent_words", sent_total as u64);
        sp.arg("max_out_words", max_out as u64);
        sp.arg("max_in_words", max_in as u64);
        sp.arg("max_resident_words", max_resident as u64);
        if recoveries > 0 {
            sp.arg("recoveries", recoveries as u64);
        }
        self.metrics.record_round(RoundStats {
            round: round_idx,
            label: label.into(),
            sent_words: sent_total,
            max_out_words: max_out,
            max_in_words: max_in,
            max_resident_words: max_resident,
            violations,
            t_start_ns,
            t_end_ns: treeemb_obs::now_ns(),
            attempts,
            faults: self.faults.as_ref().map_or(0, |f| f.log.len() - log_mark),
            recoveries,
            checkpoint_words,
        });
        let dist = Dist::from_parts(parts);
        // The checkpoint coexists with the round's live data until the
        // round commits, so it counts against total space.
        self.metrics
            .record_total_resident(dist.total_words() + checkpoint_words + self.overlay_words * m);
        Ok(dist)
    }

    /// Machine-local transformation with **no communication**. Does not
    /// advance the round counter: in the MPC model, local computation
    /// fuses into the surrounding communication rounds. Output residency
    /// is still metered and capacity-checked.
    pub fn map_local<T, U, F>(&mut self, input: Dist<T>, f: F) -> MpcResult<Dist<U>>
    where
        T: Words + Send,
        U: Words + Send,
        F: Fn(MachineId, Vec<T>) -> Vec<U> + Sync,
    {
        let mut sp = treeemb_obs::span!("mpc.map_local", "items" = input.total_len());
        self.note_squeeze();
        let caps = self.capacities();
        let parts = exec::par_map_indexed(input.into_parts(), self.cfg.threads, f);
        let dist = Dist::from_parts(parts);
        sp.arg("out_words", dist.total_words() as u64);
        if self.cfg.strict {
            for (i, p) in dist.parts().iter().enumerate() {
                let w = words::of_slice(p);
                if w > caps[i] {
                    return Err(MpcError::CapacityExceeded {
                        machine: i,
                        round: self.metrics.rounds(),
                        phase: CapacityPhase::Residency,
                        words: w,
                        capacity: caps[i],
                        label: "map_local".into(),
                    });
                }
            }
        }
        self.metrics.record_total_resident(dist.total_words());
        Ok(dist)
    }

    /// Pins `words` of per-machine overlay residency (replicated payloads
    /// such as broadcast grids). Charged in every later round's capacity
    /// check and in the total-space meter.
    pub fn metrics_record_replicated(&mut self, words: usize) {
        self.overlay_words += words;
        self.metrics.bump_peak_machine(self.overlay_words);
        self.metrics
            .record_total_resident(self.overlay_words * self.cfg.num_machines);
    }

    /// Records an *accounted* round: a communication round whose loads
    /// are known analytically, without materializing the data. Used by
    /// collectives that would otherwise replicate identical payloads
    /// across every simulated machine (e.g. grid broadcasts), where
    /// materialization adds memory pressure but no fidelity — the round
    /// count, load metering, and capacity checks are identical. Loads
    /// are checked against the cluster-minimum capacity (conservative on
    /// heterogeneous clusters: the stated loads are per-machine maxima).
    ///
    /// Fails (strict mode) if any stated load exceeds capacity.
    pub fn record_accounted_round(
        &mut self,
        label: &str,
        sent_words: usize,
        max_out_words: usize,
        max_in_words: usize,
        max_resident_words: usize,
    ) -> MpcResult<()> {
        self.note_squeeze();
        let cap = self.capacity();
        let round = self.metrics.rounds();
        let mut violations = 0usize;
        for (phase, words) in [
            (CapacityPhase::Send, max_out_words),
            (CapacityPhase::Receive, max_in_words),
            (CapacityPhase::Residency, max_resident_words),
        ] {
            if words > cap {
                if self.cfg.strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: 0,
                        round,
                        phase,
                        words,
                        capacity: cap,
                        label: label.into(),
                    });
                }
                violations += 1;
            }
        }
        if treeemb_obs::enabled() {
            treeemb_obs::mark(
                format!("mpc.round:{label} (accounted)"),
                &[
                    ("round", round as u64),
                    ("sent_words", sent_words as u64),
                    ("max_out_words", max_out_words as u64),
                    ("max_resident_words", max_resident_words as u64),
                ],
            );
        }
        let now = treeemb_obs::now_ns();
        self.metrics.record_round(RoundStats {
            round,
            label: label.into(),
            sent_words,
            max_out_words,
            max_in_words,
            max_resident_words,
            violations,
            t_start_ns: now,
            t_end_ns: now,
            attempts: 1,
            faults: 0,
            recoveries: 0,
            checkpoint_words: 0,
        });
        Ok(())
    }

    /// Extracts a distributed collection to the host in machine order.
    /// This models reading off the final output and is not an MPC round.
    pub fn gather<T>(&mut self, input: Dist<T>) -> Vec<T> {
        let _sp = treeemb_obs::span!("mpc.gather", "items" = input.total_len());
        let mut out = Vec::with_capacity(input.total_len());
        for part in input.into_parts() {
            out.extend(part);
        }
        out
    }
}

/// SplitMix64 — the stateless mixer used to derive per-machine and
/// per-index random streams from a shared broadcast seed.
#[inline]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rt(cap: usize, machines: usize) -> Runtime {
        Runtime::builder()
            .input_words(64)
            .capacity_words(cap)
            .machines(machines)
            .threads(4)
            .build()
    }

    #[test]
    fn distribute_packs_by_words() {
        let mut rt = small_rt(4, 8);
        let dist = rt.distribute((0..10u64).collect()).unwrap();
        assert_eq!(dist.total_len(), 10);
        for p in dist.parts() {
            assert!(p.len() <= 4);
        }
        // Greedy fill: machine 0 holds records 0..4.
        assert_eq!(dist.part(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn distribute_fails_when_cluster_full() {
        let mut rt = small_rt(4, 2);
        let err = rt.distribute((0..100u64).collect()).unwrap_err();
        assert!(matches!(err, MpcError::CapacityExceeded { .. }));
    }

    #[test]
    fn distribute_respects_heterogeneous_capacities() {
        let mut rt = Runtime::builder()
            .capacity_words(8)
            .machines(3)
            .machine_capacity(0, 2)
            .threads(2)
            .build();
        let dist = rt.distribute((0..12u64).collect()).unwrap();
        assert_eq!(dist.part(0).len(), 2, "machine 0 holds only 2 words");
        assert_eq!(dist.part(1).len(), 8);
        assert_eq!(dist.part(2).len(), 2);
    }

    #[test]
    fn round_routes_messages_deterministically() {
        let mut rt = small_rt(64, 4);
        let dist = rt.distribute((0..16u64).collect()).unwrap();
        // Send every record to machine (value % 4); keep nothing.
        let out = rt
            .round("route", dist, |_, shard, em| {
                for v in shard {
                    em.send((v % 4) as usize, v);
                }
                Vec::new()
            })
            .unwrap();
        for m in 0..4 {
            let vals = out.part(m);
            assert!(vals.iter().all(|v| (*v % 4) as usize == m));
            // Source-order delivery keeps values ascending here.
            let mut sorted = vals.to_vec();
            sorted.sort_unstable();
            assert_eq!(vals, &sorted[..]);
        }
        assert_eq!(rt.metrics().rounds(), 1);
        assert_eq!(rt.metrics().total_sent_words(), 16);
    }

    #[test]
    fn round_keep_retains_local_data() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute(vec![1u64, 2, 3]).unwrap();
        let out = rt
            .round("keep", dist, |_, shard, _em: &mut Emitter<u64>| shard)
            .unwrap();
        assert_eq!(out.total_len(), 3);
        assert_eq!(rt.metrics().total_sent_words(), 0);
    }

    #[test]
    fn send_capacity_violation_is_strict_error() {
        let mut rt = small_rt(4, 4);
        let dist = rt.distribute(vec![0u64]).unwrap();
        let err = rt
            .round("flood", dist, |id, shard, em| {
                if id == 0 {
                    for i in 0..100u64 {
                        em.send(1, i);
                    }
                }
                shard
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                MpcError::CapacityExceeded {
                    phase: CapacityPhase::Send,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn receive_overflow_detected() {
        let mut rt = small_rt(8, 4);
        let dist = rt.distribute((0..24u64).collect()).unwrap();
        // All machines flood machine 0: each sends <= 8 (ok) but machine 0
        // receives 24 > 8.
        let err = rt
            .round("hotspot", dist, |_, shard, em| {
                for v in shard {
                    em.send(0, v);
                }
                Vec::new()
            })
            .unwrap_err();
        match err {
            MpcError::CapacityExceeded { machine, phase, .. } => {
                assert_eq!(machine, 0);
                assert!(phase == CapacityPhase::Receive || phase == CapacityPhase::Residency);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn hetero_round_checks_each_machine_against_its_own_capacity() {
        // Machine 1 has a quarter of the default capacity; routing more
        // than that to it must fail even though the cluster default
        // would allow it.
        let mut rt = Runtime::builder()
            .capacity_words(32)
            .machines(2)
            .machine_capacity(1, 4)
            .threads(2)
            .build();
        let dist = rt.distribute((0..8u64).collect()).unwrap();
        let err = rt
            .round("overflow-small", dist, |_, shard, em| {
                for v in shard {
                    em.send(1, v);
                }
                Vec::new()
            })
            .unwrap_err();
        assert!(
            matches!(err, MpcError::CapacityExceeded { machine: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn lenient_mode_meters_instead_of_failing() {
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(8)
            .machines(4)
            .lenient()
            .build();
        let dist = rt.distribute((0..24u64).collect()).unwrap();
        let out = rt
            .round("hotspot", dist, |_, shard, em| {
                for v in shard {
                    em.send(0, v);
                }
                Vec::new()
            })
            .unwrap();
        assert_eq!(out.part(0).len(), 24);
        assert!(rt.metrics().violations() > 0);
    }

    #[test]
    fn bad_destination_is_an_error_even_lenient() {
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(8)
            .machines(2)
            .lenient()
            .build();
        let dist = rt.distribute(vec![1u64]).unwrap();
        let err = rt
            .round("oops", dist, |_, shard, em| {
                em.send(99, 1u64);
                shard
            })
            .unwrap_err();
        assert!(matches!(err, MpcError::BadDestination { dest: 99, .. }));
    }

    #[test]
    fn map_local_does_not_count_rounds() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute(vec![1u64, 2, 3]).unwrap();
        let doubled = rt
            .map_local(dist, |_, shard| {
                shard.into_iter().map(|x| x * 2).collect::<Vec<u64>>()
            })
            .unwrap();
        assert_eq!(rt.metrics().rounds(), 0);
        assert_eq!(rt.gather(doubled), vec![2, 4, 6]);
    }

    #[test]
    fn metrics_track_peak_residency() {
        let mut rt = small_rt(64, 2);
        let dist = rt.distribute((0..32u64).collect()).unwrap();
        let _ = rt
            .round("concentrate", dist, |_, shard, em| {
                for v in shard {
                    em.send(1, v);
                }
                Vec::new()
            })
            .unwrap();
        assert_eq!(rt.metrics().peak_machine_words(), 32);
    }

    fn route_round(rt: &mut Runtime, values: Vec<u64>) -> MpcResult<Vec<u64>> {
        let m = rt.num_machines() as u64;
        let dist = rt.distribute(values)?;
        let out = rt.round("route", dist, move |_, shard, em| {
            for v in shard {
                em.send((v % m) as usize, v.wrapping_mul(3));
            }
            Vec::new()
        })?;
        Ok(rt.gather(out))
    }

    #[test]
    fn crashed_machine_recovers_bit_identical() {
        let values: Vec<u64> = (0..16).collect();
        let mut clean = small_rt(64, 4);
        let expected = route_round(&mut clean, values.clone()).unwrap();

        // Machine 0 holds the whole greedily-packed input, so its crash
        // loses real data.
        let plan = FaultPlan::new(9).with_fault(FaultSpec::Crash {
            round: 0,
            attempt: 0,
            machine: 0,
        });
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(64)
            .machines(4)
            .threads(4)
            .fault_plan(plan)
            .build();
        let got = route_round(&mut rt, values).unwrap();
        assert_eq!(got, expected, "recovery must replay bit-identically");
        let stats = &rt.metrics().round_stats()[0];
        assert_eq!(stats.recoveries, 1);
        assert!(
            stats.checkpoint_words > 0,
            "Auto policy checkpoints when the plan can crash"
        );
        assert_eq!(rt.metrics().recoveries(), 1);
        assert!(rt.metrics().peak_checkpoint_words() > 0);
        let kinds: Vec<FaultKind> = rt.fault_log().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::Crash));
        assert!(kinds.contains(&FaultKind::Recover));
        let recover = rt
            .fault_log()
            .iter()
            .find(|e| e.kind == FaultKind::Recover)
            .unwrap();
        assert_eq!(recover.machine, 0);
        assert_eq!(recover.attempt, 1, "restored on the first re-execution");
        assert!(recover.value > 0, "recover event carries restored words");
    }

    #[test]
    fn recovery_exhaustion_is_a_typed_retryable_error() {
        // Crash machine 2 on the initial run and both permitted
        // re-executions: the budget (max_recoveries = 2) is exhausted.
        let mut plan = FaultPlan::new(1).with_max_recoveries(2);
        for attempt in 0..3 {
            plan = plan.with_fault(FaultSpec::Crash {
                round: 0,
                attempt,
                machine: 2,
            });
        }
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(64)
            .machines(4)
            .threads(2)
            .fault_plan(plan)
            .build();
        let err = route_round(&mut rt, (0..16).collect()).unwrap_err();
        match &err {
            MpcError::RecoveryExhausted {
                round,
                machine,
                attempts,
                ..
            } => {
                assert_eq!(*round, 0);
                assert_eq!(*machine, 2);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected RecoveryExhausted, got {other}"),
        }
        assert!(err.is_retryable());
        assert_eq!(
            rt.fault_log()
                .iter()
                .filter(|e| e.kind == FaultKind::Crash)
                .count(),
            3
        );
    }

    #[test]
    fn disabled_checkpointing_makes_any_crash_fatal() {
        let plan = FaultPlan::new(5).with_fault(FaultSpec::Crash {
            round: 0,
            attempt: 0,
            machine: 0,
        });
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(64)
            .machines(2)
            .threads(2)
            .fault_plan(plan)
            .checkpoint(CheckpointPolicy::Disabled)
            .build();
        let err = route_round(&mut rt, (0..8).collect()).unwrap_err();
        assert!(
            matches!(err, MpcError::RecoveryExhausted { attempts: 1, .. }),
            "{err}"
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn always_checkpointing_meters_even_without_faults() {
        let mut rt = Runtime::builder()
            .input_words(64)
            .capacity_words(64)
            .machines(2)
            .threads(2)
            .checkpoint(CheckpointPolicy::Always)
            .build();
        let _ = route_round(&mut rt, (0..8).collect()).unwrap();
        let stats = &rt.metrics().round_stats()[0];
        assert_eq!(stats.checkpoint_words, 8);
        assert_eq!(stats.recoveries, 0);
    }

    #[test]
    fn mix_seed_is_deterministic_and_spreads() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 1));
        assert_ne!(mix_seed(0, 0), 0);
    }
}
