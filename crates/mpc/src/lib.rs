//! A simulated **Massively Parallel Computation (MPC)** runtime.
//!
//! The paper targets the MPC model of Karloff–Suri–Vassilvitskii /
//! Beame–Koutris–Suciu in its most restrictive, *fully scalable* form:
//! the input occupies `N = n·d` machine words, each machine holds
//! `s = O(N^ε)` words of local memory for an arbitrary constant
//! `ε ∈ (0,1)`, computation proceeds in synchronous rounds, and in each
//! round a machine may send and receive at most `s` words. Algorithm
//! quality is measured by (rounds, local space, total space).
//!
//! No public MPC dataflow engine exists for Rust, so this crate *is* the
//! substrate (see DESIGN.md): it simulates a cluster faithfully enough
//! that the paper's complexity claims become checkable assertions:
//!
//! * **capacity enforcement** — every round checks each machine's input,
//!   kept, sent, and received word counts against `s` and fails the
//!   computation (it does not silently spill) on overflow;
//! * **round metering** — every communication round increments a counter
//!   and records per-round load statistics ([`metrics::Metrics`]);
//! * **parallel execution** — machines within a round run concurrently on
//!   a persistent chunked-cursor worker pool ([`exec`]), with
//!   deterministic message delivery order (by source machine id).
//!
//! On top of the raw [`cluster::Runtime::round`] primitive, the
//! [`primitives`] module provides the classic O(1)-round building blocks
//! the paper's algorithms assume: broadcast trees, sample-sort,
//! aggregation trees, hash shuffles, and distributed deduplication.
//!
//! ```
//! use treeemb_mpc::cluster::Runtime;
//!
//! let mut rt = Runtime::builder()
//!     .input_words(1 << 16)
//!     .capacity_words(4096)
//!     .machines(16)
//!     .threads(2)
//!     .build();
//! let data: Vec<u64> = (0..1000).collect();
//! let dist = rt.distribute(data).unwrap();
//! let sorted = treeemb_mpc::primitives::sort::sort_by_key(&mut rt, dist, |x| *x).unwrap();
//! assert!(rt.metrics().rounds() <= 8);
//! assert_eq!(rt.gather(sorted), (0..1000).collect::<Vec<u64>>());
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod exec;
pub mod fault;
pub mod metrics;
pub mod primitives;
pub(crate) mod sync;
pub mod words;

pub use cluster::{Dist, Emitter, MachineId, Runtime};
pub use config::{from_env, CheckpointPolicy, EnvOverrides, MpcConfig, RuntimeBuilder};
pub use error::{MpcError, MpcResult};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, FaultSpec};
pub use words::Words;
