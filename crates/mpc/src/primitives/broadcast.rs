//! Broadcast tree: replicate a payload from machine 0 to every machine.

use crate::cluster::{Dist, Runtime};
use crate::error::{MpcError, MpcResult};
use crate::words;
use crate::words::Words;

/// Replicates `payload` (initially resident on machine 0) to every
/// machine, returning a collection in which every shard equals the
/// payload.
///
/// Uses a fanout-`f` forwarding tree where `f = max(1, s / |payload|)`,
/// hence `⌈log_{f+1} M⌉` rounds — `O(1/ε)` when the payload fits in a
/// constant fraction of local memory, exactly the regime of Algorithm 2
/// (grids broadcast, Lemma 8).
pub fn broadcast<T>(rt: &mut Runtime, payload: Vec<T>) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
{
    let _sp = treeemb_obs::span!("mpc.broadcast", "payload_words" = words::of_slice(&payload));
    let m = rt.num_machines();
    let payload_words = words::of_slice(&payload);
    if payload_words > rt.capacity() {
        return Err(MpcError::AlgorithmFailure(format!(
            "broadcast payload of {payload_words} words exceeds local capacity {}",
            rt.capacity()
        )));
    }
    // Copies a holder can emit per round without breaching its send cap.
    let fanout = (rt.capacity() / payload_words.max(1)).max(1);
    let mut dist = Dist::empty(m);
    let parts = dist.parts().len();
    debug_assert_eq!(parts, m);
    let mut parts_vec = dist.into_parts();
    parts_vec[0] = payload;
    dist = Dist::from_parts(parts_vec);

    let mut holders = 1usize;
    let mut step = 0usize;
    while holders < m {
        let new_total = (holders + holders * fanout).min(m);
        let label = format!("broadcast:step{step}");
        let h = holders;
        dist = rt.round(&label, dist, move |id, shard, em| {
            if id >= h || shard.is_empty() {
                return shard;
            }
            // Holder `id` feeds targets h + id*fanout .. h + (id+1)*fanout.
            let first = h + id * fanout;
            let last = (first + fanout).min(new_total);
            for t in first..last {
                for rec in &shard {
                    em.send(t, rec.clone());
                }
            }
            shard
        })?;
        holders = new_total;
        step += 1;
    }
    Ok(dist)
}

/// Accounted broadcast: meters the exact rounds and loads of
/// [`broadcast`]ing a `payload_words`-word payload from machine 0 to
/// every machine, **without materializing** the `M` copies. The data is
/// assumed available to machines through shared state (in this
/// simulation, an `Arc`); the metering and capacity checks are what the
/// MPC cost model requires.
///
/// Also records the replicated payload in the total-space meter
/// (`M × payload_words` resident words after the broadcast).
pub fn broadcast_accounted(rt: &mut Runtime, payload_words: usize) -> MpcResult<()> {
    let _sp = treeemb_obs::span!("mpc.broadcast_accounted", "payload_words" = payload_words);
    let m = rt.num_machines();
    if payload_words > rt.capacity() {
        return Err(MpcError::AlgorithmFailure(format!(
            "broadcast payload of {payload_words} words exceeds local capacity {}",
            rt.capacity()
        )));
    }
    let fanout = (rt.capacity() / payload_words.max(1)).max(1);
    let mut holders = 1usize;
    let mut step = 0usize;
    while holders < m {
        let new_total = (holders + holders * fanout).min(m);
        let copies = new_total - holders;
        let max_out = fanout.min(copies) * payload_words;
        rt.record_accounted_round(
            &format!("broadcast:step{step}"),
            copies * payload_words,
            max_out,
            payload_words,
            payload_words,
        )?;
        holders = new_total;
        step += 1;
    }
    rt.metrics_record_replicated(payload_words);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    #[test]
    fn all_machines_receive_payload() {
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(64, 32, 9).with_threads(4))
            .build();
        let out = broadcast(&mut rt, vec![10u64, 20, 30]).unwrap();
        for i in 0..9 {
            assert_eq!(out.part(i), &[10, 20, 30], "machine {i}");
        }
    }

    #[test]
    fn round_count_is_logarithmic_in_machines() {
        // capacity 8, payload 4 words -> fanout 2 -> 3^k growth.
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(64, 8, 81).with_threads(4))
            .build();
        broadcast(&mut rt, vec![1u64, 2, 3, 4]).unwrap();
        assert_eq!(
            rt.metrics().rounds(),
            4,
            "81 machines at fanout 2 is 4 steps"
        );
    }

    #[test]
    fn single_machine_needs_no_rounds() {
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(64, 32, 1))
            .build();
        let out = broadcast(&mut rt, vec![5u64]).unwrap();
        assert_eq!(out.part(0), &[5]);
        assert_eq!(rt.metrics().rounds(), 0);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(64, 4, 4))
            .build();
        let err = broadcast(&mut rt, (0..10u64).collect()).unwrap_err();
        assert!(matches!(err, MpcError::AlgorithmFailure(_)));
    }

    #[test]
    fn never_violates_capacity() {
        for machines in [2usize, 5, 17, 64] {
            let mut rt = Runtime::builder()
                .config(MpcConfig::explicit(64, 16, machines).with_threads(4))
                .build();
            let out = broadcast(&mut rt, vec![1u64, 2, 3, 4, 5]).unwrap();
            assert_eq!(out.part(machines - 1), &[1, 2, 3, 4, 5]);
            assert_eq!(rt.metrics().violations(), 0);
        }
    }
}
