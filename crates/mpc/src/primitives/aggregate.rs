//! Aggregation trees: global reductions in O(log_f M) = O(1/ε) rounds.

use crate::cluster::{Dist, Runtime};
use crate::error::MpcResult;
use crate::words::Words;

/// Reduces every machine's shard to a single value with `local`, then
/// combines the per-machine partials up a fanout-`f` aggregation tree
/// with `combine`. The final value lands on machine 0 and is returned to
/// the host.
///
/// Returns `None` for an empty cluster-wide collection.
pub fn reduce<T, A, L, C>(
    rt: &mut Runtime,
    input: Dist<T>,
    local: L,
    combine: C,
) -> MpcResult<Option<A>>
where
    T: Words + Send + Sync + Clone,
    A: Words + Send + Sync + Clone,
    L: Fn(&[T]) -> Option<A> + Sync,
    C: Fn(A, A) -> A + Sync + Send + Copy,
{
    let _sp = treeemb_obs::span!("mpc.reduce", "items" = input.total_len());
    // Local reduction (fused, no round).
    let partials: Vec<Vec<A>> = input
        .parts()
        .iter()
        .map(|p| local(p).into_iter().collect::<Vec<A>>())
        .collect();
    let mut dist = Dist::from_parts(partials);

    let mut active = rt.num_machines();
    let mut step = 0usize;
    while active > 1 {
        // Fanout per step, sized to the actual partial footprint: a
        // parent keeps one partial and receives up to `fanout` more.
        let part_w = dist.max_part_words().max(1);
        // A parent keeps one partial and receives `fanout` more:
        // (fanout + 1) * part_w must fit in capacity.
        let fanout = (rt.capacity() / part_w).saturating_sub(1).max(2);
        let parents = active.div_ceil(fanout);
        let label = format!("reduce:step{step}");
        dist = rt.round(&label, dist, move |id, shard, em| {
            if shard.is_empty() {
                return shard;
            }
            if id < parents {
                return shard; // parents keep their partials
            }
            let parent = id / fanout;
            for a in shard {
                em.send(parent, a);
            }
            Vec::new()
        })?;
        // Parents fold their received partials locally (fused).
        dist = rt.map_local(dist, move |_, shard| {
            let mut it = shard.into_iter();
            match it.next() {
                None => Vec::new(),
                Some(first) => vec![it.fold(first, combine)],
            }
        })?;
        active = parents;
        step += 1;
    }
    let mut parts = dist.into_parts();
    Ok(parts.swap_remove(0).pop())
}

/// Global record count (words of bookkeeping: one u64 per machine).
pub fn count<T: Words + Send + Sync + Clone>(rt: &mut Runtime, input: &Dist<T>) -> MpcResult<u64> {
    let counts: Vec<Vec<u64>> = input.parts().iter().map(|p| vec![p.len() as u64]).collect();
    let dist = Dist::from_parts(counts);
    Ok(reduce(rt, dist, |s| s.first().copied(), |a, b| a + b)?.unwrap_or(0))
}

/// Global sum of a numeric projection.
pub fn sum_by<T, F>(rt: &mut Runtime, input: &Dist<T>, f: F) -> MpcResult<f64>
where
    T: Words + Send + Sync + Clone,
    F: Fn(&T) -> f64 + Sync,
{
    let partial: Vec<Vec<f64>> = input
        .parts()
        .iter()
        .map(|p| vec![p.iter().map(&f).sum::<f64>()])
        .collect();
    let dist = Dist::from_parts(partial);
    Ok(reduce(rt, dist, |s| s.first().copied(), |a, b| a + b)?.unwrap_or(0.0))
}

/// Global maximum of an ordered projection.
pub fn max_by<T, K, F>(rt: &mut Runtime, input: &Dist<T>, f: F) -> MpcResult<Option<K>>
where
    T: Words + Send + Sync + Clone,
    K: Ord + Words + Send + Sync + Clone,
    F: Fn(&T) -> K + Sync,
{
    let partial: Vec<Vec<K>> = input
        .parts()
        .iter()
        .map(|p| p.iter().map(&f).max().into_iter().collect::<Vec<K>>())
        .collect();
    let dist = Dist::from_parts(partial);
    reduce(
        rt,
        dist,
        |s| s.iter().max().cloned(),
        |a, b| if a >= b { a } else { b },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn rt(machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 12, 64, machines).with_threads(4))
            .build()
    }

    #[test]
    fn count_matches_input_size() {
        let mut rt = rt(20);
        let dist = rt.distribute((0..777u64).collect()).unwrap();
        assert_eq!(count(&mut rt, &dist).unwrap(), 777);
    }

    #[test]
    fn sum_matches_closed_form() {
        let mut rt = rt(20);
        let dist = rt.distribute((1..=100u64).collect()).unwrap();
        let s = sum_by(&mut rt, &dist, |x| *x as f64).unwrap();
        assert_eq!(s, 5050.0);
    }

    #[test]
    fn max_finds_global_extreme() {
        let mut rt = rt(15);
        let data: Vec<u64> = (0..500).map(|i| (i * 37) % 499).collect();
        let dist = rt.distribute(data.clone()).unwrap();
        let m = max_by(&mut rt, &dist, |x| *x).unwrap();
        assert_eq!(m, data.iter().copied().max());
    }

    #[test]
    fn reduce_on_empty_is_none() {
        let mut rt = rt(4);
        let dist = rt.distribute(Vec::<u64>::new()).unwrap();
        let out = reduce(&mut rt, dist, |s| s.first().copied(), |a: u64, b| a + b).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn round_count_constant_for_large_clusters() {
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 16, 64, 900).with_threads(8))
            .build();
        let dist = rt.distribute((0..4000u64).collect()).unwrap();
        let _ = count(&mut rt, &dist).unwrap();
        // fanout = 32: 900 -> 29 -> 1, i.e. 2 steps.
        assert!(
            rt.metrics().rounds() <= 3,
            "rounds = {}",
            rt.metrics().rounds()
        );
    }

    #[test]
    fn single_machine_reduction_needs_no_rounds() {
        let mut rt = rt(1);
        let dist = rt.distribute(vec![1u64, 2, 3]).unwrap();
        assert_eq!(count(&mut rt, &dist).unwrap(), 3);
        assert_eq!(rt.metrics().rounds(), 0);
    }
}
