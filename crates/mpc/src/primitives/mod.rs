//! Classic O(1)-round MPC building blocks, built on
//! [`Runtime::round`](crate::cluster::Runtime::round).
//!
//! Every primitive uses `O(log_s M) = O(1/ε)` rounds, labels its internal
//! rounds (`"broadcast:…"`, `"sort:…"`, …) so pipelines can attribute
//! their round budgets, and respects capacity enforcement.

pub mod aggregate;
pub mod broadcast;
pub mod join;
pub mod shuffle;
pub mod sort;
