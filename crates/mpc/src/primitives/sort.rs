//! Distributed sample-sort in O(1) rounds.
//!
//! The MPC folklore primitive (Goodrich–Sitchinava–Zhang): sample keys,
//! centralize a splitter computation, broadcast splitters, route by
//! splitter bucket, sort locally. The result is globally sorted across
//! machine boundaries: every record on machine `i` precedes every record
//! on machine `i+1`.

use crate::cluster::{Dist, Runtime};
use crate::error::MpcResult;
use crate::primitives::broadcast::broadcast;
use crate::words::Words;

/// Oversampling factor per machine: more samples give better balance at
/// the cost of a slightly larger sample round.
const OVERSAMPLE: usize = 8;

/// Sorts a distributed collection by `key`, returning a collection whose
/// concatenated shards (machine order) are sorted. Stable within a
/// machine; records with equal keys may land on adjacent machines in
/// arbitrary relative order.
///
/// Dispatches to single-level sample sort when the splitter vector
/// (`M − 1` keys) fits comfortably in one machine (`2M ≤ s`, the
/// `ε ≥ 1/2` regime), and to [`sort_two_level`] otherwise — which
/// tolerates `M` up to ≈ `(s/2)²`, i.e. `ε ≥ 1/3`.
pub fn sort_by_key<T, K, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    K: Ord + Words + Send + Sync + Clone + 'static,
    F: Fn(&T) -> K + Sync + Send + Copy,
{
    let _sp = treeemb_obs::span!("mpc.sort", "items" = input.total_len());
    if 2 * rt.num_machines() > rt.capacity() {
        return sort_two_level(rt, input, key);
    }
    sort_single_level(rt, input, key)
}

/// Single-level sample sort (see [`sort_by_key`] for the dispatch).
pub fn sort_single_level<T, K, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    K: Ord + Words + Send + Sync + Clone + 'static,
    F: Fn(&T) -> K + Sync + Send + Copy,
{
    let m = rt.num_machines();
    if m == 1 {
        return rt.map_local(input, move |_, mut shard| {
            shard.sort_by_key(key);
            shard
        });
    }

    // Round 1: every machine ships an evenly spaced key sample to
    // machine 0. The per-machine sample size adapts so machine 0's
    // receive volume m * samples stays within capacity.
    let samples_per_machine = OVERSAMPLE.min((rt.capacity() / m).max(1));
    let keys_dist = Dist::from_parts(
        input
            .parts()
            .iter()
            .map(|p| p.iter().map(key).collect::<Vec<K>>())
            .collect(),
    );
    let samples = rt.round("sort:sample", keys_dist, move |_, mut shard, em| {
        if shard.is_empty() {
            return Vec::new();
        }
        shard.sort();
        let step = (shard.len() / samples_per_machine).max(1);
        for k in shard.into_iter().step_by(step).take(samples_per_machine) {
            em.send(0, k);
        }
        Vec::new()
    })?;

    // Machine 0 derives m-1 splitters.
    let mut sample_keys = samples.into_parts().swap_remove(0);
    sample_keys.sort();
    let mut splitters: Vec<K> = Vec::with_capacity(m.saturating_sub(1));
    if !sample_keys.is_empty() {
        for b in 1..m {
            let idx = (b * sample_keys.len()) / m;
            splitters.push(sample_keys[idx.min(sample_keys.len() - 1)].clone());
        }
    }

    // Rounds 2..: broadcast splitters, then route each record to its
    // bucket machine and sort locally.
    let splitters_everywhere = broadcast(rt, splitters)?;
    let splitter_parts = splitters_everywhere.into_parts();
    let routed = rt.round("sort:route", input, move |id, shard, em| {
        let sp = &splitter_parts[id];
        for rec in shard {
            let k = key(&rec);
            // partition_point gives the first splitter > k, i.e. the
            // bucket index.
            let bucket = sp.partition_point(|s| *s <= k);
            em.send(bucket, rec);
        }
        Vec::new()
    })?;
    rt.map_local(routed, move |_, mut shard| {
        shard.sort_by_key(key);
        shard
    })
}

/// Two-level sample sort for clusters whose machine count exceeds the
/// per-machine capacity (`ε < 1/2` regimes): machines are divided into
/// `G ≈ √M` contiguous *groups* of ≈ `√M` machines.
///
/// 1. an aggregation tree merges bounded sorted key samples (so no
///    machine ever holds more than `s/4` sample words);
/// 2. machine 0 derives `G − 1` *coarse* splitters, broadcast to all;
/// 3. records route to their group (spread within it by hash);
/// 4. each group leader samples its group, derives fine splitters, and
///    forwards them down an intra-group broadcast tree;
/// 5. records route to their final machine and sort locally.
///
/// Groups occupy contiguous machine ranges and coarse splitters are
/// ascending, so the concatenation across machines is globally sorted.
/// Round count stays `O(1/ε)`.
pub fn sort_two_level<T, K, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    K: Ord + Words + Send + Sync + Clone + 'static,
    F: Fn(&T) -> K + Sync + Send + Copy,
{
    use crate::cluster::mix_seed;
    use crate::error::MpcError;

    let m = rt.num_machines();
    let cap = rt.capacity();
    let group_size = (m as f64).sqrt().ceil() as usize;
    let groups = m.div_ceil(group_size);
    if 2 * (groups.max(group_size) + 1) > cap {
        return Err(MpcError::AlgorithmFailure(format!(
            "two-level sort needs ~sqrt(M)={group_size} splitter words per machine, capacity {cap} too small"
        )));
    }

    // Step 1: bounded-size sorted samples up an aggregation tree.
    let sample_cap = (cap / 4).max(4);
    let keys = Dist::from_parts(
        input
            .parts()
            .iter()
            .map(|p| p.iter().map(key).collect::<Vec<K>>())
            .collect(),
    );
    let merged = crate::primitives::aggregate::reduce(
        rt,
        keys,
        |shard: &[K]| {
            if shard.is_empty() {
                return None;
            }
            let mut s = shard.to_vec();
            s.sort();
            Some(subsample(s, sample_cap))
        },
        move |a: Vec<K>, b: Vec<K>| {
            let mut merged = Vec::with_capacity(a.len() + b.len());
            let (mut ia, mut ib) = (0, 0);
            while ia < a.len() && ib < b.len() {
                if a[ia] <= b[ib] {
                    merged.push(a[ia].clone());
                    ia += 1;
                } else {
                    merged.push(b[ib].clone());
                    ib += 1;
                }
            }
            merged.extend_from_slice(&a[ia..]);
            merged.extend_from_slice(&b[ib..]);
            subsample(merged, sample_cap)
        },
    )?;
    let sample = merged.unwrap_or_default();

    // Step 2: coarse splitters to every machine.
    let mut coarse: Vec<K> = Vec::with_capacity(groups.saturating_sub(1));
    if !sample.is_empty() {
        for g in 1..groups {
            let idx = (g * sample.len()) / groups;
            coarse.push(sample[idx.min(sample.len() - 1)].clone());
        }
    }
    let coarse_everywhere = broadcast(rt, coarse)?;
    let coarse_parts = coarse_everywhere.into_parts();

    // Step 3: route to groups, spreading by key hash within the group.
    let routed = rt.round("gsort:route-group", input, move |id, shard, em| {
        let sp = &coarse_parts[id];
        for (i, rec) in shard.into_iter().enumerate() {
            let k = key(&rec);
            let group = sp.partition_point(|s| *s <= k);
            // The last group may be partial; spread over its real size.
            let size = group_size.min(m - group * group_size);
            let spread = (mix_seed(id as u64, i as u64) % size as u64) as usize;
            em.send(group * group_size + spread, rec);
        }
        Vec::new()
    })?;

    // Step 4a: group leaders collect per-machine samples.
    let leader_samples = {
        let keys = Dist::from_parts(
            routed
                .parts()
                .iter()
                .map(|p| p.iter().map(key).collect::<Vec<K>>())
                .collect(),
        );
        rt.round("gsort:sample", keys, move |id, mut shard, em| {
            if shard.is_empty() {
                return Vec::new();
            }
            shard.sort();
            let leader = (id / group_size) * group_size;
            let per = OVERSAMPLE.min((cap / (2 * group_size)).max(1));
            let step = (shard.len() / per).max(1);
            for k in shard.into_iter().step_by(step).take(per) {
                em.send(leader, k);
            }
            Vec::new()
        })?
    };
    // Leaders derive fine splitter vectors (group_size - 1 keys).
    let fine = rt.map_local(leader_samples, move |id, mut shard| {
        if id % group_size != 0 || shard.is_empty() {
            return Vec::new();
        }
        shard.sort();
        let mut out: Vec<K> = Vec::with_capacity(group_size.saturating_sub(1));
        for b in 1..group_size {
            let idx = (b * shard.len()) / group_size;
            out.push(shard[idx.min(shard.len() - 1)].clone());
        }
        out
    })?;

    // Step 4b: intra-group broadcast tree for the fine splitters.
    let splitter_words = group_size; // ~1 word per key, checked by runtime
    let fanout = (cap / splitter_words.max(1)).max(1);
    let mut fine = fine;
    let mut holders = 1usize;
    let mut step_idx = 0usize;
    while holders < group_size {
        let h = holders;
        let new_total = (h + h * fanout).min(group_size);
        let label = format!("gsort:fine-bcast{step_idx}");
        fine = rt.round(&label, fine, move |id, shard, em| {
            if shard.is_empty() {
                return shard;
            }
            let leader = (id / group_size) * group_size;
            let rank = id - leader;
            if rank >= h {
                return shard;
            }
            let first = h + rank * fanout;
            let last = (first + fanout).min(new_total);
            for t in first..last {
                let dest = leader + t;
                if dest < m {
                    for k in &shard {
                        em.send(dest, k.clone());
                    }
                }
            }
            shard
        })?;
        holders = new_total;
        step_idx += 1;
    }
    let fine_parts = fine.into_parts();

    // Step 5: final route within the group + local sort.
    let final_routed = rt.round("gsort:route-fine", routed, move |id, shard, em| {
        let leader = (id / group_size) * group_size;
        let sp = &fine_parts[id];
        for rec in shard {
            let k = key(&rec);
            let bucket = sp.partition_point(|s| *s <= k);
            let dest = (leader + bucket).min(m - 1);
            em.send(dest, rec);
        }
        Vec::new()
    })?;
    rt.map_local(final_routed, move |_, mut shard| {
        shard.sort_by_key(key);
        shard
    })
}

/// Evenly subsamples a sorted vector down to at most `cap` elements.
fn subsample<K: Clone>(mut v: Vec<K>, cap: usize) -> Vec<K> {
    if v.len() <= cap {
        return v;
    }
    let step = v.len() as f64 / cap as f64;
    let mut out = Vec::with_capacity(cap);
    for i in 0..cap {
        out.push(v[(i as f64 * step) as usize].clone());
    }
    v.clear();
    out
}

/// Sorts and then removes duplicate keys globally, keeping the first
/// record of each run (machine order ties broken by source order).
/// Boundary duplicates between adjacent machines are resolved with one
/// extra round in which each machine ships its minimum key to its left
/// neighbour for comparison.
pub fn sort_dedup_by_key<T, K, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    K: Ord + Words + Send + Sync + Clone + 'static,
    F: Fn(&T) -> K + Sync + Send + Copy,
{
    let sorted = sort_by_key(rt, input, key)?;
    let m = rt.num_machines();
    // Local dedup.
    let local = rt.map_local(sorted, move |_, mut shard| {
        shard.dedup_by_key(|r| key(r));
        shard
    })?;
    if m == 1 {
        return Ok(local);
    }
    // Boundary pass: every machine sends its first key to the previous
    // non-empty... simpler: send first key to machine id-1; a machine
    // drops its trailing records whose key equals any successor's head
    // key. Because shards are globally sorted, only the immediate
    // neighbour's head can collide, except across empty shards — so each
    // machine sends its head to *all* smaller-id machines? That would be
    // O(m^2) traffic. Instead: send head key to machine id-1 and let
    // empty shards forward. Empty shards have no head; a record equal to
    // a head two machines away implies the middle machine was empty yet
    // sorted order put equal keys around it — impossible since equal keys
    // route to one bucket machine in sort_by_key. Hence neighbour check
    // suffices.
    let heads = rt.round("dedup:heads", local, move |id, shard, em| {
        if id > 0 {
            if let Some(first) = shard.first() {
                em.send(id - 1, HeadMsg::Head(key(first)));
            }
        }
        shard.into_iter().map(HeadMsg::Rec).collect()
    })?;
    rt.map_local(heads, move |_, shard| {
        let mut recs: Vec<T> = Vec::with_capacity(shard.len());
        let mut head: Option<K> = None;
        for msg in shard {
            match msg {
                HeadMsg::Rec(r) => recs.push(r),
                HeadMsg::Head(k) => head = Some(k),
            }
        }
        if let Some(h) = head {
            while recs.last().is_some_and(|r| key(r) == h) {
                recs.pop();
            }
        }
        recs
    })
}

/// Internal message for the dedup boundary pass.
#[derive(Clone)]
enum HeadMsg<T, K> {
    Rec(T),
    Head(K),
}

impl<T: Words, K: Words> Words for HeadMsg<T, K> {
    fn words(&self) -> usize {
        match self {
            HeadMsg::Rec(r) => r.words(),
            HeadMsg::Head(k) => k.words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rt(cap: usize, machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 12, cap, machines).with_threads(4))
            .build()
    }

    #[test]
    fn sorts_random_data_globally() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..10_000)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut rt = rt(512, 40);
        let dist = rt.distribute(data).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert_eq!(rt.gather(sorted), expect);
    }

    #[test]
    fn uses_constant_rounds() {
        let mut rt = rt(512, 40);
        let dist = rt.distribute((0..2000u64).rev().collect()).unwrap();
        let _ = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert!(
            rt.metrics().rounds() <= 5,
            "rounds = {}",
            rt.metrics().rounds()
        );
    }

    #[test]
    fn sorts_on_single_machine() {
        let mut rt = rt(512, 1);
        let dist = rt.distribute(vec![3u64, 1, 2]).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert_eq!(rt.gather(sorted), vec![1, 2, 3]);
    }

    #[test]
    fn sorts_by_custom_key() {
        let mut rt = rt(512, 8);
        let data: Vec<(u64, u64)> = (0..100).map(|i| (i, 99 - i)).collect();
        let dist = rt.distribute(data).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |r| r.1).unwrap();
        let out = rt.gather(sorted);
        for w in out.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn handles_heavily_skewed_duplicates() {
        let mut data: Vec<u64> = vec![42; 500];
        data.extend(0..100u64);
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 12, 1024, 8).with_threads(4))
            .build();
        let dist = rt.distribute(data.clone()).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(rt.gather(sorted), expect);
    }

    #[test]
    fn dedup_removes_global_duplicates() {
        let mut data: Vec<u64> = (0..400).map(|i| i % 50).collect();
        data.push(1000);
        let mut rt = rt(512, 16);
        let dist = rt.distribute(data).unwrap();
        let deduped = sort_dedup_by_key(&mut rt, dist, |x| *x).unwrap();
        let out = rt.gather(deduped);
        let mut expect: Vec<u64> = (0..50).collect();
        expect.push(1000);
        assert_eq!(out, expect);
    }

    #[test]
    fn dedup_on_unique_input_is_identity() {
        let mut rt = rt(512, 8);
        let dist = rt.distribute((0..200u64).rev().collect()).unwrap();
        let deduped = sort_dedup_by_key(&mut rt, dist, |x| *x).unwrap();
        assert_eq!(rt.gather(deduped), (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn two_level_sorts_when_machines_exceed_capacity() {
        // M = 120 machines with 64-word capacity: 2M > s forces the
        // two-level path (single-level splitters would not fit).
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 128, 120).with_threads(4))
            .build();
        let dist = rt.distribute(data).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert_eq!(rt.gather(sorted), expect);
        assert_eq!(rt.metrics().violations(), 0);
    }

    #[test]
    fn two_level_round_count_is_bounded() {
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 128, 120).with_threads(4))
            .build();
        let dist = rt.distribute((0..2000u64).rev().collect()).unwrap();
        let _ = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert!(
            rt.metrics().rounds() <= 14,
            "rounds = {}",
            rt.metrics().rounds()
        );
    }

    #[test]
    fn two_level_explicit_call_matches_single_level() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u64> = (0..1500).map(|_| rng.gen_range(0..10_000)).collect();
        let mut rt1 = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 2048, 16).with_threads(4))
            .build();
        let d1 = rt1.distribute(data.clone()).unwrap();
        let s1 = sort_single_level(&mut rt1, d1, |x| *x).unwrap();
        let mut rt2 = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 2048, 16).with_threads(4))
            .build();
        let d2 = rt2.distribute(data).unwrap();
        let s2 = sort_two_level(&mut rt2, d2, |x| *x).unwrap();
        assert_eq!(rt1.gather(s1), rt2.gather(s2));
    }

    #[test]
    fn two_level_handles_duplicate_heavy_input() {
        // Equal keys must colocate on one machine, so the largest
        // duplicate group must fit in capacity; beyond that, skew is
        // handled by routing.
        let mut data: Vec<u64> = vec![7; 100];
        data.extend((0..400u64).map(|i| i * 3));
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 160, 100).with_threads(4))
            .build();
        let dist = rt.distribute(data).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert_eq!(rt.gather(sorted), expect);
    }

    #[test]
    fn two_level_reports_failure_on_oversized_duplicate_group() {
        // 800 equal keys cannot fit one 96-word machine: the sort must
        // fail cleanly (capacity error), not mis-sort.
        let mut data: Vec<u64> = vec![7; 800];
        data.extend((0..400u64).map(|i| i * 3));
        let mut rt = Runtime::builder()
            .config(MpcConfig::explicit(1 << 14, 96, 100).with_threads(4))
            .build();
        let dist = rt.distribute(data).unwrap();
        let err = sort_by_key(&mut rt, dist, |x| *x).unwrap_err();
        assert!(matches!(err, crate::MpcError::CapacityExceeded { .. }));
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let mut rt = rt(128, 4);
        let dist = rt.distribute(Vec::<u64>::new()).unwrap();
        let sorted = sort_by_key(&mut rt, dist, |x| *x).unwrap();
        assert!(rt.gather(sorted).is_empty());
    }
}
