//! Distributed hash join: co-locate two collections by key and merge.
//!
//! The relational workhorse behind iterative tree/graph algorithms
//! (pointer doubling joins each node with its ancestor's record). One
//! communication round: both sides route to `hash(key) % M`, then each
//! machine joins locally.

use crate::cluster::{mix_seed, Dist, Runtime};
use crate::error::MpcResult;
use crate::words::Words;
use std::collections::HashMap;

/// Tagged union shipping both sides of a join through one round.
#[derive(Debug, Clone)]
enum Side<L, R> {
    Left(L),
    Right(R),
}

impl<L: Words, R: Words> Words for Side<L, R> {
    fn words(&self) -> usize {
        match self {
            Side::Left(l) => l.words(),
            Side::Right(r) => r.words(),
        }
    }
}

/// Inner hash join: for every pair `(l, r)` with `lkey(l) == rkey(r)`,
/// emits `merge(l, r)`. Right-side keys should be unique (typical for
/// lookup tables — e.g. one record per tree node); duplicate right keys
/// keep the first arrival (deterministic source order).
pub fn join_by_key<L, R, U, KL, KR, M>(
    rt: &mut Runtime,
    left: Dist<L>,
    right: Dist<R>,
    lkey: KL,
    rkey: KR,
    merge: M,
) -> MpcResult<Dist<U>>
where
    L: Words + Send + Sync + Clone,
    R: Words + Send + Sync + Clone,
    U: Words + Send + Sync,
    KL: Fn(&L) -> u64 + Sync + Send + Copy,
    KR: Fn(&R) -> u64 + Sync + Send + Copy,
    M: Fn(&L, &R) -> U + Sync + Send,
{
    let _sp = treeemb_obs::span!("mpc.join");
    let m = rt.num_machines();
    // One round: both sides route by key hash. Left records are kept on
    // their destination; right records likewise; then local join.
    let mut mixed_parts: Vec<Vec<Side<L, R>>> = Vec::with_capacity(m);
    for (lp, rp) in left.into_parts().into_iter().zip(right.into_parts()) {
        let mut v: Vec<Side<L, R>> = Vec::with_capacity(lp.len() + rp.len());
        v.extend(lp.into_iter().map(Side::Left));
        v.extend(rp.into_iter().map(Side::Right));
        mixed_parts.push(v);
    }
    let routed = rt.round(
        "join:route",
        Dist::from_parts(mixed_parts),
        move |_, shard, em| {
            for rec in shard {
                let key = match &rec {
                    Side::Left(l) => lkey(l),
                    Side::Right(r) => rkey(r),
                };
                let dest = (mix_seed(key, 0x101_1E4) % m as u64) as usize;
                em.send(dest, rec);
            }
            Vec::new()
        },
    )?;
    rt.map_local(routed, move |_, shard| {
        let mut table: HashMap<u64, R> = HashMap::new();
        let mut lefts: Vec<L> = Vec::new();
        for rec in shard {
            match rec {
                Side::Right(r) => {
                    table.entry(rkey(&r)).or_insert(r);
                }
                Side::Left(l) => lefts.push(l),
            }
        }
        lefts
            .into_iter()
            .filter_map(|l| table.get(&lkey(&l)).map(|r| merge(&l, r)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn rt(machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 12, 1024, machines).with_threads(4))
            .build()
    }

    #[test]
    fn joins_matching_keys() {
        let mut rt = rt(8);
        let left = rt
            .distribute((0..100u64).map(|i| (i % 10, i)).collect())
            .unwrap();
        let right = rt
            .distribute((0..10u64).map(|k| (k, k * 1000)).collect())
            .unwrap();
        let joined = join_by_key(
            &mut rt,
            left,
            right,
            |l: &(u64, u64)| l.0,
            |r: &(u64, u64)| r.0,
            |l, r| (l.1, r.1),
        )
        .unwrap();
        let mut out = rt.gather(joined);
        out.sort_unstable();
        assert_eq!(out.len(), 100);
        for (lv, rv) in out {
            assert_eq!(rv, (lv % 10) * 1000);
        }
    }

    #[test]
    fn unmatched_left_records_are_dropped() {
        let mut rt = rt(4);
        let left = rt
            .distribute(vec![(1u64, 10u64), (2, 20), (3, 30)])
            .unwrap();
        let right = rt.distribute(vec![(2u64, 200u64)]).unwrap();
        let joined = join_by_key(
            &mut rt,
            left,
            right,
            |l: &(u64, u64)| l.0,
            |r: &(u64, u64)| r.0,
            |l, r| l.1 + r.1,
        )
        .unwrap();
        assert_eq!(rt.gather(joined), vec![220]);
    }

    #[test]
    fn join_is_one_round() {
        let mut rt = rt(8);
        let left = rt.distribute((0..50u64).collect()).unwrap();
        let right = rt.distribute((0..50u64).collect()).unwrap();
        let before = rt.metrics().rounds();
        let _ = join_by_key(&mut rt, left, right, |l| *l, |r| *r, |l, _| *l).unwrap();
        assert_eq!(rt.metrics().rounds() - before, 1);
    }

    #[test]
    fn empty_sides_join_to_empty() {
        let mut rt = rt(4);
        let left = rt.distribute(Vec::<u64>::new()).unwrap();
        let right = rt.distribute((0..5u64).collect()).unwrap();
        let joined = join_by_key(&mut rt, left, right, |l| *l, |r| *r, |l, _| *l).unwrap();
        assert!(rt.gather(joined).is_empty());
    }
}
