//! Hash shuffles: co-locate records by key in one round.

use crate::cluster::{mix_seed, Dist, Runtime};
use crate::error::MpcResult;
use crate::words::Words;

/// Routes every record to machine `hash(key) % M`, co-locating equal
/// keys. One round. Under a well-spread key distribution the load per
/// machine concentrates around `total/M`; heavy skew can legitimately
/// breach capacity, which strict mode will report.
pub fn shuffle_by_key<T, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    F: Fn(&T) -> u64 + Sync + Send + Copy,
{
    let _sp = treeemb_obs::span!("mpc.shuffle", "items" = input.total_len());
    let m = rt.num_machines();
    rt.round("shuffle", input, move |_, shard, em| {
        for rec in shard {
            let dest = (mix_seed(key(&rec), 0x5AFE_C0DE) % m as u64) as usize;
            em.send(dest, rec);
        }
        Vec::new()
    })
}

/// Shuffles by key and deduplicates records with equal keys (keeping an
/// arbitrary—but deterministic, source-order—representative). One round
/// plus local work; the distributed-deduplication step used when
/// Algorithm 2 merges tree nodes discovered by different machines.
pub fn dedup_by_key<T, F>(rt: &mut Runtime, input: Dist<T>, key: F) -> MpcResult<Dist<T>>
where
    T: Words + Send + Sync + Clone,
    F: Fn(&T) -> u64 + Sync + Send + Copy,
{
    let _sp = treeemb_obs::span!("mpc.dedup");
    let shuffled = shuffle_by_key(rt, input, key)?;
    rt.map_local(shuffled, move |_, shard| {
        let mut seen = std::collections::HashSet::with_capacity(shard.len());
        let mut out = Vec::with_capacity(shard.len());
        for rec in shard {
            if seen.insert(key(&rec)) {
                out.push(rec);
            }
        }
        out
    })
}

/// Groups records by key on their destination machines and applies a
/// per-group fold. Returns one output record per distinct key.
pub fn group_fold<T, U, F, G>(
    rt: &mut Runtime,
    input: Dist<T>,
    key: F,
    fold: G,
) -> MpcResult<Dist<U>>
where
    T: Words + Send + Sync + Clone,
    U: Words + Send + Sync,
    F: Fn(&T) -> u64 + Sync + Send + Copy,
    G: Fn(u64, Vec<T>) -> U + Sync + Send,
{
    let _sp = treeemb_obs::span!("mpc.group_fold");
    let shuffled = shuffle_by_key(rt, input, key)?;
    rt.map_local(shuffled, move |_, shard| {
        let mut groups: std::collections::HashMap<u64, Vec<T>> = std::collections::HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for rec in shard {
            let k = key(&rec);
            let entry = groups.entry(k).or_default();
            if entry.is_empty() {
                order.push(k);
            }
            entry.push(rec);
        }
        order
            .into_iter()
            .map(|k| {
                let group = groups.remove(&k).expect("group exists");
                fold(k, group)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn rt(machines: usize) -> Runtime {
        Runtime::builder()
            .config(MpcConfig::explicit(1 << 12, 256, machines).with_threads(4))
            .build()
    }

    #[test]
    fn shuffle_colocates_equal_keys() {
        let mut rt = rt(8);
        let data: Vec<u64> = (0..400).map(|i| i % 20).collect();
        let dist = rt.distribute(data).unwrap();
        let out = shuffle_by_key(&mut rt, dist, |x| *x).unwrap();
        // Every key appears on exactly one machine.
        for k in 0..20u64 {
            let machines_with_k = out.parts().iter().filter(|p| p.contains(&k)).count();
            assert_eq!(machines_with_k, 1, "key {k}");
        }
        assert_eq!(rt.metrics().rounds(), 1);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rt = rt(8);
        let data: Vec<u64> = (0..500).collect();
        let dist = rt.distribute(data.clone()).unwrap();
        let out = shuffle_by_key(&mut rt, dist, |x| *x).unwrap();
        let mut gathered = rt.gather(out);
        gathered.sort_unstable();
        assert_eq!(gathered, data);
    }

    #[test]
    fn dedup_keeps_one_per_key() {
        let mut rt = rt(8);
        let data: Vec<u64> = (0..600).map(|i| i % 37).collect();
        let dist = rt.distribute(data).unwrap();
        let out = dedup_by_key(&mut rt, dist, |x| *x).unwrap();
        let mut gathered = rt.gather(out);
        gathered.sort_unstable();
        assert_eq!(gathered, (0..37u64).collect::<Vec<_>>());
    }

    #[test]
    fn group_fold_counts_occurrences() {
        let mut rt = rt(8);
        let data: Vec<u64> = (0..300).map(|i| i % 10).collect();
        let dist = rt.distribute(data).unwrap();
        let counts = group_fold(&mut rt, dist, |x| *x, |k, group| (k, group.len() as u64)).unwrap();
        let mut gathered = rt.gather(counts);
        gathered.sort_unstable();
        assert_eq!(gathered, (0..10u64).map(|k| (k, 30u64)).collect::<Vec<_>>());
    }

    #[test]
    fn group_fold_on_empty_input() {
        let mut rt = rt(4);
        let dist = rt.distribute(Vec::<u64>::new()).unwrap();
        let out = group_fold(&mut rt, dist, |x| *x, |k, g| (k, g.len() as u64)).unwrap();
        assert!(rt.gather(out).is_empty());
    }
}
