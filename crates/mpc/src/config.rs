//! MPC cluster configuration.

/// Configuration for a simulated MPC cluster.
///
/// The canonical constructor is [`MpcConfig::fully_scalable`], which
/// derives the per-machine capacity `s = ⌈N^ε⌉` from the input size `N`
/// (in machine words) and the scalability exponent `ε`, matching the
/// paper's "fully scalable" regime. Builders allow overriding any knob
/// for tests and experiments.
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Input size `N` in machine words (for the paper: `n · d`).
    pub input_words: usize,
    /// Scalability exponent `ε ∈ (0, 1)`; recorded for reporting.
    pub epsilon: f64,
    /// Local memory per machine, in words (`s`).
    pub capacity_words: usize,
    /// Number of machines `M`.
    pub num_machines: usize,
    /// OS threads used to execute machines concurrently.
    pub threads: usize,
    /// When true (the default), capacity violations abort the computation
    /// with an error; when false they are only recorded in the metrics.
    pub strict: bool,
}

/// Multiplier on `N / s` when choosing the default machine count. MPC
/// algorithms routinely need constant-factor slack in total space; the
/// paper's bounds all carry an `O(·)`.
const MACHINE_SLACK: usize = 4;

impl MpcConfig {
    /// Fully scalable configuration: `s = ⌈N^ε⌉` (at least 16 words so
    /// toy inputs remain runnable), `M = ⌈slack · N / s⌉`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `input_words > 0`.
    pub fn fully_scalable(input_words: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        assert!(input_words > 0, "input must be non-empty");
        let capacity = (input_words as f64).powf(epsilon).ceil() as usize;
        let capacity_words = capacity.max(16);
        let num_machines = (MACHINE_SLACK * input_words)
            .div_ceil(capacity_words)
            .max(1);
        Self {
            input_words,
            epsilon,
            capacity_words,
            num_machines,
            threads: default_threads(),
            strict: true,
        }
    }

    /// Explicit configuration (capacity and machine count chosen by the
    /// caller); `epsilon` is recorded as the implied `log s / log N`.
    pub fn explicit(input_words: usize, capacity_words: usize, num_machines: usize) -> Self {
        assert!(capacity_words > 0 && num_machines > 0);
        let epsilon = if input_words > 1 {
            (capacity_words as f64).ln() / (input_words as f64).ln()
        } else {
            1.0
        };
        Self {
            input_words: input_words.max(1),
            epsilon,
            capacity_words,
            num_machines,
            threads: default_threads(),
            strict: true,
        }
    }

    /// Overrides the per-machine capacity.
    pub fn with_capacity(mut self, capacity_words: usize) -> Self {
        assert!(capacity_words > 0);
        self.capacity_words = capacity_words;
        self
    }

    /// Overrides the machine count.
    pub fn with_machines(mut self, num_machines: usize) -> Self {
        assert!(num_machines > 0);
        self.num_machines = num_machines;
        self
    }

    /// Overrides the executor thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// Meter capacity violations instead of failing on them. Useful for
    /// experiments that chart *how close* an algorithm runs to the bound.
    pub fn lenient(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Total space of the cluster in words (`M · s`).
    pub fn total_space_words(&self) -> usize {
        self.num_machines * self.capacity_words
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_scalable_derives_capacity() {
        let cfg = MpcConfig::fully_scalable(1 << 20, 0.5);
        assert_eq!(cfg.capacity_words, 1 << 10);
        assert_eq!(cfg.num_machines, MACHINE_SLACK * (1 << 10));
    }

    #[test]
    fn capacity_floor_keeps_toy_inputs_runnable() {
        let cfg = MpcConfig::fully_scalable(4, 0.3);
        assert!(cfg.capacity_words >= 16);
    }

    #[test]
    fn builders_override() {
        let cfg = MpcConfig::fully_scalable(1024, 0.5)
            .with_capacity(77)
            .with_machines(5)
            .with_threads(2)
            .lenient();
        assert_eq!(cfg.capacity_words, 77);
        assert_eq!(cfg.num_machines, 5);
        assert_eq!(cfg.threads, 2);
        assert!(!cfg.strict);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_must_be_fractional() {
        let _ = MpcConfig::fully_scalable(100, 1.0);
    }

    #[test]
    fn total_space_is_machines_times_capacity() {
        let cfg = MpcConfig::explicit(100, 10, 7);
        assert_eq!(cfg.total_space_words(), 70);
    }
}
