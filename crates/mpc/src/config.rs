//! MPC cluster configuration: the [`RuntimeBuilder`] construction path,
//! the [`MpcConfig`] knob set it produces, checkpoint policy, and the
//! single `TREEEMB_*` environment-override layer ([`from_env`]).

use crate::cluster::Runtime;
use crate::fault::FaultPlan;

/// Configuration for a simulated MPC cluster.
///
/// The one supported construction path is
/// [`Runtime::builder()`](crate::cluster::Runtime::builder) /
/// [`RuntimeBuilder`]; the associated constructors here
/// ([`MpcConfig::fully_scalable`], [`MpcConfig::explicit`]) remain the
/// sizing primitives the builder resolves to. The struct is
/// `#[non_exhaustive]`: downstream code reads and tweaks fields but
/// cannot literal-construct it, so new knobs can be added without
/// breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MpcConfig {
    /// Input size `N` in machine words (for the paper: `n · d`).
    pub input_words: usize,
    /// Scalability exponent `ε ∈ (0, 1)`; recorded for reporting.
    pub epsilon: f64,
    /// Local memory per machine, in words (`s`).
    pub capacity_words: usize,
    /// Number of machines `M`.
    pub num_machines: usize,
    /// OS threads used to execute machines concurrently.
    pub threads: usize,
    /// When true (the default), capacity violations abort the computation
    /// with an error; when false they are only recorded in the metrics.
    pub strict: bool,
    /// Heterogeneous per-machine capacity overrides as
    /// `(machine, words)` pairs; machines not listed keep
    /// [`MpcConfig::capacity_words`]. See [`MpcConfig::capacity_of`].
    pub machine_capacities: Vec<(usize, usize)>,
}

/// Multiplier on `N / s` when choosing the default machine count. MPC
/// algorithms routinely need constant-factor slack in total space; the
/// paper's bounds all carry an `O(·)`.
const MACHINE_SLACK: usize = 4;

/// Scalability exponent [`RuntimeBuilder`] assumes when sized from
/// `input_words` alone.
const DEFAULT_EPSILON: f64 = 0.5;

impl MpcConfig {
    /// Fully scalable configuration: `s = ⌈N^ε⌉` (at least 16 words so
    /// toy inputs remain runnable), `M = ⌈slack · N / s⌉`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `input_words > 0`.
    pub fn fully_scalable(input_words: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        assert!(input_words > 0, "input must be non-empty");
        let capacity = (input_words as f64).powf(epsilon).ceil() as usize;
        let capacity_words = capacity.max(16);
        let num_machines = (MACHINE_SLACK * input_words)
            .div_ceil(capacity_words)
            .max(1);
        Self {
            input_words,
            epsilon,
            capacity_words,
            num_machines,
            threads: default_threads(),
            strict: true,
            machine_capacities: Vec::new(),
        }
    }

    /// Explicit configuration (capacity and machine count chosen by the
    /// caller); `epsilon` is recorded as the implied `log s / log N`.
    pub fn explicit(input_words: usize, capacity_words: usize, num_machines: usize) -> Self {
        assert!(capacity_words > 0 && num_machines > 0);
        let epsilon = if input_words > 1 {
            (capacity_words as f64).ln() / (input_words as f64).ln()
        } else {
            1.0
        };
        Self {
            input_words: input_words.max(1),
            epsilon,
            capacity_words,
            num_machines,
            threads: default_threads(),
            strict: true,
            machine_capacities: Vec::new(),
        }
    }

    /// Overrides the per-machine capacity.
    pub fn with_capacity(mut self, capacity_words: usize) -> Self {
        assert!(capacity_words > 0);
        self.capacity_words = capacity_words;
        self
    }

    /// Overrides the machine count.
    pub fn with_machines(mut self, num_machines: usize) -> Self {
        assert!(num_machines > 0);
        self.num_machines = num_machines;
        self
    }

    /// Overrides the capacity of one machine (heterogeneous clusters);
    /// repeated calls for the same machine keep the last value.
    pub fn with_machine_capacity(mut self, machine: usize, capacity_words: usize) -> Self {
        assert!(capacity_words > 0);
        assert!(
            machine < self.num_machines,
            "machine {machine} outside 0..{}",
            self.num_machines
        );
        match self
            .machine_capacities
            .iter_mut()
            .find(|(m, _)| *m == machine)
        {
            Some(entry) => entry.1 = capacity_words,
            None => self.machine_capacities.push((machine, capacity_words)),
        }
        self
    }

    /// Overrides the executor thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// Meter capacity violations instead of failing on them. Useful for
    /// experiments that chart *how close* an algorithm runs to the bound.
    pub fn lenient(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Configured capacity of `machine`: its heterogeneous override if
    /// one is set, [`MpcConfig::capacity_words`] otherwise.
    pub fn capacity_of(&self, machine: usize) -> usize {
        self.machine_capacities
            .iter()
            .find(|(m, _)| *m == machine)
            .map_or(self.capacity_words, |&(_, w)| w)
    }

    /// The smallest configured capacity of any machine — what
    /// capacity-driven sizing (fan-outs, chunking) must plan for on a
    /// heterogeneous cluster.
    pub fn min_capacity_words(&self) -> usize {
        if self.machine_capacities.is_empty() {
            return self.capacity_words;
        }
        (0..self.num_machines)
            .map(|m| self.capacity_of(m))
            .min()
            .unwrap_or(self.capacity_words)
    }

    /// Total space of the cluster in words (`Σ` per-machine capacity;
    /// `M · s` for a homogeneous cluster).
    pub fn total_space_words(&self) -> usize {
        (0..self.num_machines).map(|m| self.capacity_of(m)).sum()
    }
}

/// When the runtime snapshots a round's input `Dist` so a crashed
/// machine's partition can be re-executed (see `DESIGN.md`; the
/// checkpoint is word-metered against total space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Snapshot exactly when the attached fault plan can inject crashes
    /// ([`FaultPlan::can_crash`]) — free for fault-free runs, safe for
    /// chaos runs. The default.
    #[default]
    Auto,
    /// Snapshot every round regardless of the fault plan (models an
    /// always-on production checkpointing policy; meters its space cost).
    Always,
    /// Never snapshot: any crash immediately exhausts recovery and the
    /// round fails with the typed
    /// [`MpcError::RecoveryExhausted`](crate::error::MpcError).
    Disabled,
}

/// Builder for [`Runtime`] — the one construction path for simulated
/// clusters.
///
/// Three sizing modes, resolved in this order:
///
/// 1. [`RuntimeBuilder::config`] — start from an existing [`MpcConfig`];
///    other setters override it.
/// 2. [`RuntimeBuilder::capacity_words`] + [`RuntimeBuilder::machines`]
///    — explicit sizing ([`MpcConfig::explicit`]); `input_words`
///    defaults to the cluster's total space when not given.
/// 3. [`RuntimeBuilder::input_words`] alone — fully scalable sizing
///    ([`MpcConfig::fully_scalable`]) with `ε` from
///    [`RuntimeBuilder::epsilon`] (default 0.5).
///
/// ```
/// use treeemb_mpc::cluster::Runtime;
/// use treeemb_mpc::config::CheckpointPolicy;
/// use treeemb_mpc::fault::FaultPlan;
///
/// let rt = Runtime::builder()
///     .machines(8)
///     .capacity_words(1 << 12)
///     .machine_capacity(3, 1 << 10) // one straggler-sized machine
///     .fault_plan(FaultPlan::new(42))
///     .checkpoint(CheckpointPolicy::Auto)
///     .threads(2)
///     .build();
/// assert_eq!(rt.num_machines(), 8);
/// assert_eq!(rt.capacity(), 1 << 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    config: Option<MpcConfig>,
    input_words: Option<usize>,
    epsilon: Option<f64>,
    capacity_words: Option<usize>,
    machines: Option<usize>,
    machine_capacities: Vec<(usize, usize)>,
    threads: Option<usize>,
    strict: Option<bool>,
    fault_plan: Option<FaultPlan>,
    checkpoint: CheckpointPolicy,
    env: Option<EnvOverrides>,
}

impl RuntimeBuilder {
    /// An empty builder (equivalent to `Runtime::builder()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration; later setters override
    /// individual knobs.
    pub fn config(mut self, cfg: MpcConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Input size `N` in machine words.
    pub fn input_words(mut self, words: usize) -> Self {
        self.input_words = Some(words);
        self
    }

    /// Scalability exponent for fully scalable sizing (mode 3).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Per-machine capacity `s` in words.
    pub fn capacity_words(mut self, words: usize) -> Self {
        self.capacity_words = Some(words);
        self
    }

    /// Machine count `M`.
    pub fn machines(mut self, machines: usize) -> Self {
        self.machines = Some(machines);
        self
    }

    /// Heterogeneous capacity override for one machine.
    pub fn machine_capacity(mut self, machine: usize, words: usize) -> Self {
        self.machine_capacities.push((machine, words));
        self
    }

    /// Executor thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Strict (fail on capacity violation, the default) vs lenient
    /// (meter violations) enforcement.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = Some(strict);
        self
    }

    /// Shorthand for `strict(false)`.
    pub fn lenient(self) -> Self {
        self.strict(false)
    }

    /// Attaches a deterministic fault plan at construction.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the round-checkpoint policy (default
    /// [`CheckpointPolicy::Auto`]).
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Applies the process environment's `TREEEMB_*` overrides (read
    /// once, via [`from_env`]) on top of whatever this builder resolves
    /// to. Opt-in: deterministic tests should not call this.
    pub fn env(self) -> Self {
        let overrides = from_env();
        self.env_overrides(overrides)
    }

    /// Applies an explicit override set (the testable form of
    /// [`RuntimeBuilder::env`]).
    pub fn env_overrides(mut self, overrides: EnvOverrides) -> Self {
        self.env = Some(overrides);
        self
    }

    /// Resolves the configuration and constructs the runtime.
    ///
    /// # Panics
    /// Panics when no sizing mode applies (neither `config`, nor
    /// `capacity_words` + `machines`, nor `input_words` was set), or on
    /// invalid knob values (zero capacities, out-of-range machines).
    pub fn build(self) -> Runtime {
        let env = self.env.unwrap_or_default();
        let capacity = env.capacity_words.or(self.capacity_words);
        let machines = env.machines.or(self.machines);
        let mut cfg = match (self.config, capacity, machines) {
            (Some(mut cfg), cap, m) => {
                if let Some(c) = cap {
                    cfg = cfg.with_capacity(c);
                }
                if let Some(m) = m {
                    cfg = cfg.with_machines(m);
                }
                if let Some(n) = self.input_words {
                    cfg.input_words = n.max(1);
                }
                cfg
            }
            (None, Some(cap), Some(m)) => {
                let input = self.input_words.unwrap_or_else(|| cap.saturating_mul(m));
                MpcConfig::explicit(input.max(1), cap, m)
            }
            (None, cap, m) => {
                let input = self.input_words.expect(
                    "RuntimeBuilder: set .config(..), .capacity_words(..) + .machines(..), \
                     or .input_words(..)",
                );
                let mut cfg =
                    MpcConfig::fully_scalable(input, self.epsilon.unwrap_or(DEFAULT_EPSILON));
                if let Some(c) = cap {
                    cfg = cfg.with_capacity(c);
                }
                if let Some(m) = m {
                    cfg = cfg.with_machines(m);
                }
                cfg
            }
        };
        if let Some(t) = env.threads.or(self.threads) {
            cfg = cfg.with_threads(t);
        }
        if let Some(strict) = self.strict {
            cfg.strict = strict;
        }
        for (machine, words) in self.machine_capacities {
            cfg = cfg.with_machine_capacity(machine, words);
        }
        Runtime::assemble(cfg, self.fault_plan, self.checkpoint)
    }
}

/// Overrides parsed from `TREEEMB_*` environment variables by
/// [`from_env`]. `None` means the variable was unset or unparsable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvOverrides {
    /// `TREEEMB_THREADS`: executor thread count.
    pub threads: Option<usize>,
    /// `TREEEMB_MACHINES`: machine count.
    pub machines: Option<usize>,
    /// `TREEEMB_CAPACITY_WORDS`: per-machine capacity in words.
    pub capacity_words: Option<usize>,
    /// `TREEEMB_EXACT_KEYS`: force exact (materialized) partition keys
    /// in the sequential baseline; any value but `"0"` enables.
    pub exact_keys: Option<bool>,
}

/// Reads every `TREEEMB_*` configuration override from the process
/// environment. This is the **only** place the workspace parses
/// configuration from the environment (tracing activation via
/// `TREEEMB_TRACE` lives in `treeemb-obs`, and test harnesses gate on
/// `TREEEMB_PROPTEST_CASES`); everything else takes these overrides
/// through [`RuntimeBuilder::env`] or reads the parsed struct directly.
pub fn from_env() -> EnvOverrides {
    fn num(v: Result<String, std::env::VarError>) -> Option<usize> {
        v.ok().and_then(|s| s.trim().parse().ok())
    }
    EnvOverrides {
        threads: num(std::env::var("TREEEMB_THREADS")),
        machines: num(std::env::var("TREEEMB_MACHINES")),
        capacity_words: num(std::env::var("TREEEMB_CAPACITY_WORDS")),
        exact_keys: std::env::var("TREEEMB_EXACT_KEYS").ok().map(|v| v != "0"),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_scalable_derives_capacity() {
        let cfg = MpcConfig::fully_scalable(1 << 20, 0.5);
        assert_eq!(cfg.capacity_words, 1 << 10);
        assert_eq!(cfg.num_machines, MACHINE_SLACK * (1 << 10));
    }

    #[test]
    fn capacity_floor_keeps_toy_inputs_runnable() {
        let cfg = MpcConfig::fully_scalable(4, 0.3);
        assert!(cfg.capacity_words >= 16);
    }

    #[test]
    fn builders_override() {
        let cfg = MpcConfig::fully_scalable(1024, 0.5)
            .with_capacity(77)
            .with_machines(5)
            .with_threads(2)
            .lenient();
        assert_eq!(cfg.capacity_words, 77);
        assert_eq!(cfg.num_machines, 5);
        assert_eq!(cfg.threads, 2);
        assert!(!cfg.strict);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_must_be_fractional() {
        let _ = MpcConfig::fully_scalable(100, 1.0);
    }

    #[test]
    fn total_space_is_machines_times_capacity() {
        let cfg = MpcConfig::explicit(100, 10, 7);
        assert_eq!(cfg.total_space_words(), 70);
    }

    #[test]
    fn machine_capacity_overrides_one_machine() {
        let cfg = MpcConfig::explicit(100, 10, 4)
            .with_machine_capacity(2, 3)
            .with_machine_capacity(1, 20)
            .with_machine_capacity(2, 4); // last write wins
        assert_eq!(cfg.capacity_of(0), 10);
        assert_eq!(cfg.capacity_of(1), 20);
        assert_eq!(cfg.capacity_of(2), 4);
        assert_eq!(cfg.min_capacity_words(), 4);
        assert_eq!(cfg.total_space_words(), 10 + 20 + 4 + 10);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn machine_capacity_rejects_out_of_range_machines() {
        let _ = MpcConfig::explicit(100, 10, 4).with_machine_capacity(4, 10);
    }

    #[test]
    fn builder_explicit_mode_sizes_like_explicit() {
        let rt = Runtime::builder()
            .machines(7)
            .capacity_words(10)
            .threads(2)
            .build();
        assert_eq!(rt.num_machines(), 7);
        assert_eq!(rt.capacity(), 10);
        assert_eq!(rt.config().input_words, 70);
        assert_eq!(rt.config().threads, 2);
    }

    #[test]
    fn builder_fully_scalable_mode_uses_epsilon() {
        let rt = Runtime::builder().input_words(1 << 20).epsilon(0.5).build();
        assert_eq!(rt.capacity(), 1 << 10);
    }

    #[test]
    fn builder_config_mode_applies_overrides() {
        let base = MpcConfig::explicit(64, 8, 4);
        let rt = Runtime::builder()
            .config(base)
            .capacity_words(16)
            .machines(2)
            .lenient()
            .build();
        assert_eq!(rt.capacity(), 16);
        assert_eq!(rt.num_machines(), 2);
        assert!(!rt.config().strict);
    }

    #[test]
    fn builder_attaches_plan_and_hetero_capacities() {
        let rt = Runtime::builder()
            .machines(4)
            .capacity_words(100)
            .machine_capacity(3, 40)
            .fault_plan(FaultPlan::new(7))
            .build();
        assert_eq!(rt.config().capacity_of(3), 40);
        assert_eq!(rt.capacity(), 40, "cluster capacity is the minimum");
        assert_eq!(rt.fault_plan().map(|p| p.seed), Some(7));
    }

    #[test]
    #[should_panic(expected = "RuntimeBuilder")]
    fn builder_without_sizing_panics() {
        let _ = Runtime::builder().threads(2).build();
    }

    #[test]
    fn env_overrides_beat_builder_settings() {
        let rt = Runtime::builder()
            .machines(4)
            .capacity_words(100)
            .threads(1)
            .env_overrides(EnvOverrides {
                threads: Some(3),
                machines: Some(6),
                capacity_words: Some(50),
                exact_keys: None,
            })
            .build();
        assert_eq!(rt.config().threads, 3);
        assert_eq!(rt.num_machines(), 6);
        assert_eq!(rt.capacity(), 50);
    }

    #[test]
    fn from_env_parses_the_treeemb_namespace() {
        // Serialized with respect to other env-reading tests by var
        // names unique to this namespace check.
        std::env::set_var("TREEEMB_THREADS", "5");
        std::env::set_var("TREEEMB_CAPACITY_WORDS", " 2048 ");
        std::env::set_var("TREEEMB_EXACT_KEYS", "1");
        std::env::remove_var("TREEEMB_MACHINES");
        let ov = from_env();
        std::env::remove_var("TREEEMB_THREADS");
        std::env::remove_var("TREEEMB_CAPACITY_WORDS");
        std::env::remove_var("TREEEMB_EXACT_KEYS");
        assert_eq!(ov.threads, Some(5));
        assert_eq!(ov.capacity_words, Some(2048));
        assert_eq!(ov.machines, None);
        assert_eq!(ov.exact_keys, Some(true));
        let off = from_env();
        assert_eq!(off.exact_keys, None);
    }
}
