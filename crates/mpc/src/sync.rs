//! Synchronization primitives, switched to [loom](https://docs.rs/loom)
//! instrumented equivalents under `--cfg loom`.
//!
//! Only the executor's verified protocol core
//! ([`crate::exec::protocol`]) builds on this module; everything else in
//! the crate uses `std::sync` directly. In a normal build these are
//! plain re-exports of the `std` types, so the hot path is exactly what
//! it was before the abstraction existed; under
//! `RUSTFLAGS="--cfg loom" cargo test -p treeemb-mpc --test loom_exec`
//! every operation becomes a model-checker schedule point.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};
