//! Round/space metering for the simulated cluster.

/// Statistics for a single communication round.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// 0-based round index.
    pub round: usize,
    /// Human-readable label supplied by the algorithm.
    pub label: String,
    /// Total words sent across the cluster this round.
    pub sent_words: usize,
    /// Maximum words sent by any single machine.
    pub max_out_words: usize,
    /// Maximum words received by any single machine.
    pub max_in_words: usize,
    /// Maximum resident words (kept + received) on any machine at the end
    /// of the round.
    pub max_resident_words: usize,
    /// Number of capacity violations observed (only non-zero in lenient
    /// mode; strict mode fails instead).
    pub violations: usize,
}

/// Accumulated metrics of an MPC computation.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rounds: Vec<RoundStats>,
    peak_resident_words: usize,
    peak_total_resident_words: usize,
    total_sent_words: usize,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished round.
    pub fn record_round(&mut self, stats: RoundStats) {
        self.total_sent_words += stats.sent_words;
        self.peak_resident_words = self.peak_resident_words.max(stats.max_resident_words);
        self.rounds.push(stats);
    }

    /// Raises the peak per-machine residency floor directly (used for
    /// replicated overlays that sit outside any Dist).
    pub fn bump_peak_machine(&mut self, words: usize) {
        self.peak_resident_words = self.peak_resident_words.max(words);
    }

    /// Records the cluster-wide resident word count observed after a
    /// round (for total-space audits).
    pub fn record_total_resident(&mut self, words: usize) {
        self.peak_total_resident_words = self.peak_total_resident_words.max(words);
    }

    /// Number of communication rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Per-round statistics, in execution order.
    pub fn round_stats(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Peak resident words on any single machine over the computation —
    /// the quantity bounded by `O((nd)^ε)` in the paper's theorems.
    pub fn peak_machine_words(&self) -> usize {
        self.peak_resident_words
    }

    /// Peak cluster-wide resident words — the paper's "total space".
    pub fn peak_total_words(&self) -> usize {
        self.peak_total_resident_words
    }

    /// Total communication volume in words.
    pub fn total_sent_words(&self) -> usize {
        self.total_sent_words
    }

    /// Total capacity violations (lenient mode only).
    pub fn violations(&self) -> usize {
        self.rounds.iter().map(|r| r.violations).sum()
    }

    /// Rounds whose label starts with `prefix` (primitives label their
    /// internal rounds, letting callers attribute round budgets).
    pub fn rounds_labeled(&self, prefix: &str) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .count()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "rounds={} peak_machine_words={} peak_total_words={} sent_words={}",
            self.rounds(),
            self.peak_machine_words(),
            self.peak_total_words(),
            self.total_sent_words()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: usize, label: &str, sent: usize, resident: usize) -> RoundStats {
        RoundStats {
            round,
            label: label.into(),
            sent_words: sent,
            max_out_words: sent,
            max_in_words: sent,
            max_resident_words: resident,
            violations: 0,
        }
    }

    #[test]
    fn rounds_accumulate() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "a", 10, 5));
        m.record_round(stats(1, "b", 20, 50));
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.total_sent_words(), 30);
        assert_eq!(m.peak_machine_words(), 50);
    }

    #[test]
    fn labeled_round_counting() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "sort:sample", 1, 1));
        m.record_round(stats(1, "sort:route", 1, 1));
        m.record_round(stats(2, "broadcast", 1, 1));
        assert_eq!(m.rounds_labeled("sort"), 2);
        assert_eq!(m.rounds_labeled("broadcast"), 1);
    }

    #[test]
    fn total_resident_peak_tracks_max() {
        let mut m = Metrics::new();
        m.record_total_resident(100);
        m.record_total_resident(40);
        assert_eq!(m.peak_total_words(), 100);
    }

    #[test]
    fn summary_contains_counters() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "x", 7, 3));
        let s = m.summary();
        assert!(s.contains("rounds=1") && s.contains("sent_words=7"));
    }
}
