//! Round/space metering for the simulated cluster.

/// Statistics for a single communication round.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// 0-based round index.
    pub round: usize,
    /// Human-readable label supplied by the algorithm.
    pub label: String,
    /// Total words sent across the cluster this round.
    pub sent_words: usize,
    /// Maximum words sent by any single machine.
    pub max_out_words: usize,
    /// Maximum words received by any single machine.
    pub max_in_words: usize,
    /// Maximum resident words (kept + received) on any machine at the end
    /// of the round.
    pub max_resident_words: usize,
    /// Number of capacity violations observed (only non-zero in lenient
    /// mode; strict mode fails instead).
    pub violations: usize,
    /// Wall-clock start of the round, in nanoseconds since the process
    /// trace epoch ([`treeemb_obs::now_ns`]).
    pub t_start_ns: u64,
    /// Wall-clock end of the round, same epoch.
    pub t_end_ns: u64,
    /// Exchange attempts the round took (1 unless fault injection forced
    /// retries).
    pub attempts: u32,
    /// Faults injected during the round (0 without a fault plan).
    pub faults: usize,
    /// Checkpoint restores performed this round — re-executions of
    /// crashed machines' partitions from the round-input snapshot (0
    /// without crash injection).
    pub recoveries: u32,
    /// Words held by the round-input checkpoint while this round ran (0
    /// when checkpointing was inactive). Counted against total space,
    /// not against any single machine's capacity.
    pub checkpoint_words: usize,
}

impl RoundStats {
    /// Wall time the round took (0 for accounted rounds).
    pub fn wall_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// Per-label aggregation of round statistics (see [`Metrics::by_label`]).
#[derive(Debug, Clone)]
pub struct LabelStats {
    /// The round label (exact string, not a prefix).
    pub label: String,
    /// Rounds carrying this label.
    pub rounds: usize,
    /// Total words sent across those rounds.
    pub sent_words: usize,
    /// Peak single-machine residency across those rounds.
    pub max_resident_words: usize,
    /// Total wall time across those rounds.
    pub wall_ns: u64,
}

/// Accumulated metrics of an MPC computation.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rounds: Vec<RoundStats>,
    peak_resident_words: usize,
    peak_total_resident_words: usize,
    total_sent_words: usize,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished round.
    pub fn record_round(&mut self, stats: RoundStats) {
        self.total_sent_words += stats.sent_words;
        self.peak_resident_words = self.peak_resident_words.max(stats.max_resident_words);
        self.rounds.push(stats);
    }

    /// Raises the peak per-machine residency floor directly (used for
    /// replicated overlays that sit outside any Dist).
    pub fn bump_peak_machine(&mut self, words: usize) {
        self.peak_resident_words = self.peak_resident_words.max(words);
    }

    /// Records the cluster-wide resident word count observed after a
    /// round (for total-space audits).
    pub fn record_total_resident(&mut self, words: usize) {
        self.peak_total_resident_words = self.peak_total_resident_words.max(words);
    }

    /// Number of communication rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Per-round statistics, in execution order.
    pub fn round_stats(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Peak resident words on any single machine over the computation —
    /// the quantity bounded by `O((nd)^ε)` in the paper's theorems.
    pub fn peak_machine_words(&self) -> usize {
        self.peak_resident_words
    }

    /// Peak cluster-wide resident words — the paper's "total space".
    pub fn peak_total_words(&self) -> usize {
        self.peak_total_resident_words
    }

    /// Total communication volume in words.
    pub fn total_sent_words(&self) -> usize {
        self.total_sent_words
    }

    /// Total capacity violations (lenient mode only).
    pub fn violations(&self) -> usize {
        self.rounds.iter().map(|r| r.violations).sum()
    }

    /// Total faults injected across all rounds (0 without a fault plan).
    pub fn faults_injected(&self) -> usize {
        self.rounds.iter().map(|r| r.faults).sum()
    }

    /// Rounds that needed more than one exchange attempt.
    pub fn retried_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.attempts > 1).count()
    }

    /// Total checkpoint restores (crash recoveries) across all rounds.
    pub fn recoveries(&self) -> u32 {
        self.rounds.iter().map(|r| r.recoveries).sum()
    }

    /// Largest round-input checkpoint held by any round, in words — the
    /// space-overhead term checkpointing adds to the paper's total-space
    /// accounting.
    pub fn peak_checkpoint_words(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.checkpoint_words)
            .max()
            .unwrap_or(0)
    }

    /// Rounds whose label starts with `prefix` (primitives label their
    /// internal rounds, letting callers attribute round budgets).
    pub fn rounds_labeled(&self, prefix: &str) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .count()
    }

    /// Words sent in rounds whose label starts with `prefix` — the
    /// volume-budget counterpart of [`Metrics::rounds_labeled`], so
    /// round budgets and communication budgets attribute the same way.
    pub fn words_labeled(&self, prefix: &str) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .map(|r| r.sent_words)
            .sum()
    }

    /// Largest `sent_words` of any single round (the per-round volume
    /// spike the capacity model constrains).
    pub fn max_round_sent_words(&self) -> usize {
        self.rounds.iter().map(|r| r.sent_words).max().unwrap_or(0)
    }

    /// Aggregates rounds by exact label, in first-appearance order:
    /// rounds, sent words, peak residency, and wall time per label.
    pub fn by_label(&self) -> Vec<LabelStats> {
        let mut out: Vec<LabelStats> = Vec::new();
        for r in &self.rounds {
            match out.iter_mut().find(|l| l.label == r.label) {
                Some(l) => {
                    l.rounds += 1;
                    l.sent_words += r.sent_words;
                    l.max_resident_words = l.max_resident_words.max(r.max_resident_words);
                    l.wall_ns += r.wall_ns();
                }
                None => out.push(LabelStats {
                    label: r.label.clone(),
                    rounds: 1,
                    sent_words: r.sent_words,
                    max_resident_words: r.max_resident_words,
                    wall_ns: r.wall_ns(),
                }),
            }
        }
        out
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "rounds={} peak_machine_words={} peak_total_words={} sent_words={} max_round_sent_words={} violations={} recoveries={}",
            self.rounds(),
            self.peak_machine_words(),
            self.peak_total_words(),
            self.total_sent_words(),
            self.max_round_sent_words(),
            self.violations(),
            self.recoveries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: usize, label: &str, sent: usize, resident: usize) -> RoundStats {
        RoundStats {
            round,
            label: label.into(),
            sent_words: sent,
            max_out_words: sent,
            max_in_words: sent,
            max_resident_words: resident,
            violations: 0,
            t_start_ns: 10 * round as u64,
            t_end_ns: 10 * round as u64 + 5,
            attempts: 1,
            faults: 0,
            recoveries: 0,
            checkpoint_words: 0,
        }
    }

    #[test]
    fn rounds_accumulate() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "a", 10, 5));
        m.record_round(stats(1, "b", 20, 50));
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.total_sent_words(), 30);
        assert_eq!(m.peak_machine_words(), 50);
    }

    #[test]
    fn labeled_round_counting() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "sort:sample", 1, 1));
        m.record_round(stats(1, "sort:route", 1, 1));
        m.record_round(stats(2, "broadcast", 1, 1));
        assert_eq!(m.rounds_labeled("sort"), 2);
        assert_eq!(m.rounds_labeled("broadcast"), 1);
    }

    #[test]
    fn total_resident_peak_tracks_max() {
        let mut m = Metrics::new();
        m.record_total_resident(100);
        m.record_total_resident(40);
        assert_eq!(m.peak_total_words(), 100);
    }

    #[test]
    fn summary_contains_counters() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "x", 7, 3));
        let s = m.summary();
        assert!(s.contains("rounds=1") && s.contains("sent_words=7"));
        assert!(s.contains("max_round_sent_words=7") && s.contains("violations=0"));
    }

    #[test]
    fn words_attribute_by_label_prefix_like_rounds() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "sort:sample", 10, 1));
        m.record_round(stats(1, "sort:route", 30, 1));
        m.record_round(stats(2, "broadcast", 5, 1));
        assert_eq!(m.words_labeled("sort"), 40);
        assert_eq!(m.words_labeled("broadcast"), 5);
        assert_eq!(m.words_labeled("nope"), 0);
        assert_eq!(m.max_round_sent_words(), 30);
    }

    #[test]
    fn by_label_aggregates_in_first_appearance_order() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "wht", 10, 4));
        m.record_round(stats(1, "project", 20, 9));
        m.record_round(stats(2, "wht", 30, 2));
        let labels = m.by_label();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0].label, "wht");
        assert_eq!(labels[0].rounds, 2);
        assert_eq!(labels[0].sent_words, 40);
        assert_eq!(labels[0].max_resident_words, 4);
        assert_eq!(labels[0].wall_ns, 10);
        assert_eq!(labels[1].label, "project");
        assert_eq!(labels[1].rounds, 1);
    }

    #[test]
    fn round_stats_carry_wall_time() {
        let s = stats(3, "x", 1, 1);
        assert_eq!(s.t_start_ns, 30);
        assert_eq!(s.wall_ns(), 5);
    }

    #[test]
    fn fault_counters_aggregate() {
        let mut m = Metrics::new();
        m.record_round(stats(0, "a", 1, 1));
        let mut retried = stats(1, "b", 1, 1);
        retried.attempts = 3;
        retried.faults = 5;
        m.record_round(retried);
        assert_eq!(m.faults_injected(), 5);
        assert_eq!(m.retried_rounds(), 1);
    }

    #[test]
    fn recovery_counters_aggregate() {
        let mut m = Metrics::new();
        let mut crashed = stats(0, "a", 1, 1);
        crashed.recoveries = 2;
        crashed.checkpoint_words = 64;
        m.record_round(crashed);
        let mut clean = stats(1, "b", 1, 1);
        clean.checkpoint_words = 48;
        m.record_round(clean);
        assert_eq!(m.recoveries(), 2);
        assert_eq!(m.peak_checkpoint_words(), 64);
        assert!(m.summary().contains("recoveries=2"));
    }
}
