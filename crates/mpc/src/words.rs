//! Word-size accounting for records flowing through the simulated
//! cluster.
//!
//! MPC measures memory in *machine words*. Every record type the runtime
//! moves must implement [`Words`] so the runtime can meter loads. The
//! measure is deep: a `Vec` charges one word of header plus its payload.

/// Types whose MPC word footprint can be measured.
pub trait Words {
    /// Number of machine words this value occupies.
    fn words(&self) -> usize;
}

macro_rules! scalar_words {
    ($($t:ty),*) => {
        $(impl Words for $t {
            #[inline]
            fn words(&self) -> usize { 1 }
        })*
    };
}

scalar_words!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl Words for () {
    #[inline]
    fn words(&self) -> usize {
        0
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: Words, B: Words, C: Words, D: Words> Words for (A, B, C, D) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: Words> Words for Vec<T> {
    fn words(&self) -> usize {
        1 + self.iter().map(Words::words).sum::<usize>()
    }
}

impl<T: Words> Words for Box<T> {
    fn words(&self) -> usize {
        self.as_ref().words()
    }
}

impl<T: Words> Words for Option<T> {
    fn words(&self) -> usize {
        1 + self.as_ref().map_or(0, Words::words)
    }
}

impl Words for String {
    fn words(&self) -> usize {
        1 + self.len().div_ceil(8)
    }
}

impl<T: Words, const N: usize> Words for [T; N] {
    fn words(&self) -> usize {
        self.iter().map(Words::words).sum()
    }
}

/// Total word count of a slice of records (no container header — used
/// for machine-local buffers whose header lives off-cluster).
pub fn of_slice<T: Words>(items: &[T]) -> usize {
    items.iter().map(Words::words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_one_word() {
        assert_eq!(1u64.words(), 1);
        assert_eq!(1.5f64.words(), 1);
        assert_eq!(true.words(), 1);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u64, 2.0f64).words(), 2);
        assert_eq!((1u8, 2u8, 3u8).words(), 3);
        assert_eq!(((1u64, 2u64), 3u64).words(), 3);
    }

    #[test]
    fn vec_charges_header_plus_payload() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.words(), 4);
        let nested: Vec<Vec<u64>> = vec![vec![1], vec![2, 3]];
        assert_eq!(nested.words(), 1 + 2 + 3);
    }

    #[test]
    fn string_rounds_up_to_words() {
        assert_eq!("12345678".to_string().words(), 2);
        assert_eq!("123456789".to_string().words(), 3);
        assert_eq!(String::new().words(), 1);
    }

    #[test]
    fn slice_total_has_no_header() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(of_slice(&v), 3);
    }

    #[test]
    fn option_charges_tag() {
        assert_eq!(Some(5u64).words(), 2);
        assert_eq!(None::<u64>.words(), 1);
    }
}
