//! Error type for MPC computations.
//!
//! Theorem 1's algorithm "reports failure" rather than silently
//! degrading; the runtime mirrors that: capacity violations and coverage
//! failures surface as values of [`MpcError`].

use std::fmt;

/// Result alias for MPC computations.
pub type MpcResult<T> = Result<T, MpcError>;

/// The phase of a round at which a capacity violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityPhase {
    /// The machine's input at the start of the round.
    Input,
    /// Words the machine chose to keep locally plus words it received.
    Residency,
    /// Words the machine sent during the round.
    Send,
    /// Words the machine received during the round.
    Receive,
}

impl fmt::Display for CapacityPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapacityPhase::Input => "input",
            CapacityPhase::Residency => "residency",
            CapacityPhase::Send => "send",
            CapacityPhase::Receive => "receive",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the simulated MPC runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine exceeded its local capacity.
    CapacityExceeded {
        /// Offending machine.
        machine: usize,
        /// Round index (0-based) at which the violation occurred.
        round: usize,
        /// Phase of the round.
        phase: CapacityPhase,
        /// Observed word count.
        words: usize,
        /// Configured capacity.
        capacity: usize,
        /// Human-readable label of the round.
        label: String,
    },
    /// A message addressed a machine outside `0..num_machines`.
    BadDestination {
        /// Offending source machine.
        source: usize,
        /// The invalid destination.
        dest: usize,
        /// Number of machines in the cluster.
        num_machines: usize,
    },
    /// An algorithm-level failure (e.g. ball-partition coverage failed;
    /// Theorem 1 permits reporting failure with probability `1/poly(n)`).
    AlgorithmFailure(String),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::CapacityExceeded {
                machine,
                round,
                phase,
                words,
                capacity,
                label,
            } => {
                write!(
                    f,
                    "machine {machine} exceeded local capacity in round {round} ({label}, phase {phase}): {words} words > {capacity}"
                )
            }
            MpcError::BadDestination {
                source,
                dest,
                num_machines,
            } => {
                write!(
                    f,
                    "machine {source} addressed invalid machine {dest} (cluster has {num_machines})"
                )
            }
            MpcError::AlgorithmFailure(msg) => write!(f, "algorithm reported failure: {msg}"),
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = MpcError::CapacityExceeded {
            machine: 3,
            round: 7,
            phase: CapacityPhase::Send,
            words: 100,
            capacity: 64,
            label: "sort".into(),
        };
        let s = e.to_string();
        assert!(s.contains("machine 3") && s.contains("round 7") && s.contains("send"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = MpcError::AlgorithmFailure("x".into());
        let b = MpcError::AlgorithmFailure("x".into());
        assert_eq!(a, b);
    }
}
