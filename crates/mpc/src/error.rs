//! Error type for MPC computations.
//!
//! Theorem 1's algorithm "reports failure" rather than silently
//! degrading; the runtime mirrors that: capacity violations and coverage
//! failures surface as values of [`MpcError`].

use std::fmt;

/// Result alias for MPC computations.
pub type MpcResult<T> = Result<T, MpcError>;

/// The phase of a round at which a capacity violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityPhase {
    /// The machine's input at the start of the round.
    Input,
    /// Words the machine chose to keep locally plus words it received.
    Residency,
    /// Words the machine sent during the round.
    Send,
    /// Words the machine received during the round.
    Receive,
}

impl fmt::Display for CapacityPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapacityPhase::Input => "input",
            CapacityPhase::Residency => "residency",
            CapacityPhase::Send => "send",
            CapacityPhase::Receive => "receive",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the simulated MPC runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// A machine exceeded its local capacity.
    CapacityExceeded {
        /// Offending machine.
        machine: usize,
        /// Round index (0-based) at which the violation occurred.
        round: usize,
        /// Phase of the round.
        phase: CapacityPhase,
        /// Observed word count.
        words: usize,
        /// Configured capacity.
        capacity: usize,
        /// Human-readable label of the round.
        label: String,
    },
    /// A message addressed a machine outside `0..num_machines`.
    BadDestination {
        /// Offending source machine.
        source: usize,
        /// The invalid destination.
        dest: usize,
        /// Number of machines in the cluster.
        num_machines: usize,
    },
    /// An algorithm-level failure (e.g. ball-partition coverage failed;
    /// Theorem 1 permits reporting failure with probability `1/poly(n)`).
    AlgorithmFailure(String),
    /// Injected transient faults (drops, duplications, unavailability)
    /// persisted through every exchange attempt the fault plan's retry
    /// budget allowed, so the round could not complete. Only produced
    /// under fault injection; retryable at the pipeline level.
    RetriesExhausted {
        /// Round index (0-based) whose exchange kept failing.
        round: usize,
        /// Human-readable label of the round.
        label: String,
        /// Exchange attempts made (`max_retries + 1`).
        attempts: u32,
    },
    /// A machine crashed on its initial execution of a round *and* on
    /// every checkpoint re-execution the fault plan's recovery budget
    /// allowed (or checkpointing was disabled), so the lost partition
    /// could not be recomputed. Only produced under fault injection;
    /// retryable at the pipeline level.
    RecoveryExhausted {
        /// Round index (0-based) whose compute kept crashing.
        round: usize,
        /// Human-readable label of the round.
        label: String,
        /// The machine whose shard could not be recovered.
        machine: usize,
        /// Executions that crashed (initial run plus re-executions).
        attempts: u32,
    },
}

impl MpcError {
    /// Whether a fresh attempt of the whole computation could plausibly
    /// succeed: true only for transient-fault exhaustion (exchange
    /// retries or crash recoveries). Capacity violations, bad
    /// destinations, and algorithm failures are deterministic for a
    /// fixed input/seed and will recur.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MpcError::RetriesExhausted { .. } | MpcError::RecoveryExhausted { .. }
        )
    }
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::CapacityExceeded {
                machine,
                round,
                phase,
                words,
                capacity,
                label,
            } => {
                write!(
                    f,
                    "machine {machine} exceeded local capacity in round {round} ({label}, phase {phase}): {words} words > {capacity}"
                )
            }
            MpcError::BadDestination {
                source,
                dest,
                num_machines,
            } => {
                write!(
                    f,
                    "machine {source} addressed invalid machine {dest} (cluster has {num_machines})"
                )
            }
            MpcError::AlgorithmFailure(msg) => write!(f, "algorithm reported failure: {msg}"),
            MpcError::RetriesExhausted {
                round,
                label,
                attempts,
            } => {
                write!(
                    f,
                    "round {round} ({label}) failed all {attempts} exchange attempts under injected faults"
                )
            }
            MpcError::RecoveryExhausted {
                round,
                label,
                machine,
                attempts,
            } => {
                write!(
                    f,
                    "machine {machine} crashed on all {attempts} executions of round {round} ({label}); checkpoint recovery exhausted"
                )
            }
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = MpcError::CapacityExceeded {
            machine: 3,
            round: 7,
            phase: CapacityPhase::Send,
            words: 100,
            capacity: 64,
            label: "sort".into(),
        };
        let s = e.to_string();
        assert!(s.contains("machine 3") && s.contains("round 7") && s.contains("send"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = MpcError::AlgorithmFailure("x".into());
        let b = MpcError::AlgorithmFailure("x".into());
        assert_eq!(a, b);
    }

    #[test]
    fn only_retries_exhausted_is_retryable() {
        let transient = MpcError::RetriesExhausted {
            round: 2,
            label: "sort:route".into(),
            attempts: 4,
        };
        assert!(transient.is_retryable());
        assert!(transient.to_string().contains("round 2"));
        assert!(transient.to_string().contains("4 exchange attempts"));
        let crashed = MpcError::RecoveryExhausted {
            round: 5,
            label: "embed:assign".into(),
            machine: 3,
            attempts: 4,
        };
        assert!(crashed.is_retryable());
        assert!(crashed.to_string().contains("machine 3"));
        assert!(crashed.to_string().contains("round 5"));
        let capacity = MpcError::CapacityExceeded {
            machine: 0,
            round: 0,
            phase: CapacityPhase::Input,
            words: 10,
            capacity: 5,
            label: "x".into(),
        };
        assert!(!capacity.is_retryable());
        assert!(!MpcError::AlgorithmFailure("x".into()).is_retryable());
        assert!(!MpcError::BadDestination {
            source: 0,
            dest: 9,
            num_machines: 2
        }
        .is_retryable());
    }
}
