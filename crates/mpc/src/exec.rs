//! Deterministic parallel executor for machine-local computation.
//!
//! Machines within an MPC round are independent, so the runtime executes
//! them concurrently. Two design points keep the hot path cheap:
//!
//! * **A persistent worker pool.** Workers are spawned once (lazily, up
//!   to [`MAX_WORKERS`]) and parked on a condvar between jobs, so each
//!   `Cluster` round publishes a job descriptor instead of paying thread
//!   spawn/join costs. The calling thread always participates, so
//!   `threads = k` means the caller plus `k - 1` pool workers.
//! * **Chunked atomic-cursor scheduling into pre-sized slots.** Items are
//!   claimed in contiguous chunks off a single `AtomicUsize`, inputs are
//!   read by index from the source buffer, and each output is written
//!   directly into its index's slot. There are no per-item locks and no
//!   `Option` wrappers on the hot path.
//!
//! Determinism: output `i` is exactly `f(i, item_i)` no matter how
//! chunks land on threads, so results are bit-identical for every thread
//! count (including the sequential fallback).
//!
//! Panics: a panicking closure aborts the remaining chunks, the first
//! payload is captured, and the caller re-raises it after all
//! participants have quiesced — never a deadlock. Inputs not yet
//! consumed and outputs already produced when a panic strikes are leaked
//! rather than dropped; acceptable for this workspace, where panics in
//! round closures are programming errors.
//!
//! Nested calls (a round closure invoking the executor again) run the
//! inner call sequentially: the pool executes one job at a time and
//! re-entry from a participant would otherwise self-deadlock.
//!
//! Verification: the epoch/cursor handshake lives in [`protocol`],
//! which builds on `crate::sync` so the loom suite
//! (`RUSTFLAGS="--cfg loom" cargo test -p treeemb-mpc --test loom_exec`)
//! model-checks the exact shipped code for data races, lost wakeups,
//! and exactly-once chunk delivery; the nightly Miri/ThreadSanitizer CI
//! jobs cover the raw-pointer side of the job descriptors.

use std::mem::MaybeUninit;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Upper bound on pool threads; `threads` arguments beyond
/// `MAX_WORKERS + 1` still work, they just share these workers.
pub const MAX_WORKERS: usize = 31;

/// Cumulative executor instrumentation. Counters are always on (a
/// handful of relaxed atomic adds per *job*, which is per MPC round —
/// far off the per-item hot path); trace events additionally flow to
/// `treeemb-obs` only while tracing is armed.
struct ExecCounters {
    /// Jobs published to the worker pool.
    jobs: AtomicU64,
    /// Jobs that took the sequential fallback (tiny input, `threads <= 1`,
    /// or nested inside another job).
    sequential_jobs: AtomicU64,
    /// Items processed across all jobs (parallel and sequential).
    tasks: AtomicU64,
    /// Chunk claims served off job cursors (work-stealing granularity).
    chunk_claims: AtomicU64,
    /// Nanoseconds calling threads spent participating in jobs.
    caller_busy_ns: AtomicU64,
    /// Per-worker nanoseconds inside job entry points.
    worker_busy_ns: [AtomicU64; MAX_WORKERS],
    /// Per-worker nanoseconds parked between jobs (after first wake).
    worker_idle_ns: [AtomicU64; MAX_WORKERS],
    /// High-water mark of concurrently running pool workers
    /// (saturation gauge; excludes the calling thread).
    max_running: AtomicU64,
}

static COUNTERS: ExecCounters = ExecCounters {
    jobs: AtomicU64::new(0),
    sequential_jobs: AtomicU64::new(0),
    tasks: AtomicU64::new(0),
    chunk_claims: AtomicU64::new(0),
    caller_busy_ns: AtomicU64::new(0),
    worker_busy_ns: [const { AtomicU64::new(0) }; MAX_WORKERS],
    worker_idle_ns: [const { AtomicU64::new(0) }; MAX_WORKERS],
    max_running: AtomicU64::new(0),
};

/// Snapshot of the executor's cumulative utilization counters.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Jobs published to the worker pool.
    pub jobs: u64,
    /// Jobs that ran on the sequential fallback path.
    pub sequential_jobs: u64,
    /// Items processed across all jobs.
    pub tasks: u64,
    /// Chunk claims served off job cursors.
    pub chunk_claims: u64,
    /// Nanoseconds calling threads spent participating in jobs.
    pub caller_busy_ns: u64,
    /// Pool workers spawned so far (lazily, up to [`MAX_WORKERS`]).
    pub workers_spawned: usize,
    /// Per-spawned-worker busy nanoseconds, indexed by worker id.
    pub worker_busy_ns: Vec<u64>,
    /// Per-spawned-worker idle nanoseconds (parked between jobs).
    pub worker_idle_ns: Vec<u64>,
    /// High-water mark of concurrently running pool workers.
    pub max_concurrent_workers: u64,
}

impl ExecStats {
    /// Total busy nanoseconds across callers and pool workers.
    pub fn busy_ns(&self) -> u64 {
        self.caller_busy_ns + self.worker_busy_ns.iter().sum::<u64>()
    }

    /// Fraction of pool-worker wall time spent busy (busy / (busy+idle));
    /// 1.0 when no worker has ever been spawned.
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.worker_busy_ns.iter().sum();
        let idle: u64 = self.worker_idle_ns.iter().sum();
        if busy + idle == 0 {
            return 1.0;
        }
        busy as f64 / (busy + idle) as f64
    }
}

/// Snapshots the executor's cumulative counters.
pub fn stats() -> ExecStats {
    let spawned = pool().core.spawned();
    ExecStats {
        jobs: COUNTERS.jobs.load(Ordering::Relaxed),
        sequential_jobs: COUNTERS.sequential_jobs.load(Ordering::Relaxed),
        tasks: COUNTERS.tasks.load(Ordering::Relaxed),
        chunk_claims: COUNTERS.chunk_claims.load(Ordering::Relaxed),
        caller_busy_ns: COUNTERS.caller_busy_ns.load(Ordering::Relaxed),
        workers_spawned: spawned,
        worker_busy_ns: COUNTERS.worker_busy_ns[..spawned]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        worker_idle_ns: COUNTERS.worker_idle_ns[..spawned]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        max_concurrent_workers: COUNTERS.max_running.load(Ordering::Relaxed),
    }
}

/// Zeroes the cumulative counters (workers stay spawned). Intended for
/// benchmark harnesses that attribute counters to phases.
pub fn reset_stats() {
    COUNTERS.jobs.store(0, Ordering::Relaxed);
    COUNTERS.sequential_jobs.store(0, Ordering::Relaxed);
    COUNTERS.tasks.store(0, Ordering::Relaxed);
    COUNTERS.chunk_claims.store(0, Ordering::Relaxed);
    COUNTERS.caller_busy_ns.store(0, Ordering::Relaxed);
    for c in &COUNTERS.worker_busy_ns {
        c.store(0, Ordering::Relaxed);
    }
    for c in &COUNTERS.worker_idle_ns {
        c.store(0, Ordering::Relaxed);
    }
    COUNTERS.max_running.store(0, Ordering::Relaxed);
}

/// Emits the headline executor counters into the active trace (no-op
/// while tracing is disarmed). Called after each pool job.
fn publish_trace_counters() {
    if !treeemb_obs::enabled() {
        return;
    }
    treeemb_obs::counter("exec.jobs", COUNTERS.jobs.load(Ordering::Relaxed));
    treeemb_obs::counter("exec.tasks", COUNTERS.tasks.load(Ordering::Relaxed));
    treeemb_obs::counter(
        "exec.chunk_claims",
        COUNTERS.chunk_claims.load(Ordering::Relaxed),
    );
    treeemb_obs::counter(
        "exec.max_concurrent_workers",
        COUNTERS.max_running.load(Ordering::Relaxed),
    );
}

thread_local! {
    /// True while this thread is executing inside a pool job (either as a
    /// pool worker or as the publishing caller).
    static IN_EXECUTOR: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_executor() -> bool {
    IN_EXECUTOR.with(std::cell::Cell::get)
}

pub mod protocol {
    //! The executor's synchronization core, factored out of the
    //! instrumented pool so it can be **model-checked**: these types
    //! build exclusively on `crate::sync`, whose primitives become
    //! loom schedule points under `--cfg loom`. The loom suite
    //! (`crates/mpc/tests/loom_exec.rs`) exhaustively explores bounded
    //! interleavings of exactly this code — job publication and the
    //! epoch handshake ([`PoolCore`]), the chunk-claim cursor and
    //! admission tickets ([`JobCore`]) — checking exactly-once chunk
    //! delivery, absence of lost wakeups on the two condvars, and clean
    //! drain/close termination.
    //!
    //! In a non-loom build `crate::sync` re-exports the `std` types, so
    //! the shipped executor runs this very code with zero abstraction
    //! cost.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use crate::sync::{AtomicUsize, Condvar, Mutex, Ordering};

    /// Cursor chunks handed out per participant (on average); >1 so
    /// uneven per-item costs still balance, small enough to keep claims
    /// rare.
    const CHUNKS_PER_PARTICIPANT: usize = 8;

    struct PoolState<J> {
        /// The currently published job, if any. Cleared by the caller
        /// before it waits for stragglers, so late-waking workers skip
        /// it.
        job: Option<J>,
        /// Bumped once per published job; workers use it to tell a
        /// fresh job from one they already served.
        epoch: u64,
        /// Workers currently inside a job's entry point.
        running: usize,
        /// Worker threads spawned so far (bookkeeping for the owning
        /// pool; the protocol itself never spawns).
        spawned: usize,
        /// Set by [`PoolCore::close`]: workers drain out of
        /// [`PoolCore::serve`] with `None`.
        closing: bool,
    }

    /// Publication/drain handshake of the persistent worker pool,
    /// generic over the job payload so the loom suite can drive it with
    /// plain values instead of type-erased pointers.
    pub struct PoolCore<J: Copy> {
        state: Mutex<PoolState<J>>,
        /// Signals workers that a new job was published (or the pool is
        /// closing).
        work_cv: Condvar,
        /// Signals the caller (and queued callers) that the pool
        /// drained.
        idle_cv: Condvar,
    }

    impl<J: Copy> Default for PoolCore<J> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<J: Copy> PoolCore<J> {
        /// An empty, open pool with no job published.
        pub fn new() -> Self {
            Self {
                state: Mutex::new(PoolState {
                    job: None,
                    epoch: 0,
                    running: 0,
                    spawned: 0,
                    closing: false,
                }),
                work_cv: Condvar::new(),
                idle_cv: Condvar::new(),
            }
        }

        /// Reserves worker slots up to `target`, returning the range of
        /// slot indices the caller must actually spawn (empty when the
        /// pool already reached `target`).
        pub fn reserve_workers(&self, target: usize) -> std::ops::Range<usize> {
            let mut st = self.state.lock().expect("executor pool poisoned");
            let from = st.spawned;
            st.spawned = st.spawned.max(target);
            from..st.spawned
        }

        /// Worker threads spawned so far.
        pub fn spawned(&self) -> usize {
            self.state.lock().expect("executor pool poisoned").spawned
        }

        /// Publishes `job` to the workers, queueing behind any in-flight
        /// publication (one job at a time).
        pub fn publish(&self, job: J) {
            let mut st = self.state.lock().expect("executor pool poisoned");
            while st.job.is_some() || st.running > 0 {
                st = self.idle_cv.wait(st).expect("executor pool poisoned");
            }
            st.job = Some(job);
            st.epoch += 1;
            drop(st);
            self.work_cv.notify_all();
        }

        /// Caller-side completion barrier: retires the published job,
        /// waits until every worker that joined it has left, and wakes
        /// any queued publisher.
        pub fn drain(&self) {
            let mut st = self.state.lock().expect("executor pool poisoned");
            st.job = None;
            while st.running > 0 {
                st = self.idle_cv.wait(st).expect("executor pool poisoned");
            }
            drop(st);
            // Wake any caller queued on `idle_cv` waiting to publish.
            self.idle_cv.notify_all();
        }

        /// Worker-side: blocks until a job this worker has not yet
        /// served is published, joins it, and returns it together with
        /// the number of workers now inside the job (a saturation
        /// gauge). Returns `None` once the pool is closing.
        pub fn serve(&self, seen_epoch: &mut u64) -> Option<(J, usize)> {
            let mut st = self.state.lock().expect("executor pool poisoned");
            loop {
                if st.closing {
                    return None;
                }
                if st.epoch != *seen_epoch {
                    *seen_epoch = st.epoch;
                    if let Some(job) = st.job {
                        st.running += 1;
                        return Some((job, st.running));
                    }
                }
                st = self.work_cv.wait(st).expect("executor pool poisoned");
            }
        }

        /// Worker-side: marks a served job complete; the last worker out
        /// wakes the draining caller.
        pub fn complete(&self) {
            let mut st = self.state.lock().expect("executor pool poisoned");
            st.running -= 1;
            if st.running == 0 {
                drop(st);
                self.idle_cv.notify_all();
            }
        }

        /// Closes the pool: every worker parked in (or arriving at)
        /// [`PoolCore::serve`] returns `None`. The production pool never
        /// closes (workers persist for the process lifetime); tests and
        /// the loom models use this for clean join-based shutdown.
        pub fn close(&self) {
            let mut st = self.state.lock().expect("executor pool poisoned");
            st.closing = true;
            drop(st);
            self.work_cv.notify_all();
        }
    }

    /// Shared scheduling core of a job descriptor: chunk claiming,
    /// admission tickets, and first-panic capture.
    pub struct JobCore {
        n: usize,
        chunk: usize,
        cursor: AtomicUsize,
        /// Admission tickets, one per allowed participant (including the
        /// caller); surplus pool workers bow out without touching items.
        tickets: AtomicUsize,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    impl JobCore {
        /// A job over `n` items shared by at most `participants`
        /// threads.
        pub fn new(n: usize, participants: usize) -> Self {
            Self {
                n,
                chunk: (n / (participants * CHUNKS_PER_PARTICIPANT)).max(1),
                cursor: AtomicUsize::new(0),
                tickets: AtomicUsize::new(participants),
                panic: Mutex::new(None),
            }
        }

        /// Claims an admission ticket; a `false` return means the job is
        /// fully subscribed and this thread must not touch any item.
        pub fn take_ticket(&self) -> bool {
            self.tickets
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1))
                .is_ok()
        }

        /// Claims chunks and feeds their index ranges to `work` until
        /// the items run out; on panic, halts all participants and
        /// records the first payload. Returns the number of chunk claims
        /// this participant served.
        pub fn drive(&self, work: impl Fn(usize, usize)) -> u64 {
            let mut claims = 0u64;
            let result = catch_unwind(AssertUnwindSafe(|| loop {
                let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
                if start >= self.n {
                    break;
                }
                claims += 1;
                work(start, (start + self.chunk).min(self.n));
            }));
            if let Err(payload) = result {
                // Park the cursor past the end so other participants
                // stop at their next claim.
                self.cursor.store(self.n, Ordering::Relaxed);
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            claims
        }

        /// The first panic payload captured by [`JobCore::drive`], if
        /// any.
        pub fn into_panic(self) -> Option<Box<dyn Any + Send>> {
            self.panic.into_inner().expect("panic slot poisoned")
        }
    }
}

use protocol::{JobCore, PoolCore};

/// Type-erased pointer to a job descriptor living on the caller's stack,
/// plus the monomorphized entry point that interprets it.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointed-to descriptor outlives the job (the caller blocks
// until every participant has finished), and all shared state inside it
// is atomics, mutexes, and `Sync` closures.
unsafe impl Send for Job {}

struct Pool {
    core: PoolCore<Job>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        core: PoolCore::new(),
    })
}

fn worker_loop(pool: &'static Pool, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        // lint:allow(wall-clock): worker idle/busy metering feeds the
        // utilization counters only; round outputs never see these
        // values.
        let wait_start = Instant::now();
        let Some((job, running)) = pool.core.serve(&mut seen_epoch) else {
            return;
        };
        COUNTERS
            .max_running
            .fetch_max(running as u64, Ordering::Relaxed);
        COUNTERS.worker_idle_ns[slot]
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        IN_EXECUTOR.with(|f| f.set(true));
        // lint:allow(wall-clock): as above — instrumentation only.
        let busy_start = Instant::now();
        // SAFETY: the caller keeps the descriptor alive until `running`
        // returns to zero, which cannot happen before this call returns.
        unsafe { (job.run)(job.data) };
        COUNTERS.worker_busy_ns[slot]
            .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        IN_EXECUTOR.with(|f| f.set(false));
        pool.core.complete();
    }
}

impl Pool {
    /// Publishes `job`, participates in it on the calling thread, and
    /// returns once every participant is done. `helpers` is the number of
    /// pool workers that should join in addition to the caller.
    fn run(&'static self, helpers: usize, job: Job) {
        for slot in self.core.reserve_workers(helpers.min(MAX_WORKERS)) {
            // lint:allow(thread-spawn): this IS mpc::exec — the one
            // sanctioned spawn site in the workspace.
            std::thread::Builder::new()
                .name(format!("treeemb-exec-{slot}"))
                .spawn(move || worker_loop(pool(), slot))
                .expect("spawn executor worker");
        }
        self.core.publish(job);
        IN_EXECUTOR.with(|f| f.set(true));
        // lint:allow(wall-clock): caller-participation metering feeds
        // the utilization counters only.
        let busy_start = Instant::now();
        // SAFETY: the descriptor is on our own stack and stays valid
        // until the drain below completes.
        unsafe { (job.run)(job.data) };
        COUNTERS
            .caller_busy_ns
            .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        IN_EXECUTOR.with(|f| f.set(false));
        self.core.drain();
    }
}

struct MapJob<'a, T, U, F> {
    core: JobCore,
    src: *const T,
    dst: *mut MaybeUninit<U>,
    f: &'a F,
}

unsafe fn run_map<T, U, F>(data: *const ())
where
    F: Fn(usize, T) -> U + Sync,
{
    let job = &*(data as *const MapJob<'_, T, U, F>);
    if !job.core.take_ticket() {
        return;
    }
    let claims = job.core.drive(|start, end| {
        for i in start..end {
            // SAFETY: the cursor dispenses each index exactly once, so
            // this read moves item `i` out exactly once and the write
            // below is the only writer of slot `i`.
            let item = unsafe { std::ptr::read(job.src.add(i)) };
            let out = (job.f)(i, item);
            unsafe { (*job.dst.add(i)).write(out) };
        }
    });
    if claims > 0 {
        COUNTERS.chunk_claims.fetch_add(claims, Ordering::Relaxed);
    }
}

/// Applies `f` to every `(index, item)` pair, running up to `threads`
/// participants concurrently (the caller plus pooled workers), and
/// returns the results in index order.
///
/// Falls back to a plain sequential loop when `threads <= 1`, the item
/// count is tiny, or the call is nested inside another executor job.
pub fn par_map_indexed<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    COUNTERS.tasks.fetch_add(n as u64, Ordering::Relaxed);
    if threads <= 1 || n <= 1 || in_executor() {
        COUNTERS.sequential_jobs.fetch_add(1, Ordering::Relaxed);
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let participants = threads.min(n);
    COUNTERS.jobs.fetch_add(1, Ordering::Relaxed);
    let mut sp = treeemb_obs::Span::enter("exec.map");
    sp.arg("items", n as u64);
    sp.arg("participants", participants as u64);
    let mut items = items;
    let src = items.as_ptr();
    // Elements are now owned by the cursor protocol; the emptied Vec
    // frees only its buffer on drop (or during unwind).
    unsafe { items.set_len(0) };
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization; each is written
    // exactly once before being read back.
    unsafe { out.set_len(n) };
    let job = MapJob {
        core: JobCore::new(n, participants),
        src,
        dst: out.as_mut_ptr(),
        f: &f,
    };
    pool().run(
        participants - 1,
        Job {
            data: std::ptr::addr_of!(job).cast(),
            run: run_map::<T, U, F>,
        },
    );
    drop(sp);
    publish_trace_counters();
    if let Some(payload) = job.core.into_panic() {
        resume_unwind(payload);
    }
    // Every index was claimed and completed without panicking, so all n
    // slots are initialized: reinterpret the buffer as Vec<U>.
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    std::mem::forget(out);
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), len, cap) }
}

struct ForEachJob<'a, T, F> {
    core: JobCore,
    base: *mut T,
    f: &'a F,
}

unsafe fn run_for_each<T, F>(data: *const ())
where
    F: Fn(usize, &mut T) + Sync,
{
    let job = &*(data as *const ForEachJob<'_, T, F>);
    if !job.core.take_ticket() {
        return;
    }
    let claims = job.core.drive(|start, end| {
        for i in start..end {
            // SAFETY: the cursor dispenses each index exactly once, so no
            // two participants alias the same element.
            let item = unsafe { &mut *job.base.add(i) };
            (job.f)(i, item);
        }
    });
    if claims > 0 {
        COUNTERS.chunk_claims.fetch_add(claims, Ordering::Relaxed);
    }
}

/// Parallel for-each over `(index, &mut item)` pairs; in-place variant of
/// [`par_map_indexed`] that avoids moving large machine states.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    COUNTERS.tasks.fetch_add(n as u64, Ordering::Relaxed);
    if threads <= 1 || n <= 1 || in_executor() {
        COUNTERS.sequential_jobs.fetch_add(1, Ordering::Relaxed);
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let participants = threads.min(n);
    COUNTERS.jobs.fetch_add(1, Ordering::Relaxed);
    let mut sp = treeemb_obs::Span::enter("exec.for_each");
    sp.arg("items", n as u64);
    sp.arg("participants", participants as u64);
    let job = ForEachJob {
        core: JobCore::new(n, participants),
        base: items.as_mut_ptr(),
        f: &f,
    };
    pool().run(
        participants - 1,
        Job {
            data: std::ptr::addr_of!(job).cast(),
            run: run_for_each::<T, F>,
        },
    );
    drop(sp);
    publish_trace_counters();
    if let Some(payload) = job.core.into_panic() {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..500).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        let par = par_map_indexed(items, 8, |_, x| x * x);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_indexed(items, 4, |i, x| (i as u64, x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*val, i as u64);
        }
    }

    #[test]
    fn par_map_single_thread_fallback() {
        let out = par_map_indexed(vec![1, 2, 3], 1, |_, x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn each_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let out = par_map_indexed((0..1000).collect::<Vec<usize>>(), 6, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let mut items: Vec<u64> = (0..300).collect();
        par_for_each_mut(&mut items, 5, |i, x| *x += i as u64);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, 2 * i as u64);
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_tiny() {
        let mut empty: Vec<u64> = vec![];
        par_for_each_mut(&mut empty, 4, |_, _| {});
        let mut one = vec![7u64];
        par_for_each_mut(&mut one, 4, |_, x| *x = 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        // The workloads feed floating point through index-dependent math;
        // bit-identity across thread counts is the determinism contract.
        let items: Vec<f64> = (0..4096).map(|i| (i as f64).sin() * 1e3).collect();
        let reference = par_map_indexed(items.clone(), 1, |i, x| (x * i as f64).to_bits());
        for threads in [2, 8] {
            let got = par_map_indexed(items.clone(), threads, |i, x| (x * i as f64).to_bits());
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn panic_in_worker_propagates_not_deadlocks() {
        for threads in [2usize, 8] {
            let result = std::panic::catch_unwind(|| {
                par_map_indexed((0..512).collect::<Vec<usize>>(), threads, |i, x| {
                    assert!(i != 137, "boom at {i}");
                    x
                })
            });
            assert!(result.is_err(), "panic must propagate (threads={threads})");
        }
        // The pool must remain usable after a panicked job.
        let ok = par_map_indexed((0..64).collect::<Vec<u64>>(), 8, |_, x| x + 1);
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn panic_in_for_each_propagates() {
        let mut items: Vec<u64> = (0..256).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_for_each_mut(&mut items, 4, |i, _| assert!(i != 200));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_calls_run_sequentially_without_deadlock() {
        let outer: Vec<u64> = (0..64).collect();
        let out = par_map_indexed(outer, 4, |_, x| {
            let inner: Vec<u64> = (0..16).collect();
            par_map_indexed(inner, 4, |_, y| y + x).iter().sum::<u64>()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (0..16).map(|y| y + i as u64).sum::<u64>());
        }
    }

    #[test]
    fn repeated_rounds_reuse_pool() {
        // Many small jobs back to back: exercises publish/retire cycling.
        for round in 0..200u64 {
            let items: Vec<u64> = (0..32).collect();
            let out = par_map_indexed(items, 4, move |_, x| x + round);
            assert_eq!(out[31], 31 + round);
        }
    }

    #[test]
    fn threads_beyond_items_are_capped() {
        let out = par_map_indexed(vec![1u32, 2, 3], 64, |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn counters_track_jobs_tasks_and_utilization() {
        // Counters are global and other tests run concurrently, so only
        // monotone delta assertions are safe.
        let before = stats();
        let n = 256usize;
        // Per-item work long enough that pool workers reliably wake and
        // claim chunks before the caller drains the cursor alone.
        let out = par_map_indexed((0..n as u64).collect::<Vec<u64>>(), 8, |_, x| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x + 1
        });
        assert_eq!(out.len(), n);
        let seq = par_map_indexed(vec![1u64], 8, |_, x| x); // n<=1 fallback
        assert_eq!(seq, vec![1]);
        let after = stats();
        assert!(after.jobs > before.jobs);
        assert!(after.sequential_jobs > before.sequential_jobs);
        assert!(after.tasks > before.tasks + n as u64);
        assert!(after.chunk_claims > before.chunk_claims);
        assert!(after.busy_ns() > before.busy_ns());
        assert!(after.workers_spawned >= 7);
        assert_eq!(after.worker_busy_ns.len(), after.workers_spawned);
        assert_eq!(after.worker_idle_ns.len(), after.workers_spawned);
        assert!(after.max_concurrent_workers >= 1);
        let u = after.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
}
