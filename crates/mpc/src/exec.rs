//! Deterministic parallel executor for machine-local computation.
//!
//! Machines within an MPC round are independent, so the runtime executes
//! them concurrently on scoped OS threads (crossbeam). Work is handed out
//! through an atomic cursor; results are written into per-index slots, so
//! the output order is independent of scheduling and the whole simulation
//! stays deterministic.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every `(index, item)` pair, running up to `threads`
/// workers concurrently, and returns the results in index order.
///
/// Falls back to a plain sequential loop when `threads <= 1` or the item
/// count is tiny (thread spawn costs would dominate).
pub fn par_map_indexed<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let workers = threads.min(n);
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i].lock().take().expect("task taken twice");
                let out = f(i, item);
                *slots[i].lock() = Some(out);
            });
        }
    })
    .expect("executor worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("missing result slot"))
        .collect()
}

/// Parallel for-each over `(index, &mut item)` pairs; in-place variant of
/// [`par_map_indexed`] that avoids moving large machine states.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);
    // Hand out disjoint &mut access through raw pointers guarded by the
    // unique-index protocol: the atomic cursor yields each index once.
    struct Ptr<T>(*mut T);
    unsafe impl<T: Send> Sync for Ptr<T> {}
    let base = Ptr(items.as_mut_ptr());
    let base_ref = &base;
    let cursor = &cursor;
    let f = &f;
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: each index is dispensed exactly once by the
                // atomic cursor, so no two threads alias the same element,
                // and the crossbeam scope outlives no borrow.
                let item = unsafe { &mut *base_ref.0.add(i) };
                f(i, item);
            });
        }
    })
    .expect("executor worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..500).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        let par = par_map_indexed(items, 8, |_, x| x * x);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_indexed(items, 4, |i, x| (i as u64, x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*val, i as u64);
        }
    }

    #[test]
    fn par_map_single_thread_fallback() {
        let out = par_map_indexed(vec![1, 2, 3], 1, |_, x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn each_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let out = par_map_indexed((0..1000).collect::<Vec<usize>>(), 6, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let mut items: Vec<u64> = (0..300).collect();
        par_for_each_mut(&mut items, 5, |i, x| *x += i as u64);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, 2 * i as u64);
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_tiny() {
        let mut empty: Vec<u64> = vec![];
        par_for_each_mut(&mut empty, 4, |_, _| {});
        let mut one = vec![7u64];
        par_for_each_mut(&mut one, 4, |_, x| *x = 9);
        assert_eq!(one, vec![9]);
    }
}
